#ifndef TIOGA2_DB_CATALOG_H_
#define TIOGA2_DB_CATALOG_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/reclaim.h"
#include "common/result.h"
#include "db/relation.h"

namespace tioga2::db {

/// A typed record of one single-tuple §8 update — the unit of incremental
/// invalidation. Emitted by Catalog::UpdateRow and consumed by the dataflow
/// engines' delta-propagation path (dataflow/delta.h): `row` is the position
/// of the edited tuple in the table's row order (updates never reorder), and
/// the version pair lets an engine verify that a memoized entry really
/// corresponds to the pre-update table before maintaining it incrementally.
struct TableDelta {
  std::string table;
  size_t row = 0;
  Tuple old_tuple;
  Tuple new_tuple;
  uint64_t old_version = 0;
  uint64_t new_version = 0;
};

/// Observes catalog mutations. The storage engine (storage/storage_engine.h)
/// implements this to mirror every mutation into its write-ahead log and its
/// snapshot shadow state; the catalog itself stays storage-agnostic.
/// Callbacks fire after the mutation has been applied, on the mutating
/// thread, with the post-mutation state.
class CatalogListener {
 public:
  virtual ~CatalogListener() = default;
  virtual void OnRegisterTable(const std::string& name,
                               const RelationPtr& relation, uint64_t version) = 0;
  virtual void OnReplaceTable(const std::string& name,
                              const RelationPtr& relation, uint64_t version) = 0;
  virtual void OnUpdateRow(const TableDelta& delta,
                           const RelationPtr& relation) = 0;
  /// `version_at_drop` is the dropped table's final version — the floor a
  /// same-named recreation must start above.
  virtual void OnDropTable(const std::string& name, uint64_t version_at_drop) = 0;
  virtual void OnSaveProgram(const std::string& name,
                             const std::string& serialized) = 0;
};

/// The system catalog: named base tables plus saved programs. This plays the
/// role POSTGRES plays for Tioga-2 — "for every relation known to the
/// Tioga-2 system there is a box of the same name" (§4), and "Save Program:
/// save the current program in the database" (Figure 2).
///
/// Each table carries a version counter bumped on every update; the dataflow
/// engine uses it to invalidate memoized box outputs after a §8 update.
/// Versions are monotonic per *name*, not per table object: dropping a table
/// records its final version as a floor, and a same-named recreation starts
/// above it. (Without the floor, a recreated table would restart at version 1
/// and a memo entry stamped against the old table's version 1 would be
/// silently — and wrongly — considered fresh.)
///
/// Concurrency (DESIGN.md §13): every const read is served from an IMMUTABLE
/// snapshot republished after each mutation, so readers never take a lock.
/// Mutators are NOT internally synchronized against each other — the caller
/// serializes them (SessionServer holds catalog_mu_ exclusively) — but a
/// mutator may run concurrently with any number of readers: the old snapshot
/// is retired through the wired ReclamationDomain, which delays its deletion
/// until every pinned reader has moved on. Without a domain wired the old
/// snapshot is deleted immediately, which is the pre-existing contract: no
/// concurrent readers exist (single-threaded tests, recovery replay).
///
/// A multi-step read that must see ONE consistent catalog state — e.g. an
/// evaluation that stamps against TableVersion and later fetches GetTable —
/// brackets itself in a ReadPin, which pins the snapshot current at
/// construction for every read on that thread until destruction. Reads
/// outside any ReadPin pin per call, which is consistent enough for
/// single-shot queries and gives read-your-writes to mutating threads (the
/// mutation republished the snapshot before returning).
class Catalog {
 public:
  Catalog();
  ~Catalog();

  // Catalogs are identity objects shared by reference.
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Wires the reclamation domain readers pin and retired snapshots pass
  /// through. Must be called before the first concurrent read; the domain
  /// must outlive the catalog.
  void set_reclamation_domain(common::ReclamationDomain* domain) {
    domain_ = domain;
  }

  /// Pins the snapshot current at construction for EVERY read this thread
  /// makes on this catalog until destruction (frames nest; the innermost
  /// pin for a given catalog wins). The SessionServer brackets each
  /// Access::kRead handler in one, so stamping (TableVersion) and fetching
  /// (GetTable) cannot straddle a concurrent writer's publish — the lock-free
  /// replacement for holding a reader lock across the whole request.
  class ReadPin {
   public:
    explicit ReadPin(const Catalog& catalog);
    ~ReadPin();
    ReadPin(const ReadPin&) = delete;
    ReadPin& operator=(const ReadPin&) = delete;

   private:
    friend class Catalog;
    const Catalog* catalog_;
    common::ReclamationDomain::Guard guard_;
    const void* snapshot_;  // const Snapshot*, typed inside catalog.cc
    ReadPin* prev_;         // enclosing frame (thread-local stack)
  };

  /// Registers a new table; fails if the name is taken.
  Status RegisterTable(const std::string& name, RelationPtr relation);

  /// Replaces the contents of an existing table (schema may not change) and
  /// bumps its version. This is the install step of the §8 update machinery.
  Status ReplaceTable(const std::string& name, RelationPtr relation);

  /// Replaces one row of an existing table with `tuple` (type-checked
  /// against the schema), bumps the version, and returns the TableDelta
  /// describing the edit — the §8 single-tuple install step. Equivalent to
  /// ReplaceTable with a relation differing in one row, but tells the
  /// dataflow layer exactly what changed so it can propagate a delta
  /// instead of recomputing.
  Result<TableDelta> UpdateRow(const std::string& name, size_t row, Tuple tuple);

  /// Removes a table.
  Status DropTable(const std::string& name);

  /// Looks up a table by name.
  Result<RelationPtr> GetTable(const std::string& name) const;

  /// True iff a table named `name` exists.
  bool HasTable(const std::string& name) const;

  /// The version counter of a table (starts at 1; bumped by ReplaceTable).
  Result<uint64_t> TableVersion(const std::string& name) const;

  /// Names of all tables, sorted (the "menu of all tables available", §3).
  std::vector<std::string> ListTables() const;

  /// Stores a serialized program under `name`, overwriting silently (Save
  /// Program, Figure 2).
  void SaveProgram(const std::string& name, std::string serialized);

  /// Fetches a saved program.
  Result<std::string> GetProgram(const std::string& name) const;

  /// Names of all saved programs, sorted.
  std::vector<std::string> ListPrograms() const;

  /// Installs (or clears, with nullptr) the single mutation listener. The
  /// listener must outlive the catalog or be cleared first.
  void SetListener(CatalogListener* listener) { listener_ = listener; }

  /// The per-name version floors recorded by DropTable (see class comment).
  /// Write-side state: call only while holding the writer's exclusive lock.
  const std::map<std::string, uint64_t>& version_floors() const {
    return version_floors_;
  }

  // ---- Recovery-only entry points (storage/storage_engine.h) ----
  //
  // These bypass the listener (recovery must not re-log what it replays) and
  // set versions exactly as recorded, because memoization stamps derive from
  // table versions (TableBox::CacheSalt) and the recovery tests assert
  // byte-identical stamps across a restart.

  /// Installs `relation` under `name` at exactly `version`, creating or
  /// overwriting. No listener notification.
  Status RestoreTable(const std::string& name, RelationPtr relation,
                      uint64_t version);

  /// Reinstates a recorded version floor (keeps the higher of the two if one
  /// is already present). No listener notification.
  void RestoreVersionFloor(const std::string& name, uint64_t version);

 private:
  struct TableEntry {
    RelationPtr relation;
    uint64_t version = 1;
  };
  /// The immutable unit of publication: a full copy of the read-visible
  /// state. Cheap to build — relations are shared by pointer, only the maps
  /// are copied — and mutation rates are human-interaction rates.
  struct Snapshot {
    std::map<std::string, TableEntry> tables;
    std::map<std::string, std::string> programs;
  };

  /// Copies the write-side maps into a fresh snapshot, publishes it, and
  /// retires (or, with no domain, deletes) the old one. Called at the end of
  /// every mutator, on the mutating thread.
  void PublishSnapshot();

  /// The snapshot reads on this thread should use: the innermost ReadPin's
  /// if one is live for this catalog, else null (caller pins per call).
  const Snapshot* PinnedSnapshot() const;

  common::ReclamationDomain* domain_ = nullptr;

  // Write-side authoritative state; mutators read and update these directly
  // (serialized by the caller), readers never touch them.
  std::map<std::string, TableEntry> tables_;
  std::map<std::string, std::string> programs_;
  /// name -> version the table had when it was last dropped.
  std::map<std::string, uint64_t> version_floors_;
  CatalogListener* listener_ = nullptr;

  /// Read-side published state (release store, acquire load; never null).
  std::atomic<const Snapshot*> snapshot_;
};

}  // namespace tioga2::db

#endif  // TIOGA2_DB_CATALOG_H_
