#ifndef TIOGA2_DB_CATALOG_H_
#define TIOGA2_DB_CATALOG_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "db/relation.h"

namespace tioga2::db {

/// A typed record of one single-tuple §8 update — the unit of incremental
/// invalidation. Emitted by Catalog::UpdateRow and consumed by the dataflow
/// engines' delta-propagation path (dataflow/delta.h): `row` is the position
/// of the edited tuple in the table's row order (updates never reorder), and
/// the version pair lets an engine verify that a memoized entry really
/// corresponds to the pre-update table before maintaining it incrementally.
struct TableDelta {
  std::string table;
  size_t row = 0;
  Tuple old_tuple;
  Tuple new_tuple;
  uint64_t old_version = 0;
  uint64_t new_version = 0;
};

/// The system catalog: named base tables plus saved programs. This plays the
/// role POSTGRES plays for Tioga-2 — "for every relation known to the
/// Tioga-2 system there is a box of the same name" (§4), and "Save Program:
/// save the current program in the database" (Figure 2).
///
/// Each table carries a version counter bumped on every update; the dataflow
/// engine uses it to invalidate memoized box outputs after a §8 update.
class Catalog {
 public:
  Catalog() = default;

  // Catalogs are identity objects shared by reference.
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Registers a new table; fails if the name is taken.
  Status RegisterTable(const std::string& name, RelationPtr relation);

  /// Replaces the contents of an existing table (schema may not change) and
  /// bumps its version. This is the install step of the §8 update machinery.
  Status ReplaceTable(const std::string& name, RelationPtr relation);

  /// Replaces one row of an existing table with `tuple` (type-checked
  /// against the schema), bumps the version, and returns the TableDelta
  /// describing the edit — the §8 single-tuple install step. Equivalent to
  /// ReplaceTable with a relation differing in one row, but tells the
  /// dataflow layer exactly what changed so it can propagate a delta
  /// instead of recomputing.
  Result<TableDelta> UpdateRow(const std::string& name, size_t row, Tuple tuple);

  /// Removes a table.
  Status DropTable(const std::string& name);

  /// Looks up a table by name.
  Result<RelationPtr> GetTable(const std::string& name) const;

  /// True iff a table named `name` exists.
  bool HasTable(const std::string& name) const;

  /// The version counter of a table (starts at 1; bumped by ReplaceTable).
  Result<uint64_t> TableVersion(const std::string& name) const;

  /// Names of all tables, sorted (the "menu of all tables available", §3).
  std::vector<std::string> ListTables() const;

  /// Stores a serialized program under `name`, overwriting silently (Save
  /// Program, Figure 2).
  void SaveProgram(const std::string& name, std::string serialized);

  /// Fetches a saved program.
  Result<std::string> GetProgram(const std::string& name) const;

  /// Names of all saved programs, sorted.
  std::vector<std::string> ListPrograms() const;

 private:
  struct TableEntry {
    RelationPtr relation;
    uint64_t version = 1;
  };
  std::map<std::string, TableEntry> tables_;
  std::map<std::string, std::string> programs_;
};

}  // namespace tioga2::db

#endif  // TIOGA2_DB_CATALOG_H_
