#ifndef TIOGA2_DB_CATALOG_H_
#define TIOGA2_DB_CATALOG_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "db/relation.h"

namespace tioga2::db {

/// The system catalog: named base tables plus saved programs. This plays the
/// role POSTGRES plays for Tioga-2 — "for every relation known to the
/// Tioga-2 system there is a box of the same name" (§4), and "Save Program:
/// save the current program in the database" (Figure 2).
///
/// Each table carries a version counter bumped on every update; the dataflow
/// engine uses it to invalidate memoized box outputs after a §8 update.
class Catalog {
 public:
  Catalog() = default;

  // Catalogs are identity objects shared by reference.
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Registers a new table; fails if the name is taken.
  Status RegisterTable(const std::string& name, RelationPtr relation);

  /// Replaces the contents of an existing table (schema may not change) and
  /// bumps its version. This is the install step of the §8 update machinery.
  Status ReplaceTable(const std::string& name, RelationPtr relation);

  /// Removes a table.
  Status DropTable(const std::string& name);

  /// Looks up a table by name.
  Result<RelationPtr> GetTable(const std::string& name) const;

  /// True iff a table named `name` exists.
  bool HasTable(const std::string& name) const;

  /// The version counter of a table (starts at 1; bumped by ReplaceTable).
  Result<uint64_t> TableVersion(const std::string& name) const;

  /// Names of all tables, sorted (the "menu of all tables available", §3).
  std::vector<std::string> ListTables() const;

  /// Stores a serialized program under `name`, overwriting silently (Save
  /// Program, Figure 2).
  void SaveProgram(const std::string& name, std::string serialized);

  /// Fetches a saved program.
  Result<std::string> GetProgram(const std::string& name) const;

  /// Names of all saved programs, sorted.
  std::vector<std::string> ListPrograms() const;

 private:
  struct TableEntry {
    RelationPtr relation;
    uint64_t version = 1;
  };
  std::map<std::string, TableEntry> tables_;
  std::map<std::string, std::string> programs_;
};

}  // namespace tioga2::db

#endif  // TIOGA2_DB_CATALOG_H_
