#ifndef TIOGA2_DB_OPERATORS_H_
#define TIOGA2_DB_OPERATORS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "db/exec_policy.h"
#include "db/relation.h"
#include "expr/expr.h"

namespace tioga2::db {

/// Builds a TypeEnv exposing the stored columns of `schema` (for compiling
/// predicates and attribute definitions against a plain relation).
expr::TypeEnv SchemaEnv(const SchemaPtr& schema);

/// Compiles `predicate_source` against `schema` and requires a bool result.
Result<expr::CompiledExpr> CompilePredicate(const SchemaPtr& schema,
                                            const std::string& predicate_source);

/// Standard projection (§4.2, Figure 3): keeps `columns` in the given order.
/// Duplicate tuples are retained (this is SELECT-list projection, not set
/// projection), matching the paper's "projecting out unneeded fields".
Result<RelationPtr> Project(const RelationPtr& input,
                            const std::vector<std::string>& columns);

/// Filters to tuples for which `predicate` evaluates to true; a null
/// predicate result rejects the tuple (SQL WHERE semantics). Runs the
/// vectorized path (expr::BatchEvaluator over the relation's columnar view,
/// kBatchSize rows at a time) unless `policy.vectorized` is false, in which
/// case it evaluates tuple-at-a-time. Both paths produce bit-identical
/// relations; the policy exists for benchmarking and equivalence tests.
Result<RelationPtr> Restrict(const RelationPtr& input,
                             const expr::CompiledExpr& predicate,
                             const ExecPolicy& policy = DefaultExecPolicy());

/// Convenience overload that compiles the predicate from source.
Result<RelationPtr> Restrict(const RelationPtr& input,
                             const std::string& predicate_source,
                             const ExecPolicy& policy = DefaultExecPolicy());

/// Tuple-at-a-time Restrict — the scalar baseline the vectorized path is
/// benchmarked and property-tested against.
Result<RelationPtr> RestrictScalar(const RelationPtr& input,
                                   const expr::CompiledExpr& predicate);

/// Evaluates `predicate` for one row; true ⇔ the row is kept (predicate
/// result is non-null true). Shared by RestrictScalar and the nested-loop
/// join so WHERE semantics are defined in exactly one place.
Result<bool> PredicateKeeps(const expr::CompiledExpr& predicate,
                            const expr::RowAccessor& row);

/// Bernoulli sample: each tuple is retained independently with
/// `probability` (§4.2: "each input is retained with a user-specified
/// probability"). Deterministic for a given seed.
Result<RelationPtr> Sample(const RelationPtr& input, double probability, uint64_t seed);

/// The join algorithm actually used by Join (reported for benchmarks).
enum class JoinAlgorithm { kHash, kNestedLoop };

/// Result of a join together with the algorithm the planner picked.
struct JoinResult {
  RelationPtr relation;
  JoinAlgorithm algorithm;
};

/// Joins two relations on a predicate written over the *output* schema
/// (left columns then right columns; any right column whose name collides
/// with a left column is renamed with a "_2" suffix). If the predicate is a
/// single equality between one left and one right column, a hash join is
/// used; otherwise a nested-loop join.
///
/// Ordering contract: output rows are always in left-major order — sorted by
/// left row id, ties by right row id — regardless of which side the planner
/// builds the hash table on and regardless of the execution policy. The
/// order therefore cannot flip when an update grows one input past the
/// other, which downstream fingerprint/stamp byte-identity depends on.
///
/// The vectorized path hashes typed key cells straight from the build side's
/// ColumnVector and emits a join *view* (two row-id vectors over the
/// inputs); the scalar path hashes Values tuple-at-a-time and materializes
/// concatenated rows. Both produce value-identical relations (the scalar
/// path is the oracle). Keys unify int/float (2 joins 2.0, matching
/// Value::Equals); null keys never join; hash collisions are resolved by a
/// real equality check.
Result<JoinResult> Join(const RelationPtr& left, const RelationPtr& right,
                        const std::string& predicate_source,
                        const ExecPolicy& policy = DefaultExecPolicy());

/// Forces the nested-loop path regardless of predicate shape (for the
/// hash-vs-nested-loop ablation benchmark). Under a vectorized policy the
/// predicate runs through expr::BatchEvaluator over cross-product blocks
/// (one left row splatted against kBatchSize right rows at a time), the way
/// Restrict batches; output order is left-major either way.
Result<RelationPtr> NestedLoopJoin(const RelationPtr& left, const RelationPtr& right,
                                   const std::string& predicate_source,
                                   const ExecPolicy& policy = DefaultExecPolicy());

/// Sorts by `column` (ascending or descending); nulls sort first. The
/// policy picks columnar or row-store key comparison (bit-identical).
Result<RelationPtr> Sort(const RelationPtr& input, const std::string& column,
                         bool ascending = true,
                         const ExecPolicy& policy = DefaultExecPolicy());

/// Keeps the first `n` tuples.
Result<RelationPtr> Limit(const RelationPtr& input, size_t n);

/// The schema a Join over these inputs produces (left then right, right
/// collisions suffixed "_2"). Exposed so callers can compile predicates.
Result<SchemaPtr> JoinOutputSchema(const SchemaPtr& left, const SchemaPtr& right);

}  // namespace tioga2::db

#endif  // TIOGA2_DB_OPERATORS_H_
