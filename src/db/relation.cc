#include "db/relation.h"

#include <utility>

namespace tioga2::db {

RelationPtr Relation::MakeSelectionView(RelationPtr parent,
                                        std::vector<uint32_t> rows) {
  auto view = std::make_shared<Relation>(parent->schema());
  view->left_parent_ = std::move(parent);
  view->left_rows_ = std::move(rows);
  view->left_width_ = view->schema_->num_columns();
  return view;
}

RelationPtr Relation::MakeJoinView(SchemaPtr schema, RelationPtr left,
                                   std::vector<uint32_t> left_rows,
                                   RelationPtr right,
                                   std::vector<uint32_t> right_rows) {
  auto view = std::make_shared<Relation>(std::move(schema));
  view->left_width_ = left->schema()->num_columns();
  view->left_parent_ = std::move(left);
  view->right_parent_ = std::move(right);
  view->left_rows_ = std::move(left_rows);
  view->right_rows_ = std::move(right_rows);
  return view;
}

void Relation::EnsureRows() const {
  if (!is_view()) return;
  std::call_once(rows_once_, [this] {
    std::vector<TuplePtr> rows;
    rows.reserve(left_rows_.size());
    if (right_parent_ == nullptr) {
      // Selection view: surviving rows are the parent's tuples — share them.
      for (uint32_t r : left_rows_) rows.push_back(left_parent_->row_ptr(r));
    } else {
      // Join view: concatenate once, when (and only when) a consumer asks
      // for row-wise access.
      for (size_t k = 0; k < left_rows_.size(); ++k) {
        const Tuple& l = left_parent_->row(left_rows_[k]);
        const Tuple& r = right_parent_->row(right_rows_[k]);
        Tuple out;
        out.reserve(l.size() + r.size());
        out.insert(out.end(), l.begin(), l.end());
        out.insert(out.end(), r.begin(), r.end());
        rows.push_back(std::make_shared<Tuple>(std::move(out)));
      }
    }
    rows_ = std::move(rows);
  });
}

void Relation::EnsureComposedSelection() const {
  std::call_once(compose_once_, [this] {
    const Relation* base = left_parent_.get();
    if (base->is_view() && base->right_parent_ == nullptr) {
      // Chain of selection views (Restrict over Restrict over Limit, ...):
      // fold the row maps so one gather reaches the base columns.
      std::vector<uint32_t> rows = left_rows_;
      do {
        for (uint32_t& r : rows) r = base->left_rows_[r];
        base = base->left_parent_.get();
      } while (base->is_view() && base->right_parent_ == nullptr);
      composed_rows_storage_ = std::move(rows);
      compose_rows_ = &composed_rows_storage_;
    } else {
      compose_rows_ = &left_rows_;
    }
    compose_base_ = base;
  });
}

ColumnVector Relation::BuildColumn(size_t c) const {
  const types::DataType type = schema_->column(c).type;
  if (!is_view()) return MaterializeColumn(rows_, c, type);
  if (right_parent_ == nullptr) {
    // Selection view: gather once from the deepest non-selection ancestor's
    // columns, skipping every intermediate view's columnar image.
    EnsureComposedSelection();
    return GatherColumn(compose_base_->columnar().column(c), *compose_rows_);
  }
  if (c < left_width_) {
    return GatherColumn(left_parent_->columnar().column(c), left_rows_);
  }
  return GatherColumn(right_parent_->columnar().column(c - left_width_),
                      right_rows_);
}

std::string Relation::ToString(size_t max_rows) const {
  std::string out;
  for (size_t c = 0; c < schema_->num_columns(); ++c) {
    if (c > 0) out += " | ";
    out += schema_->column(c).name;
  }
  out += "\n";
  size_t shown = std::min(max_rows, num_rows());
  for (size_t r = 0; r < shown; ++r) {
    for (size_t c = 0; c < schema_->num_columns(); ++c) {
      if (c > 0) out += " | ";
      out += at(r, c).ToString();
    }
    out += "\n";
  }
  if (shown < num_rows()) {
    out += "... (" + std::to_string(num_rows() - shown) + " more rows)\n";
  }
  return out;
}

const ColumnarTable& Relation::columnar() const {
  std::call_once(columnar_once_,
                 [this] { columnar_ = std::make_unique<const ColumnarTable>(this); });
  return *columnar_;
}

RelationBuilder::RelationBuilder(SchemaPtr schema)
    : relation_(std::make_shared<Relation>(std::move(schema))) {}

Status RelationBuilder::AddRow(Tuple row) {
  const Schema& schema = *relation_->schema_;
  if (row.size() != schema.num_columns()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " does not match schema " +
        schema.ToString());
  }
  for (size_t c = 0; c < row.size(); ++c) {
    if (row[c].is_null()) continue;
    if (row[c].type() != schema.column(c).type) {
      // Allow implicit int → float widening at insert time.
      if (row[c].is_int() && schema.column(c).type == types::DataType::kFloat) {
        row[c] = types::Value::Float(static_cast<double>(row[c].int_value()));
        continue;
      }
      return Status::TypeError("column '" + schema.column(c).name + "' expects " +
                               types::DataTypeToString(schema.column(c).type) + ", got " +
                               types::DataTypeToString(row[c].type()));
    }
  }
  relation_->rows_.push_back(std::make_shared<Tuple>(std::move(row)));
  return Status::OK();
}

void RelationBuilder::AddRowUnchecked(Tuple row) {
  relation_->rows_.push_back(std::make_shared<Tuple>(std::move(row)));
}

void RelationBuilder::AddRowShared(TuplePtr row) {
  relation_->rows_.push_back(std::move(row));
}

void RelationBuilder::Reserve(size_t n) { relation_->rows_.reserve(n); }

RelationPtr RelationBuilder::Build() {
  RelationPtr result = std::move(relation_);
  relation_ = std::make_shared<Relation>(result->schema());
  return result;
}

Result<RelationPtr> MakeRelation(std::vector<Column> columns, std::vector<Tuple> rows) {
  TIOGA2_ASSIGN_OR_RETURN(Schema schema, Schema::Make(std::move(columns)));
  RelationBuilder builder(std::make_shared<const Schema>(std::move(schema)));
  builder.Reserve(rows.size());
  for (Tuple& row : rows) {
    TIOGA2_RETURN_IF_ERROR(builder.AddRow(std::move(row)));
  }
  return builder.Build();
}

Result<RelationPtr> WithRowReplaced(const RelationPtr& input, size_t row,
                                    Tuple tuple) {
  if (input == nullptr) return Status::InvalidArgument("input must be non-null");
  if (row >= input->num_rows()) {
    return Status::OutOfRange("row " + std::to_string(row) + " out of range");
  }
  RelationBuilder builder(input->schema());
  builder.Reserve(input->num_rows());
  for (size_t r = 0; r < input->num_rows(); ++r) {
    if (r == row) {
      TIOGA2_RETURN_IF_ERROR(builder.AddRow(std::move(tuple)));
    } else {
      builder.AddRowShared(input->row_ptr(r));
    }
  }
  return builder.Build();
}

Result<RelationPtr> WithRowInserted(const RelationPtr& input, size_t row,
                                    Tuple tuple) {
  if (input == nullptr) return Status::InvalidArgument("input must be non-null");
  if (row > input->num_rows()) {
    return Status::OutOfRange("insert position " + std::to_string(row) +
                              " out of range");
  }
  RelationBuilder builder(input->schema());
  builder.Reserve(input->num_rows() + 1);
  for (size_t r = 0; r < input->num_rows(); ++r) {
    if (r == row) TIOGA2_RETURN_IF_ERROR(builder.AddRow(tuple));
    builder.AddRowShared(input->row_ptr(r));
  }
  if (row == input->num_rows()) TIOGA2_RETURN_IF_ERROR(builder.AddRow(std::move(tuple)));
  return builder.Build();
}

Result<RelationPtr> WithRowErased(const RelationPtr& input, size_t row) {
  if (input == nullptr) return Status::InvalidArgument("input must be non-null");
  if (row >= input->num_rows()) {
    return Status::OutOfRange("row " + std::to_string(row) + " out of range");
  }
  RelationBuilder builder(input->schema());
  builder.Reserve(input->num_rows() - 1);
  for (size_t r = 0; r < input->num_rows(); ++r) {
    if (r != row) builder.AddRowShared(input->row_ptr(r));
  }
  return builder.Build();
}

bool RelationEquals(const Relation& a, const Relation& b) {
  if (!(*a.schema() == *b.schema())) return false;
  if (a.num_rows() != b.num_rows()) return false;
  for (size_t r = 0; r < a.num_rows(); ++r) {
    for (size_t c = 0; c < a.num_columns(); ++c) {
      if (!a.at(r, c).Equals(b.at(r, c))) return false;
    }
  }
  return true;
}

}  // namespace tioga2::db
