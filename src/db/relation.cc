#include "db/relation.h"

#include <utility>

namespace tioga2::db {

std::string Relation::ToString(size_t max_rows) const {
  std::string out;
  for (size_t c = 0; c < schema_->num_columns(); ++c) {
    if (c > 0) out += " | ";
    out += schema_->column(c).name;
  }
  out += "\n";
  size_t shown = std::min(max_rows, rows_.size());
  for (size_t r = 0; r < shown; ++r) {
    for (size_t c = 0; c < rows_[r].size(); ++c) {
      if (c > 0) out += " | ";
      out += rows_[r][c].ToString();
    }
    out += "\n";
  }
  if (shown < rows_.size()) {
    out += "... (" + std::to_string(rows_.size() - shown) + " more rows)\n";
  }
  return out;
}

const ColumnarTable& Relation::columnar() const {
  std::call_once(columnar_once_,
                 [this] { columnar_ = std::make_unique<const ColumnarTable>(this); });
  return *columnar_;
}

RelationBuilder::RelationBuilder(SchemaPtr schema)
    : relation_(std::make_shared<Relation>(std::move(schema))) {}

Status RelationBuilder::AddRow(Tuple row) {
  const Schema& schema = *relation_->schema_;
  if (row.size() != schema.num_columns()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " does not match schema " +
        schema.ToString());
  }
  for (size_t c = 0; c < row.size(); ++c) {
    if (row[c].is_null()) continue;
    if (row[c].type() != schema.column(c).type) {
      // Allow implicit int → float widening at insert time.
      if (row[c].is_int() && schema.column(c).type == types::DataType::kFloat) {
        row[c] = types::Value::Float(static_cast<double>(row[c].int_value()));
        continue;
      }
      return Status::TypeError("column '" + schema.column(c).name + "' expects " +
                               types::DataTypeToString(schema.column(c).type) + ", got " +
                               types::DataTypeToString(row[c].type()));
    }
  }
  relation_->rows_.push_back(std::move(row));
  return Status::OK();
}

void RelationBuilder::AddRowUnchecked(Tuple row) {
  relation_->rows_.push_back(std::move(row));
}

void RelationBuilder::Reserve(size_t n) { relation_->rows_.reserve(n); }

RelationPtr RelationBuilder::Build() {
  RelationPtr result = std::move(relation_);
  relation_ = std::make_shared<Relation>(result->schema());
  return result;
}

Result<RelationPtr> MakeRelation(std::vector<Column> columns, std::vector<Tuple> rows) {
  TIOGA2_ASSIGN_OR_RETURN(Schema schema, Schema::Make(std::move(columns)));
  RelationBuilder builder(std::make_shared<const Schema>(std::move(schema)));
  builder.Reserve(rows.size());
  for (Tuple& row : rows) {
    TIOGA2_RETURN_IF_ERROR(builder.AddRow(std::move(row)));
  }
  return builder.Build();
}

Result<RelationPtr> WithRowReplaced(const RelationPtr& input, size_t row,
                                    Tuple tuple) {
  if (input == nullptr) return Status::InvalidArgument("input must be non-null");
  if (row >= input->num_rows()) {
    return Status::OutOfRange("row " + std::to_string(row) + " out of range");
  }
  RelationBuilder builder(input->schema());
  builder.Reserve(input->num_rows());
  for (size_t r = 0; r < input->num_rows(); ++r) {
    if (r == row) {
      TIOGA2_RETURN_IF_ERROR(builder.AddRow(std::move(tuple)));
    } else {
      builder.AddRowUnchecked(input->row(r));
    }
  }
  return builder.Build();
}

Result<RelationPtr> WithRowInserted(const RelationPtr& input, size_t row,
                                    Tuple tuple) {
  if (input == nullptr) return Status::InvalidArgument("input must be non-null");
  if (row > input->num_rows()) {
    return Status::OutOfRange("insert position " + std::to_string(row) +
                              " out of range");
  }
  RelationBuilder builder(input->schema());
  builder.Reserve(input->num_rows() + 1);
  for (size_t r = 0; r < input->num_rows(); ++r) {
    if (r == row) TIOGA2_RETURN_IF_ERROR(builder.AddRow(tuple));
    builder.AddRowUnchecked(input->row(r));
  }
  if (row == input->num_rows()) TIOGA2_RETURN_IF_ERROR(builder.AddRow(std::move(tuple)));
  return builder.Build();
}

Result<RelationPtr> WithRowErased(const RelationPtr& input, size_t row) {
  if (input == nullptr) return Status::InvalidArgument("input must be non-null");
  if (row >= input->num_rows()) {
    return Status::OutOfRange("row " + std::to_string(row) + " out of range");
  }
  RelationBuilder builder(input->schema());
  builder.Reserve(input->num_rows() - 1);
  for (size_t r = 0; r < input->num_rows(); ++r) {
    if (r != row) builder.AddRowUnchecked(input->row(r));
  }
  return builder.Build();
}

bool RelationEquals(const Relation& a, const Relation& b) {
  if (!(*a.schema() == *b.schema())) return false;
  if (a.num_rows() != b.num_rows()) return false;
  for (size_t r = 0; r < a.num_rows(); ++r) {
    const Tuple& ra = a.row(r);
    const Tuple& rb = b.row(r);
    for (size_t c = 0; c < ra.size(); ++c) {
      if (!ra[c].Equals(rb[c])) return false;
    }
  }
  return true;
}

}  // namespace tioga2::db
