#include "db/operators.h"

#include <algorithm>
#include <atomic>
#include <numeric>
#include <unordered_map>
#include <utility>

#include "common/rng.h"
#include "expr/batch.h"

namespace tioga2::db {

using types::DataType;
using types::Value;

void SetVectorizedExecutionEnabled(bool enabled) {
  ExecPolicy policy = DefaultExecPolicy();
  policy.vectorized = enabled;
  SetDefaultExecPolicy(policy);
}
bool VectorizedExecutionEnabled() { return DefaultExecPolicy().vectorized; }

Result<bool> PredicateKeeps(const expr::CompiledExpr& predicate,
                            const expr::RowAccessor& row) {
  TIOGA2_ASSIGN_OR_RETURN(Value keep, predicate.Eval(row));
  return !keep.is_null() && keep.bool_value();
}

expr::TypeEnv SchemaEnv(const SchemaPtr& schema) {
  return [schema](const std::string& name) -> std::optional<expr::AttrInfo> {
    std::optional<size_t> index = schema->FindColumn(name);
    if (!index.has_value()) return std::nullopt;
    return expr::AttrInfo{schema->column(*index).type, *index};
  };
}

Result<expr::CompiledExpr> CompilePredicate(const SchemaPtr& schema,
                                            const std::string& predicate_source) {
  TIOGA2_ASSIGN_OR_RETURN(expr::CompiledExpr predicate,
                          expr::CompiledExpr::Compile(predicate_source, SchemaEnv(schema)));
  if (predicate.result_type() != DataType::kBool) {
    return Status::TypeError("predicate '" + predicate_source + "' has type " +
                             types::DataTypeToString(predicate.result_type()) +
                             ", want bool");
  }
  return predicate;
}

Result<RelationPtr> Project(const RelationPtr& input,
                            const std::vector<std::string>& columns) {
  std::vector<size_t> indices;
  std::vector<Column> out_columns;
  indices.reserve(columns.size());
  for (const std::string& name : columns) {
    TIOGA2_ASSIGN_OR_RETURN(size_t index, input->schema()->ColumnIndex(name));
    indices.push_back(index);
    out_columns.push_back(input->schema()->column(index));
  }
  TIOGA2_ASSIGN_OR_RETURN(Schema schema, Schema::Make(std::move(out_columns)));
  RelationBuilder builder(std::make_shared<const Schema>(std::move(schema)));
  builder.Reserve(input->num_rows());
  for (const Tuple& row : input->rows()) {
    Tuple out;
    out.reserve(indices.size());
    for (size_t index : indices) out.push_back(row[index]);
    builder.AddRowUnchecked(std::move(out));
  }
  return builder.Build();
}

Result<RelationPtr> RestrictScalar(const RelationPtr& input,
                                   const expr::CompiledExpr& predicate) {
  if (predicate.result_type() != DataType::kBool) {
    return Status::TypeError("Restrict predicate must be bool");
  }
  expr::BatchMetrics::Global().restrict_scalar_rows += input->num_rows();
  RelationBuilder builder(input->schema());
  for (const Tuple& row : input->rows()) {
    expr::TupleAccessor accessor(row);
    TIOGA2_ASSIGN_OR_RETURN(bool keep, PredicateKeeps(predicate, accessor));
    if (keep) builder.AddRowUnchecked(row);
  }
  return builder.Build();
}

Result<RelationPtr> Restrict(const RelationPtr& input,
                             const expr::CompiledExpr& predicate,
                             const ExecPolicy& policy) {
  if (!policy.vectorized) return RestrictScalar(input, predicate);
  if (predicate.result_type() != DataType::kBool) {
    return Status::TypeError("Restrict predicate must be bool");
  }
  expr::BatchMetrics& metrics = expr::BatchMetrics::Global();
  metrics.restrict_rows += input->num_rows();
  expr::RelationBatchSource source(*input);
  expr::BatchEvaluator evaluator(source);
  RelationBuilder builder(input->schema());
  expr::Selection sel;
  for (size_t begin = 0; begin < input->num_rows(); begin += expr::kBatchSize) {
    size_t end = std::min(begin + expr::kBatchSize, input->num_rows());
    expr::IdentitySelection(begin, end, &sel);
    TIOGA2_ASSIGN_OR_RETURN(expr::Selection kept,
                            evaluator.FilterTrue(predicate.root(), sel));
    for (uint32_t r : kept) builder.AddRowUnchecked(input->row(r));
    ++metrics.restrict_batches;
  }
  metrics.nodes_vectorized += evaluator.stats().vectorized_nodes;
  metrics.nodes_fallback += evaluator.stats().fallback_nodes;
  return builder.Build();
}

Result<RelationPtr> Restrict(const RelationPtr& input,
                             const std::string& predicate_source,
                             const ExecPolicy& policy) {
  TIOGA2_ASSIGN_OR_RETURN(expr::CompiledExpr predicate,
                          CompilePredicate(input->schema(), predicate_source));
  return Restrict(input, predicate, policy);
}

Result<RelationPtr> Sample(const RelationPtr& input, double probability, uint64_t seed) {
  if (probability < 0.0 || probability > 1.0) {
    return Status::InvalidArgument("sampling probability must be in [0, 1], got " +
                                   std::to_string(probability));
  }
  Rng rng(seed);
  RelationBuilder builder(input->schema());
  for (const Tuple& row : input->rows()) {
    if (rng.NextDouble() < probability) builder.AddRowUnchecked(row);
  }
  return builder.Build();
}

Result<SchemaPtr> JoinOutputSchema(const SchemaPtr& left, const SchemaPtr& right) {
  std::vector<Column> columns = left->columns();
  for (const Column& column : right->columns()) {
    Column out = column;
    if (left->HasColumn(out.name)) out.name += "_2";
    columns.push_back(std::move(out));
  }
  TIOGA2_ASSIGN_OR_RETURN(Schema schema, Schema::Make(std::move(columns)));
  return std::make_shared<const Schema>(std::move(schema));
}

namespace {

/// If `predicate` is exactly `left_col = right_col` (one stored attribute on
/// each side of the join boundary), returns their indices for a hash join.
struct EquiJoinKey {
  size_t left_index;
  size_t right_index;  // index within the right relation
};

std::optional<EquiJoinKey> DetectEquiJoin(const expr::ExprNode& root,
                                          size_t left_width, size_t out_width) {
  if (root.kind != expr::ExprNode::Kind::kBinary ||
      root.binary_op != expr::BinaryOp::kEq) {
    return std::nullopt;
  }
  const expr::ExprNode& a = *root.children[0];
  const expr::ExprNode& b = *root.children[1];
  if (a.kind != expr::ExprNode::Kind::kAttributeRef ||
      b.kind != expr::ExprNode::Kind::kAttributeRef) {
    return std::nullopt;
  }
  if (!a.stored_index.has_value() || !b.stored_index.has_value()) return std::nullopt;
  size_t ai = *a.stored_index;
  size_t bi = *b.stored_index;
  if (ai >= out_width || bi >= out_width) return std::nullopt;
  if (ai < left_width && bi >= left_width) {
    return EquiJoinKey{ai, bi - left_width};
  }
  if (bi < left_width && ai >= left_width) {
    return EquiJoinKey{bi, ai - left_width};
  }
  return std::nullopt;
}

std::string HashKey(const Value& v) {
  // Values hash by canonical text; int/float unify so that 2 joins with 2.0.
  if (v.is_null()) return "\0null";
  if (v.is_int() || v.is_float()) {
    double d = v.AsDouble();
    if (d == static_cast<int64_t>(d)) return "n" + std::to_string(static_cast<int64_t>(d));
    return "n" + std::to_string(d);
  }
  return "v" + v.ToString();
}

Tuple ConcatTuples(const Tuple& left, const Tuple& right) {
  Tuple out;
  out.reserve(left.size() + right.size());
  out.insert(out.end(), left.begin(), left.end());
  out.insert(out.end(), right.begin(), right.end());
  return out;
}

Result<RelationPtr> RunNestedLoop(const RelationPtr& left, const RelationPtr& right,
                                  const SchemaPtr& out_schema,
                                  const expr::CompiledExpr& predicate) {
  RelationBuilder builder(out_schema);
  for (const Tuple& lrow : left->rows()) {
    for (const Tuple& rrow : right->rows()) {
      Tuple combined = ConcatTuples(lrow, rrow);
      expr::TupleAccessor accessor(combined);
      TIOGA2_ASSIGN_OR_RETURN(bool keep, PredicateKeeps(predicate, accessor));
      if (keep) builder.AddRowUnchecked(std::move(combined));
    }
  }
  return builder.Build();
}

}  // namespace

Result<JoinResult> Join(const RelationPtr& left, const RelationPtr& right,
                        const std::string& predicate_source) {
  TIOGA2_ASSIGN_OR_RETURN(SchemaPtr out_schema,
                          JoinOutputSchema(left->schema(), right->schema()));
  TIOGA2_ASSIGN_OR_RETURN(expr::CompiledExpr predicate,
                          CompilePredicate(out_schema, predicate_source));

  std::optional<EquiJoinKey> key = DetectEquiJoin(
      predicate.root(), left->schema()->num_columns(), out_schema->num_columns());
  if (!key.has_value()) {
    TIOGA2_ASSIGN_OR_RETURN(RelationPtr rel,
                            RunNestedLoop(left, right, out_schema, predicate));
    return JoinResult{std::move(rel), JoinAlgorithm::kNestedLoop};
  }

  // Hash join: build on the smaller input, probe with the larger.
  const bool build_left = left->num_rows() <= right->num_rows();
  const RelationPtr& build = build_left ? left : right;
  const RelationPtr& probe = build_left ? right : left;
  size_t build_key = build_left ? key->left_index : key->right_index;
  size_t probe_key = build_left ? key->right_index : key->left_index;

  std::unordered_multimap<std::string, size_t> table;
  table.reserve(build->num_rows());
  for (size_t i = 0; i < build->num_rows(); ++i) {
    const Value& v = build->row(i)[build_key];
    if (v.is_null()) continue;  // nulls never join
    table.emplace(HashKey(v), i);
  }
  RelationBuilder builder(out_schema);
  for (const Tuple& probe_row : probe->rows()) {
    const Value& v = probe_row[probe_key];
    if (v.is_null()) continue;
    auto [begin, end] = table.equal_range(HashKey(v));
    for (auto it = begin; it != end; ++it) {
      const Tuple& build_row = build->row(it->second);
      // Hash collisions across types are resolved by a real equality check.
      if (!build_row[build_key].Equals(v)) continue;
      builder.AddRowUnchecked(build_left ? ConcatTuples(build_row, probe_row)
                                         : ConcatTuples(probe_row, build_row));
    }
  }
  return JoinResult{builder.Build(), JoinAlgorithm::kHash};
}

Result<RelationPtr> NestedLoopJoin(const RelationPtr& left, const RelationPtr& right,
                                   const std::string& predicate_source) {
  TIOGA2_ASSIGN_OR_RETURN(SchemaPtr out_schema,
                          JoinOutputSchema(left->schema(), right->schema()));
  TIOGA2_ASSIGN_OR_RETURN(expr::CompiledExpr predicate,
                          CompilePredicate(out_schema, predicate_source));
  return RunNestedLoop(left, right, out_schema, predicate);
}

namespace {

/// Three-way compare of two cells of one typed column, mirroring
/// Value::Compare exactly: nulls first, numeric columns compare as double
/// (Value::Compare routes int pairs through AsDouble as well — keeping that
/// quirk here is what makes the typed sort bit-identical to the scalar one).
int CompareColumnCells(const ColumnVector& col, size_t a, size_t b) {
  const bool an = col.IsNull(a);
  const bool bn = col.IsNull(b);
  if (an || bn) return an == bn ? 0 : (an ? -1 : 1);
  switch (col.type) {
    case DataType::kInt:
    case DataType::kFloat: {
      double x = col.type == DataType::kInt ? static_cast<double>(col.ints[a])
                                            : col.floats[a];
      double y = col.type == DataType::kInt ? static_cast<double>(col.ints[b])
                                            : col.floats[b];
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    case DataType::kString: {
      int c = col.strings[a].compare(col.strings[b]);
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    case DataType::kDate: {
      return col.dates[a] < col.dates[b] ? -1 : (col.dates[a] > col.dates[b] ? 1 : 0);
    }
    case DataType::kBool:
      return (col.bools[a] ? 1 : 0) - (col.bools[b] ? 1 : 0);
    case DataType::kDisplay:
      break;  // rejected before the sort starts
  }
  return 0;
}

}  // namespace

Result<RelationPtr> Sort(const RelationPtr& input, const std::string& column,
                         bool ascending, const ExecPolicy& policy) {
  TIOGA2_ASSIGN_OR_RETURN(size_t index, input->schema()->ColumnIndex(column));
  if (input->schema()->column(index).type == DataType::kDisplay) {
    return Status::TypeError("cannot sort by a display column");
  }
  std::vector<size_t> order(input->num_rows());
  std::iota(order.begin(), order.end(), 0);
  if (policy.vectorized) {
    // Sort key extraction through the columnar view: one typed column scan
    // instead of a Value variant dispatch per comparison.
    const ColumnVector& col = input->columnar().column(index);
    ++expr::BatchMetrics::Global().sort_key_batches;
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      int cmp = CompareColumnCells(col, a, b);
      return ascending ? cmp < 0 : cmp > 0;
    });
  } else {
    ++expr::BatchMetrics::Global().sort_scalar_fallbacks;
    Status failure = Status::OK();
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      Result<int> cmp = input->row(a)[index].Compare(input->row(b)[index]);
      if (!cmp.ok()) {
        if (failure.ok()) failure = cmp.status();
        return false;
      }
      return ascending ? cmp.value() < 0 : cmp.value() > 0;
    });
    TIOGA2_RETURN_IF_ERROR(failure);
  }
  RelationBuilder builder(input->schema());
  builder.Reserve(input->num_rows());
  for (size_t i : order) builder.AddRowUnchecked(input->row(i));
  return builder.Build();
}

Result<RelationPtr> Limit(const RelationPtr& input, size_t n) {
  RelationBuilder builder(input->schema());
  size_t count = std::min(n, input->num_rows());
  builder.Reserve(count);
  for (size_t i = 0; i < count; ++i) builder.AddRowUnchecked(input->row(i));
  return builder.Build();
}

}  // namespace tioga2::db
