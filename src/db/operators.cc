#include "db/operators.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <memory>
#include <numeric>
#include <utility>

#include "common/rng.h"
#include "db/morsel.h"
#include "expr/batch.h"

namespace tioga2::db {

using types::DataType;
using types::Value;

Result<bool> PredicateKeeps(const expr::CompiledExpr& predicate,
                            const expr::RowAccessor& row) {
  TIOGA2_ASSIGN_OR_RETURN(Value keep, predicate.Eval(row));
  return !keep.is_null() && keep.bool_value();
}

expr::TypeEnv SchemaEnv(const SchemaPtr& schema) {
  return [schema](const std::string& name) -> std::optional<expr::AttrInfo> {
    std::optional<size_t> index = schema->FindColumn(name);
    if (!index.has_value()) return std::nullopt;
    return expr::AttrInfo{schema->column(*index).type, *index};
  };
}

Result<expr::CompiledExpr> CompilePredicate(const SchemaPtr& schema,
                                            const std::string& predicate_source) {
  TIOGA2_ASSIGN_OR_RETURN(expr::CompiledExpr predicate,
                          expr::CompiledExpr::Compile(predicate_source, SchemaEnv(schema)));
  if (predicate.result_type() != DataType::kBool) {
    return Status::TypeError("predicate '" + predicate_source + "' has type " +
                             types::DataTypeToString(predicate.result_type()) +
                             ", want bool");
  }
  return predicate;
}

Result<RelationPtr> Project(const RelationPtr& input,
                            const std::vector<std::string>& columns) {
  std::vector<size_t> indices;
  std::vector<Column> out_columns;
  indices.reserve(columns.size());
  for (const std::string& name : columns) {
    TIOGA2_ASSIGN_OR_RETURN(size_t index, input->schema()->ColumnIndex(name));
    indices.push_back(index);
    out_columns.push_back(input->schema()->column(index));
  }
  TIOGA2_ASSIGN_OR_RETURN(Schema schema, Schema::Make(std::move(out_columns)));
  RelationBuilder builder(std::make_shared<const Schema>(std::move(schema)));
  builder.Reserve(input->num_rows());
  for (size_t r = 0; r < input->num_rows(); ++r) {
    Tuple out;
    out.reserve(indices.size());
    for (size_t index : indices) out.push_back(input->at(r, index));
    builder.AddRowUnchecked(std::move(out));
  }
  return builder.Build();
}

Result<RelationPtr> RestrictScalar(const RelationPtr& input,
                                   const expr::CompiledExpr& predicate) {
  if (predicate.result_type() != DataType::kBool) {
    return Status::TypeError("Restrict predicate must be bool");
  }
  expr::BatchMetrics::Global().restrict_scalar_rows += input->num_rows();
  RelationBuilder builder(input->schema());
  for (size_t r = 0; r < input->num_rows(); ++r) {
    expr::TupleAccessor accessor(input->row(r));
    TIOGA2_ASSIGN_OR_RETURN(bool keep, PredicateKeeps(predicate, accessor));
    if (keep) builder.AddRowShared(input->row_ptr(r));
  }
  return builder.Build();
}

Result<RelationPtr> Restrict(const RelationPtr& input,
                             const expr::CompiledExpr& predicate,
                             const ExecPolicy& policy) {
  if (!policy.vectorized) return RestrictScalar(input, predicate);
  if (predicate.result_type() != DataType::kBool) {
    return Status::TypeError("Restrict predicate must be bool");
  }
  expr::BatchMetrics& metrics = expr::BatchMetrics::Global();
  metrics.restrict_rows += input->num_rows();
  // Morsel-driven predicate evaluation: each morsel filters its row range
  // with its own BatchEvaluator (kBatchSize batches inside), writing the
  // surviving row ids into its own slot. Shared state touched from workers
  // — the input's lazily built columnar image and the metrics counters — is
  // call_once / atomic.
  const size_t num_morsels = NumMorsels(policy, input->num_rows());
  std::vector<expr::Selection> survivors(num_morsels);
  TIOGA2_RETURN_IF_ERROR(ForEachMorsel(
      policy, input->num_rows(),
      [&](size_t morsel, size_t begin, size_t end) -> Status {
        expr::RelationBatchSource source(*input);
        expr::BatchEvaluator evaluator(source, policy);
        expr::Selection sel;
        expr::Selection& kept_rows = survivors[morsel];
        for (size_t b = begin; b < end; b += expr::kBatchSize) {
          const size_t bend = std::min(b + expr::kBatchSize, end);
          expr::IdentitySelection(b, bend, &sel);
          TIOGA2_ASSIGN_OR_RETURN(expr::Selection kept,
                                  evaluator.FilterTrue(predicate.root(), sel));
          kept_rows.insert(kept_rows.end(), kept.begin(), kept.end());
          ++metrics.restrict_batches;
        }
        metrics.nodes_vectorized += evaluator.stats().vectorized_nodes;
        metrics.nodes_fallback += evaluator.stats().fallback_nodes;
        return Status::OK();
      }));
  // Stitch the per-morsel survivor lists back together in morsel order: row
  // ids ascend within each morsel and morsels cover ascending ranges, so
  // the merged selection is byte-identical to the serial scan.
  size_t total = 0;
  for (const expr::Selection& s : survivors) total += s.size();
  expr::Selection merged;
  merged.reserve(total);
  for (expr::Selection& s : survivors) {
    merged.insert(merged.end(), s.begin(), s.end());
  }
  // Surviving rows become a selection view over the input: no tuple is
  // copied, and columnar() gathers the survivors straight from the input's
  // typed columns.
  return Relation::MakeSelectionView(input, std::move(merged));
}

Result<RelationPtr> Restrict(const RelationPtr& input,
                             const std::string& predicate_source,
                             const ExecPolicy& policy) {
  TIOGA2_ASSIGN_OR_RETURN(expr::CompiledExpr predicate,
                          CompilePredicate(input->schema(), predicate_source));
  return Restrict(input, predicate, policy);
}

Result<RelationPtr> Sample(const RelationPtr& input, double probability, uint64_t seed) {
  if (probability < 0.0 || probability > 1.0) {
    return Status::InvalidArgument("sampling probability must be in [0, 1], got " +
                                   std::to_string(probability));
  }
  Rng rng(seed);
  RelationBuilder builder(input->schema());
  for (size_t r = 0; r < input->num_rows(); ++r) {
    if (rng.NextDouble() < probability) builder.AddRowShared(input->row_ptr(r));
  }
  return builder.Build();
}

Result<SchemaPtr> JoinOutputSchema(const SchemaPtr& left, const SchemaPtr& right) {
  std::vector<Column> columns = left->columns();
  for (const Column& column : right->columns()) {
    Column out = column;
    if (left->HasColumn(out.name)) out.name += "_2";
    columns.push_back(std::move(out));
  }
  TIOGA2_ASSIGN_OR_RETURN(Schema schema, Schema::Make(std::move(columns)));
  return std::make_shared<const Schema>(std::move(schema));
}

namespace {

/// If `predicate` is exactly `left_col = right_col` (one stored attribute on
/// each side of the join boundary), returns their indices for a hash join.
struct EquiJoinKey {
  size_t left_index;
  size_t right_index;  // index within the right relation
};

std::optional<EquiJoinKey> DetectEquiJoin(const expr::ExprNode& root,
                                          size_t left_width, size_t out_width) {
  if (root.kind != expr::ExprNode::Kind::kBinary ||
      root.binary_op != expr::BinaryOp::kEq) {
    return std::nullopt;
  }
  const expr::ExprNode& a = *root.children[0];
  const expr::ExprNode& b = *root.children[1];
  if (a.kind != expr::ExprNode::Kind::kAttributeRef ||
      b.kind != expr::ExprNode::Kind::kAttributeRef) {
    return std::nullopt;
  }
  if (!a.stored_index.has_value() || !b.stored_index.has_value()) return std::nullopt;
  size_t ai = *a.stored_index;
  size_t bi = *b.stored_index;
  if (ai >= out_width || bi >= out_width) return std::nullopt;
  if (ai < left_width && bi >= left_width) {
    return EquiJoinKey{ai, bi - left_width};
  }
  if (bi < left_width && ai >= left_width) {
    return EquiJoinKey{bi, ai - left_width};
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Join-key hashing.
//
// Keys hash as a typed uint64_t over the canonical value — no per-row string
// allocation (the old text key cost one std::string per probe and per build
// row) and no narrowing casts (the old `d == static_cast<int64_t>(d)` test
// was undefined behavior for keys outside int64 range, and
// std::to_string(double)'s 6-digit rounding collided distinct float keys).
//
// The hash must be consistent with Value::Equals, which unifies numerics:
// `2` joins `2.0`. So int and float keys both hash their AsDouble() image
// (the int64→double conversion is well-defined for every value; ints beyond
// 2^53 that round to the same double also compare equal under Equals, so
// hashing the rounded image is exactly right). -0.0 is collapsed onto +0.0
// before hashing because they compare equal. Equal values therefore hash
// equal; distinct values may still collide and are resolved by a real
// equality check at probe time.

/// splitmix64 finalizer: a cheap full-avalanche mix.
inline uint64_t MixHash(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

// Per-type seeds keep, say, Int(0) and Bool(false) from colliding by
// construction.
constexpr uint64_t kNumericSeed = 0x9e3779b97f4a7c15ULL;
constexpr uint64_t kBoolSeed = 0xa0761d6478bd642fULL;
constexpr uint64_t kDateSeed = 0xe7037ed1a0b428dbULL;
constexpr uint64_t kStringSeed = 0x8ebc6af09c88c6e3ULL;

inline uint64_t HashNumericKey(double d) {
  if (d == 0.0) d = 0.0;  // -0.0 and +0.0 compare equal → must hash equal
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(d));
  std::memcpy(&bits, &d, sizeof(bits));
  return MixHash(bits ^ kNumericSeed);
}

inline uint64_t HashStringKey(const std::string& s) {
  // FNV-1a, finalized through the mixer.
  uint64_t h = 14695981039346656037ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return MixHash(h ^ kStringSeed);
}

/// Hash of a non-null scalar key (the row-store path).
uint64_t HashKeyValue(const Value& v) {
  switch (v.type()) {
    case DataType::kInt:
    case DataType::kFloat:
      return HashNumericKey(v.AsDouble());
    case DataType::kBool:
      return MixHash(kBoolSeed ^ (v.bool_value() ? 1 : 0));
    case DataType::kDate:
      return MixHash(kDateSeed ^ static_cast<uint64_t>(v.date_value().DaysValue()));
    case DataType::kString:
      return HashStringKey(v.string_value());
    case DataType::kDisplay:
      return HashStringKey(v.ToString());
  }
  return 0;
}

/// Hash of a non-null key cell of a typed column (the columnar path). Must
/// agree with HashKeyValue on every value — join_test checks the property.
uint64_t HashKeyCell(const ColumnVector& col, size_t row) {
  switch (col.type) {
    case DataType::kInt:
      return HashNumericKey(static_cast<double>(col.ints[row]));
    case DataType::kFloat:
      return HashNumericKey(col.floats[row]);
    case DataType::kBool:
      return MixHash(kBoolSeed ^ (col.bools[row] != 0 ? 1 : 0));
    case DataType::kDate:
      return MixHash(kDateSeed ^ static_cast<uint64_t>(col.dates[row]));
    case DataType::kString:
      return HashStringKey(col.strings[row]);
    case DataType::kDisplay:
      return HashStringKey(col.boxed[row].ToString());
  }
  return 0;
}

/// Equality of two non-null key cells, mirroring Value::Equals: numerics
/// compare as double across int/float, other types require matching type.
bool JoinCellsEqual(const ColumnVector& a, size_t ar, const ColumnVector& b,
                    size_t br) {
  const bool a_num = a.type == DataType::kInt || a.type == DataType::kFloat;
  const bool b_num = b.type == DataType::kInt || b.type == DataType::kFloat;
  if (a_num && b_num) {
    double x = a.type == DataType::kInt ? static_cast<double>(a.ints[ar]) : a.floats[ar];
    double y = b.type == DataType::kInt ? static_cast<double>(b.ints[br]) : b.floats[br];
    return x == y;
  }
  if (a.type != b.type) return false;
  switch (a.type) {
    case DataType::kBool:
      return a.bools[ar] == b.bools[br];
    case DataType::kString:
      return a.strings[ar] == b.strings[br];
    case DataType::kDate:
      return a.dates[ar] == b.dates[br];
    case DataType::kDisplay:
      return a.boxed[ar].Equals(b.boxed[br]);
    case DataType::kInt:
    case DataType::kFloat:
      break;  // handled above
  }
  return false;
}

/// Compact chained hash table over the build side's non-null key rows:
/// flat arrays, power-of-two buckets, no per-entry allocation. Entries are
/// inserted in *descending* build-row order so each bucket chain enumerates
/// candidates in ascending row order — one half of the left-major ordering
/// contract.
class JoinHashTable {
 public:
  template <typename IsNullFn, typename HashFn>
  void Build(size_t n, const IsNullFn& is_null, const HashFn& hash) {
    size_t buckets = 16;
    while (buckets < 2 * n) buckets <<= 1;
    mask_ = buckets - 1;
    head_.assign(buckets, kEnd);
    next_.reserve(n);
    hashes_.reserve(n);
    rows_.reserve(n);
    for (size_t i = n; i-- > 0;) {
      if (is_null(i)) continue;  // null keys never join
      const uint64_t h = hash(i);
      const size_t b = static_cast<size_t>(h) & mask_;
      next_.push_back(head_[b]);
      hashes_.push_back(h);
      rows_.push_back(static_cast<uint32_t>(i));
      head_[b] = static_cast<uint32_t>(rows_.size() - 1);
    }
  }

  /// Calls `match(build_row)` for every entry whose full hash equals `h`,
  /// in ascending build-row order.
  template <typename MatchFn>
  void ForEachCandidate(uint64_t h, const MatchFn& match) const {
    for (uint32_t e = head_[static_cast<size_t>(h) & mask_]; e != kEnd;
         e = next_[e]) {
      if (hashes_[e] == h) match(rows_[e]);
    }
  }

 private:
  static constexpr uint32_t kEnd = std::numeric_limits<uint32_t>::max();
  size_t mask_ = 0;
  std::vector<uint32_t> head_;
  std::vector<uint32_t> next_;
  std::vector<uint64_t> hashes_;
  std::vector<uint32_t> rows_;
};

/// Matched (left row, right row) pairs, position-aligned.
struct JoinPairs {
  std::vector<uint32_t> left;
  std::vector<uint32_t> right;
};

/// Stable counting sort of the pairs by left row id. Probing emits pairs
/// grouped by probe row, so when the probe side was the *right* input the
/// pair list is right-major and must be reordered; stability keeps right ids
/// ascending within each left id (the probe scanned them in order).
void ReorderLeftMajor(size_t left_num_rows, JoinPairs* pairs) {
  std::vector<uint32_t> offsets(left_num_rows + 1, 0);
  for (uint32_t l : pairs->left) ++offsets[l + 1];
  for (size_t i = 1; i <= left_num_rows; ++i) offsets[i] += offsets[i - 1];
  std::vector<uint32_t> left(pairs->left.size());
  std::vector<uint32_t> right(pairs->right.size());
  for (size_t k = 0; k < pairs->left.size(); ++k) {
    const uint32_t pos = offsets[pairs->left[k]]++;
    left[pos] = pairs->left[k];
    right[pos] = pairs->right[k];
  }
  pairs->left = std::move(left);
  pairs->right = std::move(right);
}

/// Builds on one side, probes with the other, and returns matches in
/// left-major order regardless of which side was built — the build-side
/// choice is a cost heuristic and must never show up in output order (the
/// old implementation emitted probe-major rows, so the order flipped when an
/// update grew one input past the other).
template <typename BuildNull, typename BuildHash, typename ProbeNull,
          typename ProbeHash, typename EqualFn>
JoinPairs HashJoinPairs(const ExecPolicy& policy, size_t left_num_rows,
                        size_t build_num_rows, size_t probe_num_rows,
                        bool build_left, const BuildNull& build_null,
                        const BuildHash& build_hash, const ProbeNull& probe_null,
                        const ProbeHash& probe_hash, const EqualFn& equal) {
  // The build stays serial (one shared read-only table); the probe fans out
  // in morsels of probe rows. Each morsel emits matches into its own
  // JoinPairs slot; concatenating the slots in morsel order reproduces the
  // serial probe's emission order exactly, because the serial loop scans
  // probe rows ascending and morsels cover ascending disjoint ranges.
  JoinHashTable table;
  table.Build(build_num_rows, build_null, build_hash);
  const size_t num_morsels = NumMorsels(policy, probe_num_rows);
  std::vector<JoinPairs> per(num_morsels);
  const Status probe_status = ForEachMorsel(
      policy, probe_num_rows,
      [&](size_t morsel, size_t begin, size_t end) -> Status {
        JoinPairs& out = per[morsel];
        for (size_t j = begin; j < end; ++j) {
          if (probe_null(j)) continue;
          const uint64_t h = probe_hash(j);
          table.ForEachCandidate(h, [&](uint32_t i) {
            // Hash collisions are resolved by a real equality check.
            if (!equal(i, j)) return;
            if (build_left) {
              out.left.push_back(i);
              out.right.push_back(static_cast<uint32_t>(j));
            } else {
              out.left.push_back(static_cast<uint32_t>(j));
              out.right.push_back(i);
            }
          });
        }
        return Status::OK();
      });
  (void)probe_status;  // the body is infallible
  JoinPairs pairs;
  size_t total = 0;
  for (const JoinPairs& p : per) total += p.left.size();
  pairs.left.reserve(total);
  pairs.right.reserve(total);
  for (JoinPairs& p : per) {
    pairs.left.insert(pairs.left.end(), p.left.begin(), p.left.end());
    pairs.right.insert(pairs.right.end(), p.right.begin(), p.right.end());
  }
  if (build_left) ReorderLeftMajor(left_num_rows, &pairs);
  return pairs;
}

Tuple ConcatTuples(const Tuple& left, const Tuple& right) {
  Tuple out;
  out.reserve(left.size() + right.size());
  out.insert(out.end(), left.begin(), left.end());
  out.insert(out.end(), right.begin(), right.end());
  return out;
}

Result<RelationPtr> RunNestedLoop(const RelationPtr& left, const RelationPtr& right,
                                  const SchemaPtr& out_schema,
                                  const expr::CompiledExpr& predicate) {
  RelationBuilder builder(out_schema);
  for (size_t l = 0; l < left->num_rows(); ++l) {
    const Tuple& lrow = left->row(l);
    for (size_t r = 0; r < right->num_rows(); ++r) {
      Tuple combined = ConcatTuples(lrow, right->row(r));
      expr::TupleAccessor accessor(combined);
      TIOGA2_ASSIGN_OR_RETURN(bool keep, PredicateKeeps(predicate, accessor));
      if (keep) builder.AddRowUnchecked(std::move(combined));
    }
  }
  return builder.Build();
}

/// BatchSource over one slice of the cross product: a fixed left row against
/// every right row. Right columns borrow the right relation's columnar view;
/// left columns materialize lazily as splats of the fixed left cell (only
/// the columns the predicate actually references get splatted).
class CrossBlockSource : public expr::BatchSource {
 public:
  CrossBlockSource(const Relation& left, const Relation& right)
      : left_(left),
        right_(right),
        left_width_(left.schema()->num_columns()),
        splats_(left_width_) {}

  void SetLeftRow(size_t row) {
    left_row_ = row;
    for (auto& splat : splats_) splat.reset();
  }

  size_t num_rows() const override { return right_.num_rows(); }

  const ColumnVector* StoredColumn(size_t index) const override {
    if (index >= left_width_) {
      return &right_.columnar().column(index - left_width_);
    }
    std::unique_ptr<ColumnVector>& splat = splats_[index];
    if (splat == nullptr) {
      splat = std::make_unique<ColumnVector>(SplatCell(
          left_.columnar().column(index), left_row_, right_.num_rows()));
    }
    return splat.get();
  }

  Result<Value> StoredAt(size_t index, size_t row) const override {
    if (index < left_width_) return left_.at(left_row_, index);
    return right_.at(row, index - left_width_);
  }

  Result<Value> NamedAt(const std::string& name, size_t) const override {
    return Status::NotFound("no computed attribute '" + name +
                            "' on a join input");
  }

 private:
  const Relation& left_;
  const Relation& right_;
  size_t left_width_;
  size_t left_row_ = 0;
  mutable std::vector<std::unique_ptr<ColumnVector>> splats_;
};

/// Vectorized nested loop: the predicate runs through expr::BatchEvaluator
/// over kBatchSize blocks of right rows per left row, the way Restrict
/// batches. Output order (left-major) matches the scalar nested loop.
Result<RelationPtr> RunNestedLoopBatched(const RelationPtr& left,
                                         const RelationPtr& right,
                                         const SchemaPtr& out_schema,
                                         const expr::CompiledExpr& predicate,
                                         const ExecPolicy& policy) {
  expr::BatchMetrics& metrics = expr::BatchMetrics::Global();
  // Morselize over *left* rows, but each left row costs a full scan of the
  // right side, so scale the per-morsel left-row count down so one morsel
  // still covers roughly policy.morsel_rows cells of the cross product.
  ExecPolicy morsel_policy = policy;
  morsel_policy.morsel_rows = std::max<size_t>(
      1, policy.morsel_rows / std::max<size_t>(1, right->num_rows()));
  const size_t num_morsels = NumMorsels(morsel_policy, left->num_rows());
  std::vector<JoinPairs> per(num_morsels);
  TIOGA2_RETURN_IF_ERROR(ForEachMorsel(
      morsel_policy, left->num_rows(),
      [&](size_t morsel, size_t lbegin, size_t lend) -> Status {
        CrossBlockSource source(*left, *right);
        JoinPairs& out = per[morsel];
        expr::Selection sel;
        for (size_t l = lbegin; l < lend; ++l) {
          source.SetLeftRow(l);
          expr::BatchEvaluator evaluator(source, policy);
          for (size_t begin = 0; begin < right->num_rows();
               begin += expr::kBatchSize) {
            const size_t end =
                std::min(begin + expr::kBatchSize, right->num_rows());
            expr::IdentitySelection(begin, end, &sel);
            TIOGA2_ASSIGN_OR_RETURN(expr::Selection kept,
                                    evaluator.FilterTrue(predicate.root(), sel));
            for (uint32_t r : kept) {
              out.left.push_back(static_cast<uint32_t>(l));
              out.right.push_back(r);
            }
            ++metrics.join_nested_batches;
          }
          metrics.nodes_vectorized += evaluator.stats().vectorized_nodes;
          metrics.nodes_fallback += evaluator.stats().fallback_nodes;
        }
        return Status::OK();
      }));
  // Left-major merge in morsel order — identical to the serial double loop.
  JoinPairs pairs;
  size_t total = 0;
  for (const JoinPairs& p : per) total += p.left.size();
  pairs.left.reserve(total);
  pairs.right.reserve(total);
  for (JoinPairs& p : per) {
    pairs.left.insert(pairs.left.end(), p.left.begin(), p.left.end());
    pairs.right.insert(pairs.right.end(), p.right.begin(), p.right.end());
  }
  return Relation::MakeJoinView(out_schema, left, std::move(pairs.left), right,
                                std::move(pairs.right));
}

// Row ids in views and selections are uint32.
constexpr size_t kMaxJoinRows = std::numeric_limits<uint32_t>::max();

}  // namespace

Result<JoinResult> Join(const RelationPtr& left, const RelationPtr& right,
                        const std::string& predicate_source,
                        const ExecPolicy& policy) {
  if (left->num_rows() > kMaxJoinRows || right->num_rows() > kMaxJoinRows) {
    return Status::InvalidArgument("join input exceeds 2^32-1 rows");
  }
  TIOGA2_ASSIGN_OR_RETURN(SchemaPtr out_schema,
                          JoinOutputSchema(left->schema(), right->schema()));
  TIOGA2_ASSIGN_OR_RETURN(expr::CompiledExpr predicate,
                          CompilePredicate(out_schema, predicate_source));

  std::optional<EquiJoinKey> key = DetectEquiJoin(
      predicate.root(), left->schema()->num_columns(), out_schema->num_columns());
  if (!key.has_value()) {
    TIOGA2_ASSIGN_OR_RETURN(
        RelationPtr rel,
        policy.vectorized ? RunNestedLoopBatched(left, right, out_schema, predicate, policy)
                          : RunNestedLoop(left, right, out_schema, predicate));
    return JoinResult{std::move(rel), JoinAlgorithm::kNestedLoop};
  }

  // Hash join: build on the smaller input, probe with the larger. The
  // build-side choice only affects cost — HashJoinPairs emits left-major
  // order either way.
  const bool build_left = left->num_rows() <= right->num_rows();
  const RelationPtr& build = build_left ? left : right;
  const RelationPtr& probe = build_left ? right : left;
  const size_t build_key = build_left ? key->left_index : key->right_index;
  const size_t probe_key = build_left ? key->right_index : key->left_index;

  expr::BatchMetrics& metrics = expr::BatchMetrics::Global();
  if (policy.vectorized) {
    // Columnar path: hash typed key cells straight out of the inputs'
    // column vectors and emit a join view — no tuple is materialized and no
    // Value is boxed anywhere on this path.
    metrics.join_hash_build_rows += build->num_rows();
    metrics.join_hash_probe_rows += probe->num_rows();
    const ColumnVector& bcol = build->columnar().column(build_key);
    const ColumnVector& pcol = probe->columnar().column(probe_key);
    std::optional<JoinPairs> pairs;
    if (bcol.type == DataType::kString && pcol.type == DataType::kString) {
      if (bcol.has_dict() && pcol.has_dict()) {
        // Dictionary key path: hash and compare integer codes, never the
        // strings. Codes are only comparable within one dictionary, so when
        // the sides' tables differ the build side's codes are remapped onto
        // probe-side codes once (one binary search per *distinct* build
        // value); a build value absent from the probe dictionary can never
        // match any probe row, so its rows are skipped like null keys. Pair
        // output is identical to string hashing because code equality ⇔
        // string equality after the remap.
        constexpr uint32_t kNoMatch = std::numeric_limits<uint32_t>::max();
        const bool shared = bcol.dict_values == pcol.dict_values;
        std::vector<uint32_t> remap;
        if (!shared) {
          const std::vector<std::string>& bdict = *bcol.dict_values;
          const std::vector<std::string>& pdict = *pcol.dict_values;
          remap.resize(bdict.size(), kNoMatch);
          for (size_t c = 0; c < bdict.size(); ++c) {
            const auto it =
                std::lower_bound(pdict.begin(), pdict.end(), bdict[c]);
            if (it != pdict.end() && *it == bdict[c]) {
              remap[c] = static_cast<uint32_t>(it - pdict.begin());
            }
          }
        }
        auto build_code = [&](size_t i) {
          const uint32_t c = bcol.dict_codes[i];
          return shared ? c : remap[c];
        };
        pairs = HashJoinPairs(
            policy, left->num_rows(), build->num_rows(), probe->num_rows(),
            build_left,
            [&](size_t i) {
              return bcol.IsNull(i) || build_code(i) == kNoMatch;
            },
            [&](size_t i) { return MixHash(kStringSeed ^ build_code(i)); },
            [&](size_t j) { return pcol.IsNull(j); },
            [&](size_t j) { return MixHash(kStringSeed ^ pcol.dict_codes[j]); },
            [&](size_t i, size_t j) {
              return build_code(i) == pcol.dict_codes[j];
            });
      } else {
        // String keys without dictionaries on both sides (encoding off, or
        // mixed-provenance inputs): the generic cell path below rehashes the
        // strings.
        ++metrics.dict_remap_fallbacks;
      }
    }
    if (!pairs.has_value()) {
      pairs = HashJoinPairs(
          policy, left->num_rows(), build->num_rows(), probe->num_rows(),
          build_left, [&](size_t i) { return bcol.IsNull(i); },
          [&](size_t i) { return HashKeyCell(bcol, i); },
          [&](size_t j) { return pcol.IsNull(j); },
          [&](size_t j) { return HashKeyCell(pcol, j); },
          [&](size_t i, size_t j) { return JoinCellsEqual(bcol, i, pcol, j); });
    }
    RelationPtr rel =
        Relation::MakeJoinView(std::move(out_schema), left, std::move(pairs->left),
                               right, std::move(pairs->right));
    return JoinResult{std::move(rel), JoinAlgorithm::kHash};
  }

  // Scalar oracle path: hash Values tuple-at-a-time, materialize rows.
  // ForEachMorsel sees vectorized == false here and stays serial.
  JoinPairs pairs = HashJoinPairs(
      policy, left->num_rows(), build->num_rows(), probe->num_rows(), build_left,
      [&](size_t i) { return build->at(i, build_key).is_null(); },
      [&](size_t i) { return HashKeyValue(build->at(i, build_key)); },
      [&](size_t j) { return probe->at(j, probe_key).is_null(); },
      [&](size_t j) { return HashKeyValue(probe->at(j, probe_key)); },
      [&](size_t i, size_t j) {
        return build->at(i, build_key).Equals(probe->at(j, probe_key));
      });
  RelationBuilder builder(out_schema);
  builder.Reserve(pairs.left.size());
  for (size_t k = 0; k < pairs.left.size(); ++k) {
    builder.AddRowUnchecked(
        ConcatTuples(left->row(pairs.left[k]), right->row(pairs.right[k])));
  }
  return JoinResult{builder.Build(), JoinAlgorithm::kHash};
}

Result<RelationPtr> NestedLoopJoin(const RelationPtr& left, const RelationPtr& right,
                                   const std::string& predicate_source,
                                   const ExecPolicy& policy) {
  if (left->num_rows() > kMaxJoinRows || right->num_rows() > kMaxJoinRows) {
    return Status::InvalidArgument("join input exceeds 2^32-1 rows");
  }
  TIOGA2_ASSIGN_OR_RETURN(SchemaPtr out_schema,
                          JoinOutputSchema(left->schema(), right->schema()));
  TIOGA2_ASSIGN_OR_RETURN(expr::CompiledExpr predicate,
                          CompilePredicate(out_schema, predicate_source));
  return policy.vectorized ? RunNestedLoopBatched(left, right, out_schema, predicate, policy)
                           : RunNestedLoop(left, right, out_schema, predicate);
}

namespace {

/// Three-way compare of two cells of one typed column, mirroring
/// Value::Compare exactly: nulls first, numeric columns compare as double
/// (Value::Compare routes int pairs through AsDouble as well — keeping that
/// quirk here is what makes the typed sort bit-identical to the scalar one).
int CompareColumnCells(const ColumnVector& col, size_t a, size_t b) {
  const bool an = col.IsNull(a);
  const bool bn = col.IsNull(b);
  if (an || bn) return an == bn ? 0 : (an ? -1 : 1);
  switch (col.type) {
    case DataType::kInt:
    case DataType::kFloat: {
      double x = col.type == DataType::kInt ? static_cast<double>(col.ints[a])
                                            : col.floats[a];
      double y = col.type == DataType::kInt ? static_cast<double>(col.ints[b])
                                            : col.floats[b];
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    case DataType::kString: {
      int c = col.strings[a].compare(col.strings[b]);
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    case DataType::kDate: {
      return col.dates[a] < col.dates[b] ? -1 : (col.dates[a] > col.dates[b] ? 1 : 0);
    }
    case DataType::kBool:
      return (col.bools[a] ? 1 : 0) - (col.bools[b] ? 1 : 0);
    case DataType::kDisplay:
      break;  // rejected before the sort starts
  }
  return 0;
}

}  // namespace

Result<RelationPtr> Sort(const RelationPtr& input, const std::string& column,
                         bool ascending, const ExecPolicy& policy) {
  TIOGA2_ASSIGN_OR_RETURN(size_t index, input->schema()->ColumnIndex(column));
  if (input->schema()->column(index).type == DataType::kDisplay) {
    return Status::TypeError("cannot sort by a display column");
  }
  if (policy.vectorized) {
    // Sort key extraction through the columnar view: one typed column scan
    // instead of a Value variant dispatch per comparison. The permutation
    // becomes a selection view — no tuple is copied or re-referenced.
    const ColumnVector& col = input->columnar().column(index);
    ++expr::BatchMetrics::Global().sort_key_batches;
    std::vector<uint32_t> order(input->num_rows());
    std::iota(order.begin(), order.end(), 0u);
    std::stable_sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
      int cmp = CompareColumnCells(col, a, b);
      return ascending ? cmp < 0 : cmp > 0;
    });
    return Relation::MakeSelectionView(input, std::move(order));
  }
  ++expr::BatchMetrics::Global().sort_scalar_fallbacks;
  std::vector<size_t> order(input->num_rows());
  std::iota(order.begin(), order.end(), 0);
  Status failure = Status::OK();
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    Result<int> cmp = input->at(a, index).Compare(input->at(b, index));
    if (!cmp.ok()) {
      if (failure.ok()) failure = cmp.status();
      return false;
    }
    return ascending ? cmp.value() < 0 : cmp.value() > 0;
  });
  TIOGA2_RETURN_IF_ERROR(failure);
  RelationBuilder builder(input->schema());
  builder.Reserve(input->num_rows());
  for (size_t i : order) builder.AddRowShared(input->row_ptr(i));
  return builder.Build();
}

Result<RelationPtr> Limit(const RelationPtr& input, size_t n) {
  RelationBuilder builder(input->schema());
  size_t count = std::min(n, input->num_rows());
  builder.Reserve(count);
  for (size_t i = 0; i < count; ++i) builder.AddRowShared(input->row_ptr(i));
  return builder.Build();
}

}  // namespace tioga2::db
