#include "db/morsel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <vector>

#include "expr/batch.h"

namespace tioga2::db {

size_t MorselRows(const ExecPolicy& policy) {
  return policy.morsel_rows == 0 ? 1 : policy.morsel_rows;
}

size_t NumMorsels(const ExecPolicy& policy, size_t num_rows) {
  if (num_rows == 0) return 0;
  const size_t rows = MorselRows(policy);
  return (num_rows + rows - 1) / rows;
}

namespace {

/// Shared state of one fan-out. Held by shared_ptr so help tickets that the
/// runner executes *after* the group completed (they were queued behind
/// other work) find live state, claim nothing, and return.
struct MorselGroup {
  size_t num_morsels = 0;
  size_t morsel_rows = 0;
  size_t num_rows = 0;
  /// Valid until every morsel is claimed; tickets only dereference it after
  /// a successful claim, and completion implies all morsels were claimed,
  /// so a stale ticket can never reach a dead callable.
  const MorselBody* body = nullptr;

  std::atomic<size_t> next{0};          // claim cursor
  std::atomic<uint64_t> stolen{0};      // morsels run by help tickets
  std::mutex mu;
  std::condition_variable cv;
  size_t completed = 0;                 // guarded by mu
  std::vector<Status> statuses;         // slot per morsel, guarded by mu

  /// Claims and runs morsels until the cursor is exhausted. The mutex
  /// hand-off on completion is what publishes each morsel's writes (into
  /// its caller-owned result slot) to the thread that merges them.
  void Drain(bool is_ticket) {
    for (;;) {
      const size_t m = next.fetch_add(1, std::memory_order_relaxed);
      if (m >= num_morsels) return;
      const size_t begin = m * morsel_rows;
      const size_t end = std::min(begin + morsel_rows, num_rows);
      Status status = (*body)(m, begin, end);
      if (is_ticket) stolen.fetch_add(1, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(mu);
      if (!status.ok()) statuses[m] = std::move(status);
      if (++completed == num_morsels) cv.notify_all();
    }
  }
};

}  // namespace

Status ForEachMorsel(const ExecPolicy& policy, size_t num_rows,
                     const MorselBody& body) {
  const size_t num_morsels = NumMorsels(policy, num_rows);
  if (num_morsels == 0) return Status::OK();
  const size_t morsel_rows = MorselRows(policy);
  expr::BatchMetrics& metrics = expr::BatchMetrics::Global();

  // The scalar oracle (vectorized == false) never fans out; neither does a
  // group a single worker or a single morsel could not speed up.
  MorselRunner* runner = policy.vectorized ? policy.runner : nullptr;
  if (runner == nullptr || runner->num_threads() < 2 || num_morsels < 2) {
    ++metrics.morsel_groups;
    metrics.morsels_executed += num_morsels;
    for (size_t m = 0; m < num_morsels; ++m) {
      const size_t begin = m * morsel_rows;
      const size_t end = std::min(begin + morsel_rows, num_rows);
      TIOGA2_RETURN_IF_ERROR(body(m, begin, end));
    }
    return Status::OK();
  }

  auto group = std::make_shared<MorselGroup>();
  group->num_morsels = num_morsels;
  group->morsel_rows = morsel_rows;
  group->num_rows = num_rows;
  group->body = &body;
  group->statuses.resize(num_morsels);
  // The caller drains too, so at most num_morsels - 1 tickets can ever find
  // work; capping at the worker count keeps the queue short.
  const size_t tickets = std::min(runner->num_threads(), num_morsels - 1);
  for (size_t t = 0; t < tickets; ++t) {
    runner->Submit([group] { group->Drain(/*is_ticket=*/true); });
  }
  group->Drain(/*is_ticket=*/false);
  {
    std::unique_lock<std::mutex> lock(group->mu);
    group->cv.wait(lock,
                   [&group] { return group->completed == group->num_morsels; });
  }

  ++metrics.morsel_groups;
  ++metrics.morsel_groups_parallel;
  metrics.morsels_executed += num_morsels;
  metrics.morsels_stolen += group->stolen.load(std::memory_order_relaxed);
  metrics.morsel_parallel_rows += num_rows;

  // Report the lowest-indexed failure so the error a caller sees does not
  // depend on thread interleaving.
  for (size_t m = 0; m < num_morsels; ++m) {
    if (!group->statuses[m].ok()) return std::move(group->statuses[m]);
  }
  return Status::OK();
}

}  // namespace tioga2::db
