#ifndef TIOGA2_DB_SCHEMA_H_
#define TIOGA2_DB_SCHEMA_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "types/data_type.h"

namespace tioga2::db {

/// One column of a relation: a name and an atomic type.
struct Column {
  std::string name;
  types::DataType type;

  friend bool operator==(const Column& a, const Column& b) = default;
};

/// An ordered list of uniquely named columns. Schemas are immutable and
/// shared between a relation and all tuples/operators derived from it.
class Schema {
 public:
  Schema() = default;

  /// Builds a schema, failing on duplicate or empty column names.
  static Result<Schema> Make(std::vector<Column> columns);

  /// Number of columns.
  size_t num_columns() const { return columns_.size(); }

  /// The columns in order.
  const std::vector<Column>& columns() const { return columns_; }

  /// Column at position `i` (bounds-unchecked hot path; i < num_columns()).
  const Column& column(size_t i) const { return columns_[i]; }

  /// Index of the column named `name`, if present.
  std::optional<size_t> FindColumn(const std::string& name) const;

  /// Index of the column named `name`, or NotFound.
  Result<size_t> ColumnIndex(const std::string& name) const;

  /// True iff a column named `name` exists.
  bool HasColumn(const std::string& name) const {
    return FindColumn(name).has_value();
  }

  /// A new schema with `column` appended; fails if the name collides.
  Result<Schema> AddColumn(Column column) const;

  /// A new schema without column `i`.
  Result<Schema> RemoveColumn(size_t i) const;

  /// "(name:type, ...)".
  std::string ToString() const;

  friend bool operator==(const Schema& a, const Schema& b) = default;

 private:
  explicit Schema(std::vector<Column> columns) : columns_(std::move(columns)) {}

  std::vector<Column> columns_;
};

using SchemaPtr = std::shared_ptr<const Schema>;

}  // namespace tioga2::db

#endif  // TIOGA2_DB_SCHEMA_H_
