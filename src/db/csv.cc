#include "db/csv.h"

#include <fstream>
#include <sstream>

#include "common/str_util.h"

namespace tioga2::db {

using types::DataType;
using types::Value;

namespace {

/// Splits one CSV line on commas, honoring double-quoted cells (which may
/// contain commas and escaped quotes).
Result<std::vector<std::string>> SplitCsvLine(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      cell += c;
      if (c == '\\' && i + 1 < line.size()) {
        cell += line[i + 1];
        ++i;
      } else if (c == '"') {
        in_quotes = false;
      }
    } else if (c == '"') {
      cell += c;
      in_quotes = true;
    } else if (c == ',') {
      cells.push_back(std::move(cell));
      cell.clear();
    } else {
      cell += c;
    }
  }
  if (in_quotes) return Status::ParseError("unterminated quote in CSV line: " + line);
  cells.push_back(std::move(cell));
  return cells;
}

}  // namespace

Result<std::string> RelationToCsv(const Relation& relation) {
  std::string out;
  const Schema& schema = *relation.schema();
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    if (schema.column(c).type == DataType::kDisplay) {
      return Status::InvalidArgument("display column '" + schema.column(c).name +
                                     "' cannot be serialized to CSV");
    }
    if (c > 0) out += ',';
    out += schema.column(c).name + ":" + types::DataTypeToString(schema.column(c).type);
  }
  out += '\n';
  for (size_t r = 0; r < relation.num_rows(); ++r) {
    for (size_t c = 0; c < schema.num_columns(); ++c) {
      if (c > 0) out += ',';
      out += relation.at(r, c).ToString();  // strings arrive quoted, which is CSV-safe here
    }
    out += '\n';
  }
  return out;
}

Result<RelationPtr> RelationFromCsv(const std::string& csv) {
  std::istringstream stream(csv);
  std::string line;
  if (!std::getline(stream, line)) return Status::ParseError("empty CSV input");

  TIOGA2_ASSIGN_OR_RETURN(std::vector<std::string> header_cells, SplitCsvLine(line));
  std::vector<Column> columns;
  for (const std::string& cell : header_cells) {
    std::vector<std::string> parts = StrSplit(cell, ':');
    if (parts.size() != 2) {
      return Status::ParseError("CSV header cell '" + cell + "' is not name:type");
    }
    DataType type;
    if (!types::DataTypeFromString(parts[1], &type)) {
      return Status::ParseError("unknown type '" + parts[1] + "' in CSV header");
    }
    columns.push_back(Column{parts[0], type});
  }
  TIOGA2_ASSIGN_OR_RETURN(Schema schema, Schema::Make(std::move(columns)));
  auto schema_ptr = std::make_shared<const Schema>(std::move(schema));
  RelationBuilder builder(schema_ptr);

  size_t line_number = 1;
  while (std::getline(stream, line)) {
    ++line_number;
    if (line.empty()) continue;
    TIOGA2_ASSIGN_OR_RETURN(std::vector<std::string> cells, SplitCsvLine(line));
    if (cells.size() != schema_ptr->num_columns()) {
      return Status::ParseError("CSV line " + std::to_string(line_number) + " has " +
                                std::to_string(cells.size()) + " cells, want " +
                                std::to_string(schema_ptr->num_columns()));
    }
    Tuple row;
    row.reserve(cells.size());
    for (size_t c = 0; c < cells.size(); ++c) {
      if (StripWhitespace(cells[c]) == "null") {
        row.push_back(Value::Null());
        continue;
      }
      TIOGA2_ASSIGN_OR_RETURN(Value v, Value::Parse(schema_ptr->column(c).type, cells[c]));
      row.push_back(std::move(v));
    }
    TIOGA2_RETURN_IF_ERROR(builder.AddRow(std::move(row)));
  }
  return builder.Build();
}

Status WriteCsvFile(const Relation& relation, const std::string& path) {
  TIOGA2_ASSIGN_OR_RETURN(std::string csv, RelationToCsv(relation));
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open '" + path + "' for writing");
  out << csv;
  if (!out.good()) return Status::IOError("write to '" + path + "' failed");
  return Status::OK();
}

Result<RelationPtr> ReadCsvFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open '" + path + "' for reading");
  std::stringstream buffer;
  buffer << in.rdbuf();
  return RelationFromCsv(buffer.str());
}

}  // namespace tioga2::db
