#ifndef TIOGA2_DATAFLOW_SHARED_MEMO_CACHE_H_
#define TIOGA2_DATAFLOW_SHARED_MEMO_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>

#include "dataflow/memo_cache.h"

namespace tioga2::dataflow {

/// A cross-evaluator memo tier keyed by stamp alone — the "M viewers of one
/// dashboard cost ~1× the evaluation work" cache of the paper's multi-user
/// picture (§7). Where a MemoCache holds at most one entry per *box id* of
/// one program, this tier holds entries for whole *subcomputations*: two
/// sessions whose programs contain the same box subgraph over the same
/// catalog state compute the same stamp (stamps hash box type, parameters,
/// catalog salt, and input stamps — never box ids, see dataflow/stamp.h), so
/// the second session finds the first session's result here and skips the
/// entire subtree evaluation.
///
/// Safety rests on the stamp contract: a stamp is a pure function of the
/// program + catalog state, and box firing is a deterministic function of the
/// stamped inputs, independent of execution policy. Two evaluators producing
/// the same stamp therefore produce byte-identical outputs, which makes
/// handing one's entry to the other invisible to every downstream consumer —
/// stamps, fingerprints, and rendered pixels are unchanged (asserted by
/// runtime_determinism_test and session_server_test).
///
/// Eviction: the cache is bounded to `capacity` entries with LRU replacement.
/// Entries whose stamps have gone stale (a table-version bump changes every
/// downstream stamp) are never looked up again and simply age out of the LRU
/// tail; there is no explicit invalidation, because a stale stamp can never
/// be recomputed by a correct evaluator. Lookup chain position: engines
/// consult their per-session MemoCache first (id-keyed, cheapest), then this
/// tier, then fire; fired entries are published to both.
///
/// Thread-safe; entries are immutable and shared by pointer, so a reader
/// holding an entry is never invalidated by concurrent inserts or evictions.
class SharedMemoCache {
 public:
  /// Counter snapshot (also surfaced through runtime::Metrics JSON).
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t inserts = 0;
    uint64_t evictions = 0;
    size_t entries = 0;
  };

  explicit SharedMemoCache(size_t capacity = 4096);
  SharedMemoCache(const SharedMemoCache&) = delete;
  SharedMemoCache& operator=(const SharedMemoCache&) = delete;

  /// The entry published under `stamp`, or null. A hit refreshes the entry's
  /// LRU position.
  MemoCache::EntryPtr Lookup(uint64_t stamp);

  /// Publishes `entry` under its own stamp. If the stamp is already present
  /// the existing entry is kept (both are byte-identical by the stamp
  /// contract) and refreshed; otherwise the entry is inserted, evicting the
  /// least recently used entry when the cache is at capacity.
  void Insert(const MemoCache::EntryPtr& entry);

  Stats stats() const;
  size_t size() const;
  size_t capacity() const { return capacity_; }
  void Clear();

 private:
  struct Slot {
    uint64_t stamp = 0;
    MemoCache::EntryPtr entry;
  };

  mutable std::mutex mu_;
  const size_t capacity_;
  std::list<Slot> lru_;  // front = most recently used
  std::unordered_map<uint64_t, std::list<Slot>::iterator> index_;
  Stats stats_;
};

}  // namespace tioga2::dataflow

#endif  // TIOGA2_DATAFLOW_SHARED_MEMO_CACHE_H_
