#ifndef TIOGA2_DATAFLOW_SHARED_MEMO_CACHE_H_
#define TIOGA2_DATAFLOW_SHARED_MEMO_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <vector>

#include "common/reclaim.h"
#include "dataflow/memo_cache.h"

namespace tioga2::dataflow {

/// A cross-evaluator memo tier keyed by stamp alone — the "M viewers of one
/// dashboard cost ~1× the evaluation work" cache of the paper's multi-user
/// picture (§7). Where a MemoCache holds at most one entry per *box id* of
/// one program, this tier holds entries for whole *subcomputations*: two
/// sessions whose programs contain the same box subgraph over the same
/// catalog state compute the same stamp (stamps hash box type, parameters,
/// catalog salt, and input stamps — never box ids, see dataflow/stamp.h), so
/// the second session finds the first session's result here and skips the
/// entire subtree evaluation.
///
/// Safety rests on the stamp contract: a stamp is a pure function of the
/// program + catalog state, and box firing is a deterministic function of the
/// stamped inputs, independent of execution policy. Two evaluators producing
/// the same stamp therefore produce byte-identical outputs, which makes
/// handing one's entry to the other invisible to every downstream consumer —
/// stamps, fingerprints, and rendered pixels are unchanged (asserted by
/// runtime_determinism_test and session_server_test).
///
/// Concurrency (DESIGN.md §13): Lookup is LOCK-FREE. Readers pin the
/// reclamation domain, load the current open-addressed stamp→node table
/// (published with release/acquire ordering), linear-probe it, and copy the
/// hit's EntryPtr while still pinned. Writers (Insert, Clear) serialize on
/// mu_; they install nodes into empty cells, replace evicted cells with a
/// tombstone sentinel that preserves concurrent probe chains, and rebuild the
/// table — retiring the old one through the domain — once tombstones
/// accumulate. Evicted nodes are likewise retired, never deleted inline, so a
/// reader mid-probe can never touch freed memory. Without a domain wired
/// (set_reclamation_domain never called) retired structures are parked until
/// destruction — safe, just unbounded for long-lived cache-less use, which
/// only tests exercise.
///
/// Eviction: the cache is bounded to `capacity` entries with second-chance
/// (clock) replacement — the lock-free hit path cannot splice an LRU list, so
/// hits set a `referenced` bit instead, and the evicting writer walks the LRU
/// tail, moving referenced nodes to the front and evicting the first
/// unreferenced one. Entries whose stamps have gone stale (a table-version
/// bump changes every downstream stamp) are never looked up again and simply
/// age out; there is no explicit invalidation, because a stale stamp can
/// never be recomputed by a correct evaluator. Lookup chain position: engines
/// consult their per-session MemoCache first (id-keyed, cheapest), then this
/// tier, then fire; fired entries are published to both.
class SharedMemoCache {
 public:
  /// Counter snapshot (also surfaced through runtime::Metrics JSON).
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t inserts = 0;
    uint64_t evictions = 0;
    size_t entries = 0;
  };

  explicit SharedMemoCache(size_t capacity = 4096,
                           common::ReclamationDomain* domain = nullptr);
  ~SharedMemoCache();
  SharedMemoCache(const SharedMemoCache&) = delete;
  SharedMemoCache& operator=(const SharedMemoCache&) = delete;

  /// Wires the reclamation domain lock-free readers pin. Must be called
  /// before the first concurrent Lookup; the domain must outlive the cache.
  void set_reclamation_domain(common::ReclamationDomain* domain) {
    domain_ = domain;
  }

  /// The entry published under `stamp`, or null. Lock-free: pins the domain,
  /// probes the current table, and marks the hit referenced (second-chance
  /// bit) instead of touching the LRU list.
  MemoCache::EntryPtr Lookup(uint64_t stamp);

  /// Publishes `entry` under its own stamp. If the stamp is already present
  /// the existing entry is kept (both are byte-identical by the stamp
  /// contract) and refreshed; otherwise the entry is inserted, evicting a
  /// second-chance victim when the cache is at capacity.
  void Insert(const MemoCache::EntryPtr& entry);

  Stats stats() const;
  size_t size() const;
  size_t capacity() const { return capacity_; }
  void Clear();

 private:
  /// One published stamp→entry binding. Immutable after installation except
  /// for the second-chance bit; unlinked nodes are retired, not deleted.
  struct Node {
    uint64_t stamp = 0;
    MemoCache::EntryPtr entry;
    std::atomic<bool> referenced{false};
    std::list<Node*>::iterator lru_it;  // writer-side only, guarded by mu_
  };

  /// Open-addressed power-of-two table of atomic node pointers. Cells only
  /// transition empty→node and node→tombstone within one table generation,
  /// so a concurrent reader's probe chain is never broken; tombstones are
  /// compacted away by publishing a rebuilt table.
  struct Table {
    explicit Table(size_t size_pow2)
        : mask(size_pow2 - 1),
          cells(new std::atomic<Node*>[size_pow2]) {
      for (size_t i = 0; i < size_pow2; ++i)
        cells[i].store(nullptr, std::memory_order_relaxed);
    }
    size_t size() const { return mask + 1; }
    const size_t mask;
    std::unique_ptr<std::atomic<Node*>[]> cells;
  };

  static size_t ProbeStart(uint64_t stamp, size_t mask);
  /// The tombstone sentinel: a distinguished address, never dereferenced.
  static Node* Tombstone();

  /// Hands an unlinked object to the domain, or parks it until destruction.
  void RetireNode(Node* node);
  void RetireTable(Table* table);
  /// Rebuilds (same size — capacity bounds live nodes) when live+tombstones
  /// pass 7/8 of the table, publishing the new table and retiring the old.
  /// Caller holds mu_.
  void MaybeRebuildLocked();
  void InstallLocked(Table* table, Node* node);

  common::ReclamationDomain* domain_;
  const size_t capacity_;

  std::atomic<Table*> table_;  // published release, loaded acquire

  mutable std::mutex mu_;   // writers: Insert / Clear / rebuild / LRU list
  std::list<Node*> lru_;    // front = most recently inserted/second-chanced
  size_t tombstones_ = 0;   // dead cells in the current table generation
  std::vector<std::function<void()>> deferred_;  // no-domain fallback

  // Reader-updated counters are atomic; inserts/evictions are writer-side.
  mutable std::atomic<uint64_t> hits_{0};
  mutable std::atomic<uint64_t> misses_{0};
  uint64_t inserts_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace tioga2::dataflow

#endif  // TIOGA2_DATAFLOW_SHARED_MEMO_CACHE_H_
