#include "dataflow/graph.h"

#include <algorithm>
#include <set>

#include "dataflow/t_box.h"

namespace tioga2::dataflow {

Graph Graph::Clone() const {
  Graph copy;
  for (const std::string& id : insertion_order_) {
    copy.boxes_[id] = boxes_.at(id)->Clone();
    copy.insertion_order_.push_back(id);
  }
  copy.edges_ = edges_;
  copy.positions_ = positions_;
  copy.next_id_ = next_id_;
  return copy;
}

Status Graph::SetBoxPosition(const std::string& id, double x, double y) {
  if (!HasBox(id)) return Status::NotFound("no box with id '" + id + "'");
  positions_[id] = {x, y};
  return Status::OK();
}

std::optional<std::pair<double, double>> Graph::BoxPosition(
    const std::string& id) const {
  auto it = positions_.find(id);
  if (it == positions_.end()) return std::nullopt;
  return it->second;
}

Result<std::string> Graph::AddBox(BoxPtr box, const std::string& id) {
  if (box == nullptr) return Status::InvalidArgument("box must be non-null");
  std::string box_id = id;
  if (box_id.empty()) {
    do {
      box_id = "b" + std::to_string(next_id_++);
    } while (boxes_.count(box_id) > 0);
  } else if (boxes_.count(box_id) > 0) {
    return Status::AlreadyExists("box id '" + box_id + "' already in use");
  }
  boxes_[box_id] = std::move(box);
  insertion_order_.push_back(box_id);
  return box_id;
}

Result<const Box*> Graph::GetBox(const std::string& id) const {
  auto it = boxes_.find(id);
  if (it == boxes_.end()) return Status::NotFound("no box with id '" + id + "'");
  return static_cast<const Box*>(it->second.get());
}

bool Graph::HasBox(const std::string& id) const { return boxes_.count(id) > 0; }

std::vector<std::string> Graph::BoxIds() const { return insertion_order_; }

Status Graph::CheckPortsExist(const std::string& box, size_t port, bool output,
                              PortType* type_out) const {
  TIOGA2_ASSIGN_OR_RETURN(const Box* b, GetBox(box));
  std::vector<PortType> ports = output ? b->OutputTypes() : b->InputTypes();
  if (port >= ports.size()) {
    return Status::OutOfRange("box '" + box + "' (" + b->type_name() + ") has no " +
                              (output ? "output" : "input") + " port " +
                              std::to_string(port));
  }
  *type_out = ports[port];
  return Status::OK();
}

bool Graph::WouldCreateCycle(const std::string& from, const std::string& to) const {
  if (from == to) return true;
  // DFS from `to` along existing edges; a path back to `from` means a cycle.
  std::set<std::string> visited;
  std::vector<std::string> stack = {to};
  while (!stack.empty()) {
    std::string current = stack.back();
    stack.pop_back();
    if (current == from) return true;
    if (!visited.insert(current).second) continue;
    for (const Edge& edge : edges_) {
      if (edge.from_box == current) stack.push_back(edge.to_box);
    }
  }
  return false;
}

Status Graph::Connect(const std::string& from, size_t from_port, const std::string& to,
                      size_t to_port) {
  PortType from_type = PortType::Relation();
  PortType to_type = PortType::Relation();
  TIOGA2_RETURN_IF_ERROR(CheckPortsExist(from, from_port, /*output=*/true, &from_type));
  TIOGA2_RETURN_IF_ERROR(CheckPortsExist(to, to_port, /*output=*/false, &to_type));
  if (!PortType::Connectable(from_type, to_type)) {
    return Status::TypeError("cannot connect " + from + ":" + std::to_string(from_port) +
                             " (" + from_type.ToString() + ") to " + to + ":" +
                             std::to_string(to_port) + " (" + to_type.ToString() + ")");
  }
  if (IncomingEdge(to, to_port).has_value()) {
    return Status::FailedPrecondition("input " + to + ":" + std::to_string(to_port) +
                                      " is already connected");
  }
  if (WouldCreateCycle(from, to)) {
    return Status::FailedPrecondition("connecting " + from + " to " + to +
                                      " would create a cycle");
  }
  edges_.push_back(Edge{from, from_port, to, to_port});
  return Status::OK();
}

Status Graph::Disconnect(const std::string& to, size_t to_port) {
  for (size_t i = 0; i < edges_.size(); ++i) {
    if (edges_[i].to_box == to && edges_[i].to_port == to_port) {
      edges_.erase(edges_.begin() + static_cast<ptrdiff_t>(i));
      return Status::OK();
    }
  }
  return Status::NotFound("no edge into " + to + ":" + std::to_string(to_port));
}

std::optional<Edge> Graph::IncomingEdge(const std::string& to, size_t to_port) const {
  for (const Edge& edge : edges_) {
    if (edge.to_box == to && edge.to_port == to_port) return edge;
  }
  return std::nullopt;
}

std::vector<Edge> Graph::OutgoingEdges(const std::string& from) const {
  std::vector<Edge> out;
  for (const Edge& edge : edges_) {
    if (edge.from_box == from) out.push_back(edge);
  }
  return out;
}

Status Graph::DeleteBox(const std::string& id) {
  TIOGA2_ASSIGN_OR_RETURN(const Box* box, GetBox(id));
  std::vector<Edge> outgoing = OutgoingEdges(id);

  auto erase_box = [this, &id] {
    boxes_.erase(id);
    positions_.erase(id);
    insertion_order_.erase(
        std::remove(insertion_order_.begin(), insertion_order_.end(), id),
        insertion_order_.end());
    edges_.erase(std::remove_if(edges_.begin(), edges_.end(),
                                [&id](const Edge& e) {
                                  return e.from_box == id || e.to_box == id;
                                }),
                 edges_.end());
  };

  // Rule (1): no outputs connected to other boxes.
  if (outgoing.empty()) {
    erase_box();
    return Status::OK();
  }

  // Rule (2): single input and single output of the same type — splice the
  // predecessor to the successors.
  std::vector<PortType> inputs = box->InputTypes();
  std::vector<PortType> outputs = box->OutputTypes();
  if (inputs.size() == 1 && outputs.size() == 1 && inputs[0] == outputs[0]) {
    std::optional<Edge> incoming = IncomingEdge(id, 0);
    if (!incoming.has_value()) {
      return Status::FailedPrecondition(
          "cannot delete box '" + id +
          "': successors would be left dangling (its input is unconnected)");
    }
    std::vector<Edge> spliced;
    for (const Edge& edge : outgoing) {
      spliced.push_back(
          Edge{incoming->from_box, incoming->from_port, edge.to_box, edge.to_port});
    }
    erase_box();
    edges_.insert(edges_.end(), spliced.begin(), spliced.end());
    return Status::OK();
  }

  return Status::FailedPrecondition(
      "cannot delete box '" + id + "' (" + box->type_name() +
      "): it feeds other boxes and is not a single-input single-output box of "
      "matching type (§4.1 deletion rules)");
}

Status Graph::ReplaceBox(const std::string& id, BoxPtr replacement) {
  if (replacement == nullptr) return Status::InvalidArgument("replacement is null");
  TIOGA2_ASSIGN_OR_RETURN(const Box* original, GetBox(id));
  std::vector<PortType> old_in = original->InputTypes();
  std::vector<PortType> old_out = original->OutputTypes();
  std::vector<PortType> new_in = replacement->InputTypes();
  std::vector<PortType> new_out = replacement->OutputTypes();
  if (old_in.size() != new_in.size() || old_out.size() != new_out.size()) {
    return Status::TypeError("Replace Box: port arity differs");
  }
  for (size_t i = 0; i < old_in.size(); ++i) {
    if (!(old_in[i] == new_in[i])) {
      return Status::TypeError("Replace Box: input port " + std::to_string(i) +
                               " type differs (" + old_in[i].ToString() + " vs " +
                               new_in[i].ToString() + ")");
    }
  }
  for (size_t i = 0; i < old_out.size(); ++i) {
    if (!(old_out[i] == new_out[i])) {
      return Status::TypeError("Replace Box: output port " + std::to_string(i) +
                               " type differs (" + old_out[i].ToString() + " vs " +
                               new_out[i].ToString() + ")");
    }
  }
  boxes_[id] = std::move(replacement);
  return Status::OK();
}

Result<std::string> Graph::InsertT(const std::string& to, size_t to_port) {
  std::optional<Edge> edge = IncomingEdge(to, to_port);
  if (!edge.has_value()) {
    return Status::NotFound("no edge into " + to + ":" + std::to_string(to_port) +
                            " to insert a T on");
  }
  PortType edge_type = PortType::Relation();
  TIOGA2_RETURN_IF_ERROR(
      CheckPortsExist(edge->from_box, edge->from_port, /*output=*/true, &edge_type));
  TIOGA2_ASSIGN_OR_RETURN(std::string t_id, AddBox(std::make_unique<TBox>(edge_type)));
  TIOGA2_RETURN_IF_ERROR(Disconnect(to, to_port));
  TIOGA2_RETURN_IF_ERROR(Connect(edge->from_box, edge->from_port, t_id, 0));
  TIOGA2_RETURN_IF_ERROR(Connect(t_id, 0, to, to_port));
  return t_id;
}

Result<std::vector<std::string>> Graph::TopologicalOrder() const {
  std::map<std::string, size_t> in_degree;
  for (const std::string& id : insertion_order_) in_degree[id] = 0;
  for (const Edge& edge : edges_) ++in_degree[edge.to_box];
  std::vector<std::string> ready;
  for (const std::string& id : insertion_order_) {
    if (in_degree[id] == 0) ready.push_back(id);
  }
  std::vector<std::string> order;
  while (!ready.empty()) {
    std::string id = ready.front();
    ready.erase(ready.begin());
    order.push_back(id);
    for (const Edge& edge : edges_) {
      if (edge.from_box != id) continue;
      if (--in_degree[edge.to_box] == 0) ready.push_back(edge.to_box);
    }
  }
  if (order.size() != insertion_order_.size()) {
    return Status::Internal("graph contains a cycle");
  }
  return order;
}

std::vector<std::string> Graph::BoxesWithDanglingInputs() const {
  std::vector<std::string> dangling;
  for (const std::string& id : insertion_order_) {
    const Box& box = *boxes_.at(id);
    size_t inputs = box.InputTypes().size();
    for (size_t port = 0; port < inputs; ++port) {
      if (!IncomingEdge(id, port).has_value()) {
        dangling.push_back(id);
        break;
      }
    }
  }
  return dangling;
}

std::string Graph::ToString() const {
  std::string out;
  for (const std::string& id : insertion_order_) {
    out += id + ": " + boxes_.at(id)->ToString() + "\n";
  }
  for (const Edge& edge : edges_) {
    out += "  " + edge.from_box + ":" + std::to_string(edge.from_port) + " -> " +
           edge.to_box + ":" + std::to_string(edge.to_port) + "\n";
  }
  return out;
}

}  // namespace tioga2::dataflow
