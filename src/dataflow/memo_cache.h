#ifndef TIOGA2_DATAFLOW_MEMO_CACHE_H_
#define TIOGA2_DATAFLOW_MEMO_CACHE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "dataflow/port_type.h"

namespace tioga2::dataflow {

/// Thread-safe memo store for box outputs, keyed by box id and guarded by a
/// stamp (see dataflow/stamp.h). Extracted from Engine so that one cache can
/// be shared between a serial Engine, a runtime::ParallelEngine, and any
/// number of worker threads: entries are immutable and handed out as
/// shared_ptr, so a reader holding an entry is never invalidated by a
/// concurrent insert or eviction.
///
/// The cache holds at most one entry per box id — a re-fire after an edit or
/// a table-version bump overwrites the stale entry — so its footprint is
/// bounded by the program size, not the evaluation history.
///
/// Contract with dataflow/stamp.h: an entry is valid iff its stamp equals
/// the stamp recomputed from the current program, so correctness rests on
/// two properties. (a) Stamps cover every input a box firing reads —
/// catalog state goes through Box::CacheSalt. (b) Box firing is a pure,
/// deterministic function of the stamped inputs: two evaluators producing
/// the same stamp may trade entries, and Insert can keep the first of two
/// concurrently computed entries precisely because both are guaranteed
/// byte-identical. Evaluation strategy (scalar or vectorized, row or
/// columnar, serial or parallel) is invisible to this cache; nothing about
/// a Relation's lazily materialized columnar() view participates in
/// stamping or equality.
class MemoCache {
 public:
  struct Entry {
    uint64_t stamp = 0;
    std::vector<BoxValue> outputs;
  };
  using EntryPtr = std::shared_ptr<const Entry>;

  MemoCache() = default;
  MemoCache(const MemoCache&) = delete;
  MemoCache& operator=(const MemoCache&) = delete;

  /// The entry for `box_id` iff it carries exactly `stamp`; null otherwise.
  EntryPtr Lookup(const std::string& box_id, uint64_t stamp) const;

  /// Installs outputs for `box_id` under `stamp` and returns the stored
  /// entry. If a concurrent evaluation already installed the same stamp the
  /// existing entry is kept and returned (box firing is deterministic, so
  /// both copies are identical).
  EntryPtr Insert(const std::string& box_id, uint64_t stamp,
                  std::vector<BoxValue> outputs);

  /// Adopts an already-built entry for `box_id` — the path by which a
  /// cross-session SharedMemoCache hit lands in a session's own cache
  /// without copying the outputs (the sessions then share one immutable
  /// Entry allocation). Same race rule as Insert: an existing entry with the
  /// same stamp wins.
  EntryPtr InsertEntry(const std::string& box_id, EntryPtr entry);

  /// The stamp cached for `box_id`, if any (regardless of validity).
  std::optional<uint64_t> StampOf(const std::string& box_id) const;

  /// The entry for `box_id` regardless of its stamp, or null. Used by the
  /// delta-propagation path, which validates the stamp itself against the
  /// *pre-update* program before trusting the outputs.
  EntryPtr Get(const std::string& box_id) const;

  /// Drops one box's entry. Idempotent.
  void Erase(const std::string& box_id);

  /// Drops everything.
  void Clear();

  size_t size() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, EntryPtr> entries_;
};

}  // namespace tioga2::dataflow

#endif  // TIOGA2_DATAFLOW_MEMO_CACHE_H_
