#ifndef TIOGA2_DATAFLOW_MEMO_CACHE_H_
#define TIOGA2_DATAFLOW_MEMO_CACHE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "dataflow/port_type.h"

namespace tioga2::dataflow {

/// Thread-safe memo store for box outputs, keyed by box id and guarded by a
/// stamp (see dataflow/stamp.h). Extracted from Engine so that one cache can
/// be shared between a serial Engine, a runtime::ParallelEngine, and any
/// number of worker threads: entries are immutable and handed out as
/// shared_ptr, so a reader holding an entry is never invalidated by a
/// concurrent insert or eviction.
///
/// The cache holds at most one entry per box id — a re-fire after an edit or
/// a table-version bump overwrites the stale entry — so its footprint is
/// bounded by the program size, not the evaluation history.
class MemoCache {
 public:
  struct Entry {
    uint64_t stamp = 0;
    std::vector<BoxValue> outputs;
  };
  using EntryPtr = std::shared_ptr<const Entry>;

  MemoCache() = default;
  MemoCache(const MemoCache&) = delete;
  MemoCache& operator=(const MemoCache&) = delete;

  /// The entry for `box_id` iff it carries exactly `stamp`; null otherwise.
  EntryPtr Lookup(const std::string& box_id, uint64_t stamp) const;

  /// Installs outputs for `box_id` under `stamp` and returns the stored
  /// entry. If a concurrent evaluation already installed the same stamp the
  /// existing entry is kept and returned (box firing is deterministic, so
  /// both copies are identical).
  EntryPtr Insert(const std::string& box_id, uint64_t stamp,
                  std::vector<BoxValue> outputs);

  /// The stamp cached for `box_id`, if any (regardless of validity).
  std::optional<uint64_t> StampOf(const std::string& box_id) const;

  /// Drops one box's entry. Idempotent.
  void Erase(const std::string& box_id);

  /// Drops everything.
  void Clear();

  size_t size() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, EntryPtr> entries_;
};

}  // namespace tioga2::dataflow

#endif  // TIOGA2_DATAFLOW_MEMO_CACHE_H_
