#ifndef TIOGA2_DATAFLOW_GRAPH_H_
#define TIOGA2_DATAFLOW_GRAPH_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "dataflow/box.h"

namespace tioga2::dataflow {

/// A directed edge connecting an output port to an input port.
struct Edge {
  std::string from_box;
  size_t from_port = 0;
  std::string to_box;
  size_t to_port = 0;

  friend bool operator==(const Edge& a, const Edge& b) = default;
};

/// A boxes-and-arrows program (§2): a DAG of typed boxes. The graph owns its
/// boxes; all edits are validated (type checking on Connect, the §4.1
/// deletion rules on DeleteBox) so that "every result of a user action has a
/// valid visual representation".
class Graph {
 public:
  Graph() = default;
  Graph(Graph&&) noexcept = default;
  Graph& operator=(Graph&&) noexcept = default;

  /// Deep copy (clones every box). Used by the undo stack.
  Graph Clone() const;

  // ---- Structure ----

  /// Adds a box, generating an id ("b1", "b2", ...) unless `id` is given.
  /// Returns the id.
  Result<std::string> AddBox(BoxPtr box, const std::string& id = "");

  /// Looks up a box.
  Result<const Box*> GetBox(const std::string& id) const;
  bool HasBox(const std::string& id) const;

  /// All box ids, in insertion order.
  std::vector<std::string> BoxIds() const;
  size_t num_boxes() const { return boxes_.size(); }

  const std::vector<Edge>& edges() const { return edges_; }

  /// Connects `from:from_port` to `to:to_port`. Fails on type mismatch
  /// (§2: "any attempt to connect an output to an input of incompatible
  /// type is a type error"), on an already-wired input, and on cycles.
  Status Connect(const std::string& from, size_t from_port, const std::string& to,
                 size_t to_port);

  /// Removes the edge feeding `to:to_port`.
  Status Disconnect(const std::string& to, size_t to_port);

  /// The edge feeding an input, if wired.
  std::optional<Edge> IncomingEdge(const std::string& to, size_t to_port) const;

  /// All edges leaving any output of `from`.
  std::vector<Edge> OutgoingEdges(const std::string& from) const;

  // ---- Program editing (Figure 2 semantics) ----

  /// Delete Box (§4.1): allowed iff (1) the box has no outputs connected to
  /// other boxes, or (2) it has a single input and single output of the same
  /// type, in which case its predecessor is spliced to its successors.
  Status DeleteBox(const std::string& id);

  /// Replace Box (§4.1): swaps in a box with compatible port types
  /// (identical arity; each port type equal).
  Status ReplaceBox(const std::string& id, BoxPtr replacement);

  /// Inserts a T box on the edge feeding `to:to_port` (§4.1): the edge is
  /// split, the T passes the value through, and the T's second output is
  /// left free for a viewer or another box. Returns the T's id.
  Result<std::string> InsertT(const std::string& to, size_t to_port);

  // ---- Queries ----

  /// Box ids in a topological order (sources first).
  Result<std::vector<std::string>> TopologicalOrder() const;

  /// True iff adding from→to would create a cycle.
  bool WouldCreateCycle(const std::string& from, const std::string& to) const;

  /// Ids of boxes with at least one unconnected input (not runnable).
  std::vector<std::string> BoxesWithDanglingInputs() const;

  /// One-line-per-box listing for debugging.
  std::string ToString() const;

  // ---- Program window layout (§3) ----
  // The boxes-and-arrows diagram is itself drawn in the program window;
  // positions are pure presentation metadata carried with the program.

  /// Records where box `id` sits on the program canvas.
  Status SetBoxPosition(const std::string& id, double x, double y);

  /// The recorded position, if one was set (drag-and-drop or load).
  std::optional<std::pair<double, double>> BoxPosition(const std::string& id) const;

 private:
  Status CheckPortsExist(const std::string& box, size_t port, bool output,
                         PortType* type_out) const;

  std::map<std::string, BoxPtr> boxes_;
  std::vector<std::string> insertion_order_;
  std::vector<Edge> edges_;
  std::map<std::string, std::pair<double, double>> positions_;
  uint64_t next_id_ = 1;
};

}  // namespace tioga2::dataflow

#endif  // TIOGA2_DATAFLOW_GRAPH_H_
