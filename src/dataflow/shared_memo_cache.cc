#include "dataflow/shared_memo_cache.h"

namespace tioga2::dataflow {

SharedMemoCache::SharedMemoCache(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

MemoCache::EntryPtr SharedMemoCache::Lookup(uint64_t stamp) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(stamp);
  if (it == index_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++stats_.hits;
  return it->second->entry;
}

void SharedMemoCache::Insert(const MemoCache::EntryPtr& entry) {
  if (entry == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(entry->stamp);
  if (it != index_.end()) {
    // Same stamp ⇒ byte-identical outputs: keep the first publication.
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Slot{entry->stamp, entry});
  index_[entry->stamp] = lru_.begin();
  ++stats_.inserts;
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().stamp);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

SharedMemoCache::Stats SharedMemoCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats stats = stats_;
  stats.entries = lru_.size();
  return stats;
}

size_t SharedMemoCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

void SharedMemoCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
}

}  // namespace tioga2::dataflow
