#include "dataflow/shared_memo_cache.h"

#include <algorithm>

namespace tioga2::dataflow {

namespace {

size_t NextPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

size_t SharedMemoCache::ProbeStart(uint64_t stamp, size_t mask) {
  // Fibonacci mix: stamps are already well-distributed hashes, but the low
  // bits of related subtrees can correlate; one multiply decorrelates them.
  stamp *= 0x9E3779B97F4A7C15ull;
  stamp ^= stamp >> 32;
  return static_cast<size_t>(stamp) & mask;
}

SharedMemoCache::Node* SharedMemoCache::Tombstone() {
  // A distinguished address readers skip; never dereferenced, never freed.
  static Node sentinel;
  return &sentinel;
}

SharedMemoCache::SharedMemoCache(size_t capacity,
                                 common::ReclamationDomain* domain)
    : domain_(domain), capacity_(capacity == 0 ? 1 : capacity) {
  // Live nodes are bounded by capacity_, so a table of 2*capacity keeps the
  // live load factor at <= 1/2; tombstones push it toward the 7/8 rebuild
  // threshold between compactions.
  table_.store(new Table(NextPow2(std::max<size_t>(16, capacity_ * 2))),
               std::memory_order_release);
}

SharedMemoCache::~SharedMemoCache() {
  // Destruction implies quiescence: no reader is pinned inside this cache.
  for (auto& run : deferred_) run();
  for (Node* node : lru_) delete node;
  delete table_.load(std::memory_order_acquire);
}

MemoCache::EntryPtr SharedMemoCache::Lookup(uint64_t stamp) {
  // The pin makes every pointer loaded below safe to dereference until the
  // guard drops, even if a writer concurrently evicts the node or replaces
  // the whole table — both are retired through the domain, not deleted.
  common::ReclamationDomain::Guard guard(domain_);
  Table* table = table_.load(std::memory_order_acquire);
  size_t index = ProbeStart(stamp, table->mask);
  for (size_t n = 0; n <= table->mask; ++n) {
    Node* node = table->cells[(index + n) & table->mask].load(
        std::memory_order_acquire);
    if (node == nullptr) break;  // end of probe chain
    if (node == Tombstone() || node->stamp != stamp) continue;
    // Second-chance bit instead of an LRU splice: the hit path owns no lock.
    node->referenced.store(true, std::memory_order_relaxed);
    hits_.fetch_add(1, std::memory_order_relaxed);
    return node->entry;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return nullptr;
}

void SharedMemoCache::Insert(const MemoCache::EntryPtr& entry) {
  if (entry == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  Table* table = table_.load(std::memory_order_relaxed);  // mu_ serializes writers
  size_t index = ProbeStart(entry->stamp, table->mask);
  size_t cell = table->size();  // first empty cell, found during the scan
  for (size_t n = 0; n <= table->mask; ++n) {
    size_t i = (index + n) & table->mask;
    Node* node = table->cells[i].load(std::memory_order_relaxed);
    if (node == nullptr) {
      cell = i;
      break;
    }
    if (node == Tombstone()) continue;  // not reusable: keeps reader chains intact
    if (node->stamp == entry->stamp) {
      // Same stamp ⇒ byte-identical outputs: keep the first publication.
      node->referenced.store(true, std::memory_order_relaxed);
      lru_.splice(lru_.begin(), lru_, node->lru_it);
      return;
    }
  }
  Node* node = new Node;
  node->stamp = entry->stamp;
  node->entry = entry;
  lru_.push_front(node);
  node->lru_it = lru_.begin();
  // The release store publishes the fully-built node to lock-free probes.
  table->cells[cell].store(node, std::memory_order_release);
  ++inserts_;

  // Second-chance eviction: referenced tail nodes get moved to the front
  // with the bit cleared; the first unreferenced tail node is the victim.
  while (lru_.size() > capacity_) {
    Node* victim = lru_.back();
    if (victim->referenced.exchange(false, std::memory_order_relaxed)) {
      lru_.splice(lru_.begin(), lru_, victim->lru_it);
      continue;
    }
    size_t vindex = ProbeStart(victim->stamp, table->mask);
    for (size_t n = 0; n <= table->mask; ++n) {
      size_t i = (vindex + n) & table->mask;
      if (table->cells[i].load(std::memory_order_relaxed) == victim) {
        table->cells[i].store(Tombstone(), std::memory_order_release);
        ++tombstones_;
        break;
      }
    }
    lru_.pop_back();
    RetireNode(victim);
    ++evictions_;
  }
  MaybeRebuildLocked();
}

void SharedMemoCache::MaybeRebuildLocked() {
  Table* table = table_.load(std::memory_order_relaxed);
  if ((lru_.size() + tombstones_) * 8 < table->size() * 7) return;
  // Same size suffices: capacity_ bounds live nodes at half the table, so a
  // rebuild exists purely to compact tombstones out of the probe chains.
  Table* fresh = new Table(table->size());
  for (Node* node : lru_) InstallLocked(fresh, node);
  tombstones_ = 0;
  table_.store(fresh, std::memory_order_release);
  RetireTable(table);
}

void SharedMemoCache::InstallLocked(Table* table, Node* node) {
  size_t index = ProbeStart(node->stamp, table->mask);
  for (size_t n = 0; n <= table->mask; ++n) {
    size_t i = (index + n) & table->mask;
    if (table->cells[i].load(std::memory_order_relaxed) == nullptr) {
      // Relaxed is enough pre-publication: the release store of table_
      // itself orders every cell before any reader's acquire load.
      table->cells[i].store(node, std::memory_order_relaxed);
      return;
    }
  }
}

void SharedMemoCache::RetireNode(Node* node) {
  if (domain_ != nullptr) {
    domain_->Retire([node] { delete node; });
  } else {
    deferred_.push_back([node] { delete node; });
  }
}

void SharedMemoCache::RetireTable(Table* table) {
  if (domain_ != nullptr) {
    domain_->Retire([table] { delete table; });
  } else {
    deferred_.push_back([table] { delete table; });
  }
}

void SharedMemoCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  Table* table = table_.load(std::memory_order_relaxed);
  Table* fresh = new Table(table->size());
  table_.store(fresh, std::memory_order_release);
  RetireTable(table);
  for (Node* node : lru_) RetireNode(node);
  lru_.clear();
  tombstones_ = 0;
}

SharedMemoCache::Stats SharedMemoCache::stats() const {
  Stats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  stats.inserts = inserts_;
  stats.evictions = evictions_;
  stats.entries = lru_.size();
  return stats;
}

size_t SharedMemoCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

}  // namespace tioga2::dataflow
