#ifndef TIOGA2_DATAFLOW_STAMP_H_
#define TIOGA2_DATAFLOW_STAMP_H_

#include <cstdint>
#include <string>

#include "dataflow/box.h"

namespace tioga2::dataflow {

// The stamp algebra shared by the serial Engine and runtime::ParallelEngine.
// Both evaluators MUST key their memo-cache entries with the exact same
// stamps so that a cache populated by one is valid for the other, and so
// that serial and parallel evaluation are bit-identical (asserted by
// runtime_determinism_test).
//
// The stamp/memoization contract (see also DESIGN.md "The stamp contract"):
//
//   stamp(box) = HashCombine(BoxSignature(box, ctx),
//                            stamp(input_1), ..., stamp(input_n))
//   with inputs folded in port order by the engines.
//
// 1. A stamp is a pure function of the *program*: box type, parameters,
//    catalog state the box declares via CacheSalt (e.g. table versions),
//    and the stamps of its inputs. It never inspects the produced values.
// 2. Consequently a stamp is independent of *how* a value was computed or
//    represented: scalar vs vectorized evaluation, row vs columnar access,
//    serial vs parallel scheduling must all yield byte-identical outputs
//    for the same stamp (enforced by determinism_test and
//    runtime_determinism_test over every figure program). An optimization
//    that changes output bytes is a correctness bug, not a new cache key.
// 3. Any new source of nondeterminism a box depends on (a table version, a
//    random seed, a file mtime) must be folded into CacheSalt — never read
//    out-of-band — or stale cache entries will be served after it changes.

/// 64-bit variant of boost::hash_combine.
inline uint64_t HashCombine(uint64_t seed, uint64_t value) {
  return seed ^ (value + 0x9E3779B97F4A7C15ULL + (seed << 12) + (seed >> 4));
}

/// FNV-1a.
inline uint64_t HashString(const std::string& text) {
  uint64_t hash = 1469598103934665603ULL;
  for (char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

/// BoxSignature with an explicitly supplied salt. The delta-propagation
/// path uses this to reconstruct what a Table box's signature *was* before
/// a version bump (substituting the pre-update version for the current
/// CacheSalt) so it can validate memoized entries against the pre-update
/// program.
inline uint64_t BoxSignatureWithSalt(const Box& box, const std::string& salt) {
  uint64_t hash = HashString(box.type_name());
  for (const auto& [key, value] : box.Params()) {
    hash = HashCombine(hash, HashString(key));
    hash = HashCombine(hash, HashString(value));
  }
  hash = HashCombine(hash, HashString(salt));
  return hash;
}

/// The box's own contribution to its stamp: type, parameters, and any
/// catalog state it reads (CacheSalt — e.g. the version of the table a
/// source box scans).
inline uint64_t BoxSignature(const Box& box, const ExecContext& ctx) {
  return BoxSignatureWithSalt(box, box.CacheSalt(ctx));
}

}  // namespace tioga2::dataflow

#endif  // TIOGA2_DATAFLOW_STAMP_H_
