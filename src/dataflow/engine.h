#ifndef TIOGA2_DATAFLOW_ENGINE_H_
#define TIOGA2_DATAFLOW_ENGINE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "dataflow/graph.h"

namespace tioga2::dataflow {

/// Counters for the lazy-vs-eager evaluation ablation and for asserting the
/// paper's incremental-feedback claim ("immediate feedback on the effect of
/// incremental program modifications").
struct EngineStats {
  uint64_t boxes_fired = 0;
  uint64_t cache_hits = 0;
  uint64_t evaluations = 0;  // Evaluate() calls
};

/// Demand-driven, memoizing evaluator for boxes-and-arrows programs.
///
/// "Execution is lazy, evaluating only what is required to produce the
/// demanded visualization" (§2): Evaluate(box, port) pulls exactly the
/// transitive inputs of `box`. Each box's outputs are cached under a stamp
/// that hashes the box's parameters, its inputs' stamps, and any catalog
/// state it reads (table versions); an edit to one box therefore re-fires
/// only the boxes downstream of the edit.
class Engine {
 public:
  /// `catalog` must outlive the engine; may be null for graphs without
  /// source boxes. `encap_inputs` binds InputStub boxes when evaluating the
  /// inner graph of an EncapsulatedBox.
  explicit Engine(const db::Catalog* catalog,
                  const std::vector<BoxValue>* encap_inputs = nullptr)
      : catalog_(catalog), encap_inputs_(encap_inputs) {}

  /// Evaluates one output port (lazy).
  Result<BoxValue> Evaluate(const Graph& graph, const std::string& box_id,
                            size_t output_port);

  /// Evaluates every output of every box in topological order (the eager
  /// baseline for the ablation benchmark). Boxes with dangling inputs are
  /// skipped (they cannot fire).
  Status EvaluateAll(const Graph& graph);

  /// Drops all cached outputs.
  void InvalidateAll() { cache_.clear(); }

  const EngineStats& stats() const { return stats_; }
  void ResetStats() { stats_ = EngineStats{}; }

  /// Warnings raised by boxes during the most recent evaluation (e.g. the
  /// Overlay dimension-mismatch warning of §6.1).
  const std::vector<std::string>& warnings() const { return warnings_; }

 private:
  struct CacheEntry {
    uint64_t stamp = 0;
    std::vector<BoxValue> outputs;
  };

  /// Evaluates all outputs of a box, via the cache. Returns the outputs and
  /// the box's stamp.
  Result<const CacheEntry*> EvaluateBox(const Graph& graph, const std::string& box_id,
                                        std::vector<std::string>* eval_stack);

  const db::Catalog* catalog_;
  const std::vector<BoxValue>* encap_inputs_ = nullptr;
  std::unordered_map<std::string, CacheEntry> cache_;
  EngineStats stats_;
  std::vector<std::string> warnings_;
};

}  // namespace tioga2::dataflow

#endif  // TIOGA2_DATAFLOW_ENGINE_H_
