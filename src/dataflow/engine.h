#ifndef TIOGA2_DATAFLOW_ENGINE_H_
#define TIOGA2_DATAFLOW_ENGINE_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "dataflow/delta.h"
#include "dataflow/graph.h"
#include "dataflow/memo_cache.h"
#include "dataflow/shared_memo_cache.h"
#include "db/exec_policy.h"

namespace tioga2::dataflow {

/// Counters for the lazy-vs-eager evaluation ablation and for asserting the
/// paper's incremental-feedback claim ("immediate feedback on the effect of
/// incremental program modifications").
struct EngineStats {
  uint64_t boxes_fired = 0;
  uint64_t cache_hits = 0;
  uint64_t shared_hits = 0;     // subset of cache_hits served by the shared tier
  uint64_t evaluations = 0;     // Evaluate() calls
  uint64_t boxes_skipped = 0;   // EvaluateAll: dangling-input boxes not fired
  uint64_t deltas_applied = 0;  // boxes maintained incrementally (kDelta)
  uint64_t delta_fallbacks = 0; // boxes that declined a delta and were evicted
};

/// A typed invalidation request — the one entry point for telling an engine
/// that base data changed. Callers no longer choose the eviction scope
/// themselves: they describe what happened (everything changed / one table
/// changed / one tuple of one table changed) and the engine picks the
/// cheapest sound strategy — full clear, downstream eviction, or
/// delta propagation with per-box fallback.
class Invalidation {
 public:
  enum class Scope { kAll, kDownstreamOf, kDelta };

  /// Everything may have changed: drop the whole memo cache.
  static Invalidation All() { return Invalidation(Scope::kAll); }

  /// The named table changed in an unspecified way: evict its downstream
  /// closure.
  static Invalidation DownstreamOf(std::string table) {
    Invalidation inv(Scope::kDownstreamOf);
    inv.table_ = std::move(table);
    return inv;
  }

  /// Exactly one tuple changed (a §8 update): propagate the delta through
  /// downstream boxes, falling back to eviction per box.
  static Invalidation Delta(db::TableDelta delta) {
    Invalidation inv(Scope::kDelta);
    inv.table_ = delta.table;
    inv.delta_ = std::move(delta);
    return inv;
  }

  Scope scope() const { return scope_; }
  /// kDownstreamOf / kDelta: the table concerned.
  const std::string& table() const { return table_; }
  /// kDelta only.
  const db::TableDelta& delta() const { return delta_; }

 private:
  explicit Invalidation(Scope scope) : scope_(scope) {}
  Scope scope_;
  std::string table_;
  db::TableDelta delta_;
};

/// What an Invalidate call did.
struct InvalidationResult {
  size_t entries_evicted = 0;
  size_t deltas_applied = 0;   // kDelta: boxes maintained incrementally
  size_t delta_fallbacks = 0;  // kDelta: boxes that declined and were evicted
  /// kDelta: per maintained box, the output edit scripts (one ValueDelta per
  /// output port). Consumers (e.g. the delta renderer) look up the box
  /// feeding their canvas here.
  std::map<std::string, std::vector<ValueDelta>> box_deltas;
  /// Warnings raised by boxes re-fired during delta maintenance.
  std::vector<std::string> warnings;
};

/// Demand-driven, memoizing evaluator for boxes-and-arrows programs.
///
/// "Execution is lazy, evaluating only what is required to produce the
/// demanded visualization" (§2): Evaluate(box, port) pulls exactly the
/// transitive inputs of `box`. Each box's outputs are cached under a stamp
/// that hashes the box's parameters, its inputs' stamps, and any catalog
/// state it reads (table versions); an edit to one box therefore re-fires
/// only the boxes downstream of the edit.
///
/// The memo cache lives in a MemoCache that may be shared with other
/// evaluators (notably runtime::ParallelEngine, which keys entries with the
/// same stamps — see dataflow/stamp.h). The Engine itself is not
/// thread-safe: one Engine serves one caller at a time, and concurrency is
/// layered on top by runtime::SessionServer.
class Engine {
 public:
  /// `catalog` must outlive the engine; may be null for graphs without
  /// source boxes. `encap_inputs` binds InputStub boxes when evaluating the
  /// inner graph of an EncapsulatedBox. When `shared_cache` is non-null the
  /// engine memoizes into it instead of a private cache (the pointee must
  /// outlive the engine).
  explicit Engine(const db::Catalog* catalog,
                  const std::vector<BoxValue>* encap_inputs = nullptr,
                  MemoCache* shared_cache = nullptr)
      : catalog_(catalog),
        encap_inputs_(encap_inputs),
        cache_(shared_cache != nullptr ? shared_cache : &owned_cache_) {}

  /// Evaluates one output port (lazy).
  Result<BoxValue> Evaluate(const Graph& graph, const std::string& box_id,
                            size_t output_port);

  /// Evaluates every output of every box in topological order (the eager
  /// baseline for the ablation benchmark). Boxes with dangling inputs (and
  /// boxes downstream of them) cannot fire; they are counted in
  /// stats().boxes_skipped and reported through warnings().
  Status EvaluateAll(const Graph& graph);

  /// The unified invalidation entry point: dispatches on the request's
  /// scope. kAll clears the cache; kDownstreamOf evicts the table's
  /// downstream closure; kDelta runs delta propagation (PropagateDelta),
  /// maintaining cached outputs box-by-box and evicting only the boxes that
  /// decline. Errors are reserved for malformed requests or corrupted
  /// state; a delta that merely cannot be applied degrades to eviction and
  /// still returns ok.
  Result<InvalidationResult> Invalidate(const Graph& graph,
                                        const Invalidation& inv);

  /// Drops all cached outputs. DEPRECATED: use
  /// Invalidate(graph, Invalidation::All()); kept for existing callers.
  void InvalidateAll() { cache_->Clear(); }

  /// Drops the cached outputs of every box downstream of a source box
  /// reading `table` (including the source itself) — the §8 update path:
  /// after a single-table edit only dependent entries need evicting, the
  /// rest of the memo cache stays warm. Returns the number of entries
  /// evicted. DEPRECATED: use Invalidate(graph,
  /// Invalidation::DownstreamOf(table)).
  size_t InvalidateDownstreamOf(const Graph& graph, const std::string& table);

  const EngineStats& stats() const { return stats_; }
  void ResetStats() { stats_ = EngineStats{}; }

  /// Per-engine execution policy. When unset the engine resolves
  /// db::DefaultExecPolicy() at each firing (db::SetDefaultExecPolicy is the
  /// process-wide default for callers that never opt in).
  void set_exec_policy(db::ExecPolicy policy) { policy_ = policy; }
  const std::optional<db::ExecPolicy>& exec_policy() const { return policy_; }

  /// Attaches a cross-session shared memo tier (may be null to detach). On a
  /// local-cache miss the engine consults it by stamp before firing, and
  /// publishes every fired entry into it; hits count in both
  /// stats().cache_hits and stats().shared_hits. The pointee must outlive
  /// the engine. See dataflow/shared_memo_cache.h for why trading entries
  /// across sessions is byte-identical by construction.
  void set_shared_cache(SharedMemoCache* shared) { shared_cache_ = shared; }
  SharedMemoCache* shared_cache() const { return shared_cache_; }

  /// The memo cache (shared or owned). Exposed so callers can share it with
  /// a runtime::ParallelEngine or inspect stamps.
  MemoCache& cache() { return *cache_; }
  const MemoCache& cache() const { return *cache_; }

  /// Warnings raised by boxes during the most recent evaluation (e.g. the
  /// Overlay dimension-mismatch warning of §6.1).
  const std::vector<std::string>& warnings() const { return warnings_; }

 private:
  /// Evaluates all outputs of a box, via the cache. Returns the immutable
  /// cache entry holding the outputs and the box's stamp.
  Result<MemoCache::EntryPtr> EvaluateBox(const Graph& graph,
                                          const std::string& box_id,
                                          std::vector<std::string>* eval_stack);

  const db::Catalog* catalog_;
  const std::vector<BoxValue>* encap_inputs_ = nullptr;
  MemoCache owned_cache_;
  MemoCache* cache_;  // owned_cache_ or an external shared cache
  SharedMemoCache* shared_cache_ = nullptr;  // optional cross-session tier
  EngineStats stats_;
  std::vector<std::string> warnings_;
  std::optional<db::ExecPolicy> policy_;
};

/// Ids of the source boxes reading `table` plus their transitive downstream
/// closure — the set of boxes whose cached outputs a single-table edit can
/// invalidate. Shared by Engine and runtime::ParallelEngine.
std::vector<std::string> BoxesDownstreamOfTable(const Graph& graph,
                                                const std::string& table);

/// Walks the boxes downstream of `delta.table` in topological order,
/// offering each a Box::ApplyDelta fast path against its memoized entry and
/// falling back to eviction for boxes that decline (or whose cached entry
/// does not match the pre-update program). Maintained entries are re-keyed
/// under their post-update stamps, so a subsequent Evaluate sees a warm
/// cache and serial/parallel byte-identity is preserved. Shared by
/// Engine::Invalidate and runtime::ParallelEngine::Invalidate. `catalog`
/// must already reflect the post-update state (delta.new_version installed).
Result<InvalidationResult> PropagateDelta(
    const Graph& graph, const db::Catalog* catalog, const db::TableDelta& delta,
    MemoCache& cache, const db::ExecPolicy& policy,
    const std::vector<BoxValue>* encap_inputs = nullptr);

}  // namespace tioga2::dataflow

#endif  // TIOGA2_DATAFLOW_ENGINE_H_
