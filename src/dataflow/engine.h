#ifndef TIOGA2_DATAFLOW_ENGINE_H_
#define TIOGA2_DATAFLOW_ENGINE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "dataflow/graph.h"
#include "dataflow/memo_cache.h"

namespace tioga2::dataflow {

/// Counters for the lazy-vs-eager evaluation ablation and for asserting the
/// paper's incremental-feedback claim ("immediate feedback on the effect of
/// incremental program modifications").
struct EngineStats {
  uint64_t boxes_fired = 0;
  uint64_t cache_hits = 0;
  uint64_t evaluations = 0;     // Evaluate() calls
  uint64_t boxes_skipped = 0;   // EvaluateAll: dangling-input boxes not fired
};

/// Demand-driven, memoizing evaluator for boxes-and-arrows programs.
///
/// "Execution is lazy, evaluating only what is required to produce the
/// demanded visualization" (§2): Evaluate(box, port) pulls exactly the
/// transitive inputs of `box`. Each box's outputs are cached under a stamp
/// that hashes the box's parameters, its inputs' stamps, and any catalog
/// state it reads (table versions); an edit to one box therefore re-fires
/// only the boxes downstream of the edit.
///
/// The memo cache lives in a MemoCache that may be shared with other
/// evaluators (notably runtime::ParallelEngine, which keys entries with the
/// same stamps — see dataflow/stamp.h). The Engine itself is not
/// thread-safe: one Engine serves one caller at a time, and concurrency is
/// layered on top by runtime::SessionServer.
class Engine {
 public:
  /// `catalog` must outlive the engine; may be null for graphs without
  /// source boxes. `encap_inputs` binds InputStub boxes when evaluating the
  /// inner graph of an EncapsulatedBox. When `shared_cache` is non-null the
  /// engine memoizes into it instead of a private cache (the pointee must
  /// outlive the engine).
  explicit Engine(const db::Catalog* catalog,
                  const std::vector<BoxValue>* encap_inputs = nullptr,
                  MemoCache* shared_cache = nullptr)
      : catalog_(catalog),
        encap_inputs_(encap_inputs),
        cache_(shared_cache != nullptr ? shared_cache : &owned_cache_) {}

  /// Evaluates one output port (lazy).
  Result<BoxValue> Evaluate(const Graph& graph, const std::string& box_id,
                            size_t output_port);

  /// Evaluates every output of every box in topological order (the eager
  /// baseline for the ablation benchmark). Boxes with dangling inputs (and
  /// boxes downstream of them) cannot fire; they are counted in
  /// stats().boxes_skipped and reported through warnings().
  Status EvaluateAll(const Graph& graph);

  /// Drops all cached outputs.
  void InvalidateAll() { cache_->Clear(); }

  /// Drops the cached outputs of every box downstream of a source box
  /// reading `table` (including the source itself) — the §8 update path:
  /// after a single-table edit only dependent entries need evicting, the
  /// rest of the memo cache stays warm. Returns the number of entries
  /// evicted.
  size_t InvalidateDownstreamOf(const Graph& graph, const std::string& table);

  const EngineStats& stats() const { return stats_; }
  void ResetStats() { stats_ = EngineStats{}; }

  /// The memo cache (shared or owned). Exposed so callers can share it with
  /// a runtime::ParallelEngine or inspect stamps.
  MemoCache& cache() { return *cache_; }
  const MemoCache& cache() const { return *cache_; }

  /// Warnings raised by boxes during the most recent evaluation (e.g. the
  /// Overlay dimension-mismatch warning of §6.1).
  const std::vector<std::string>& warnings() const { return warnings_; }

 private:
  /// Evaluates all outputs of a box, via the cache. Returns the immutable
  /// cache entry holding the outputs and the box's stamp.
  Result<MemoCache::EntryPtr> EvaluateBox(const Graph& graph,
                                          const std::string& box_id,
                                          std::vector<std::string>* eval_stack);

  const db::Catalog* catalog_;
  const std::vector<BoxValue>* encap_inputs_ = nullptr;
  MemoCache owned_cache_;
  MemoCache* cache_;  // owned_cache_ or an external shared cache
  EngineStats stats_;
  std::vector<std::string> warnings_;
};

/// Ids of the source boxes reading `table` plus their transitive downstream
/// closure — the set of boxes whose cached outputs a single-table edit can
/// invalidate. Shared by Engine and runtime::ParallelEngine.
std::vector<std::string> BoxesDownstreamOfTable(const Graph& graph,
                                                const std::string& table);

}  // namespace tioga2::dataflow

#endif  // TIOGA2_DATAFLOW_ENGINE_H_
