#ifndef TIOGA2_DATAFLOW_DELTA_H_
#define TIOGA2_DATAFLOW_DELTA_H_

#include <cstddef>
#include <vector>

#include "db/relation.h"

namespace tioga2::dataflow {

/// One single-row edit of a relation value, in terms of base tuples. Ops
/// form a sequential edit script: each op's `row` refers to the relation as
/// it stands when that op applies — for kUpdate and kDelete the position of
/// the old tuple, for kInsert the position the new tuple lands at.
///
/// Tuples are immutable and shared (db::TuplePtr): the WithRow* splice
/// helpers that ApplyDelta implementations use reference every unchanged
/// row of the old output rather than copying it, and splicing a *view*
/// relation (a Restrict/Join output under the vectorized policy) first
/// materializes its row store lazily — selection views share their parent's
/// tuples, so even that step copies pointers, not values.
struct RowOp {
  enum class Kind { kUpdate, kInsert, kDelete };
  Kind kind = Kind::kUpdate;
  size_t row = 0;
  db::Tuple old_tuple;  // kUpdate / kDelete
  db::Tuple new_tuple;  // kUpdate / kInsert
};

/// The edit script for one relation inside a displayable value:
/// `group_member` indexes the composite within a group (0 for R/C values),
/// `member` the entry within that composite (0 for R values). These indices
/// line up with the R ≤ C ≤ G coercions of port_type.h, so a delta computed
/// on an R output stays valid after the value is coerced to C or G.
struct MemberDelta {
  size_t group_member = 0;
  size_t member = 0;
  std::vector<RowOp> ops;
};

/// How a box output changed between two firings under a single-tuple §8
/// update. An empty `members` list means the new value is byte-identical to
/// the old one — the engine then reuses the old outputs verbatim under the
/// new stamp, which is valid for every box (including joins and aggregates)
/// because firing is a pure function of the inputs.
///
/// Deltas never describe metadata changes: attribute tables, designations,
/// offsets, and layouts are functions of the *program*, which a §8 update
/// does not touch. Only base rows move.
struct ValueDelta {
  std::vector<MemberDelta> members;
  bool unchanged() const { return members.empty(); }
};

/// The ops of a delta that touches only the primary member ({0, 0} — the
/// single relation of an R-typed value), or null if the delta is empty or
/// spans other members. Relation-input boxes use this to recognize the
/// edits they know how to maintain.
inline const std::vector<RowOp>* PrimaryMemberOps(const ValueDelta& delta) {
  if (delta.members.size() != 1) return nullptr;
  const MemberDelta& m = delta.members[0];
  if (m.group_member != 0 || m.member != 0 || m.ops.empty()) return nullptr;
  return &m.ops;
}

/// Like PrimaryMemberOps but further requires exactly one op.
inline const RowOp* SinglePrimaryOp(const ValueDelta& delta) {
  const std::vector<RowOp>* ops = PrimaryMemberOps(delta);
  return (ops != nullptr && ops->size() == 1) ? &(*ops)[0] : nullptr;
}

}  // namespace tioga2::dataflow

#endif  // TIOGA2_DATAFLOW_DELTA_H_
