#ifndef TIOGA2_DATAFLOW_PORT_TYPE_H_
#define TIOGA2_DATAFLOW_PORT_TYPE_H_

#include <string>
#include <variant>

#include "display/displayable.h"
#include "types/value.h"

namespace tioga2::dataflow {

/// The type of a box input or output (§2: "box inputs and outputs are typed
/// and edges connect outputs to inputs of compatible types"). A port carries
/// either a displayable (R, C, or G) or a scalar runtime parameter.
class PortType {
 public:
  enum class Kind { kRelation, kComposite, kGroup, kScalar };

  static PortType Relation() { return PortType(Kind::kRelation); }
  static PortType CompositeT() { return PortType(Kind::kComposite); }
  static PortType GroupT() { return PortType(Kind::kGroup); }
  static PortType Scalar(types::DataType type) {
    PortType t(Kind::kScalar);
    t.scalar_type_ = type;
    return t;
  }

  Kind kind() const { return kind_; }
  bool is_displayable() const { return kind_ != Kind::kScalar; }
  types::DataType scalar_type() const { return scalar_type_; }

  /// True iff an output of type `from` may feed an input of type `to`.
  /// Displayables use the §2 equivalences upward: R ≤ C ≤ G. Scalars allow
  /// the int → float widening.
  static bool Connectable(const PortType& from, const PortType& to);

  /// "R", "C", "G", or "scalar:<type>".
  std::string ToString() const;

  /// Parses the inverse of ToString.
  static bool FromString(const std::string& text, PortType* out);

  friend bool operator==(const PortType& a, const PortType& b) {
    return a.kind_ == b.kind_ &&
           (a.kind_ != Kind::kScalar || a.scalar_type_ == b.scalar_type_);
  }

 private:
  explicit PortType(Kind kind) : kind_(kind) {}

  Kind kind_;
  types::DataType scalar_type_ = types::DataType::kFloat;
};

/// A runtime value flowing along an edge.
using BoxValue = std::variant<display::Displayable, types::Value>;

/// The most specific PortType describing `value`.
PortType BoxValueType(const BoxValue& value);

/// Coerces `value` to satisfy an input of type `target` (applying the R → C
/// → G equivalences and int → float). Fails if not Connectable.
Result<BoxValue> CoerceBoxValue(const BoxValue& value, const PortType& target);

/// Unwraps helpers; each fails with TypeError when the variant mismatches.
Result<display::Displayable> AsDisplayable(const BoxValue& value);
Result<types::Value> AsScalar(const BoxValue& value);

}  // namespace tioga2::dataflow

#endif  // TIOGA2_DATAFLOW_PORT_TYPE_H_
