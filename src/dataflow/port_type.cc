#include "dataflow/port_type.h"

#include "common/str_util.h"

namespace tioga2::dataflow {

bool PortType::Connectable(const PortType& from, const PortType& to) {
  if (from.kind_ == Kind::kScalar || to.kind_ == Kind::kScalar) {
    if (from.kind_ != Kind::kScalar || to.kind_ != Kind::kScalar) return false;
    return types::IsImplicitlyConvertible(from.scalar_type_, to.scalar_type_);
  }
  // R ≤ C ≤ G (the §2 equivalences R = Composite(R), C = Group(C)).
  auto rank = [](Kind kind) {
    switch (kind) {
      case Kind::kRelation: return 0;
      case Kind::kComposite: return 1;
      case Kind::kGroup: return 2;
      default: return 3;
    }
  };
  return rank(from.kind_) <= rank(to.kind_);
}

std::string PortType::ToString() const {
  switch (kind_) {
    case Kind::kRelation: return "R";
    case Kind::kComposite: return "C";
    case Kind::kGroup: return "G";
    case Kind::kScalar: return "scalar:" + types::DataTypeToString(scalar_type_);
  }
  return "?";
}

bool PortType::FromString(const std::string& text, PortType* out) {
  if (text == "R") {
    *out = Relation();
    return true;
  }
  if (text == "C") {
    *out = CompositeT();
    return true;
  }
  if (text == "G") {
    *out = GroupT();
    return true;
  }
  if (StartsWith(text, "scalar:")) {
    types::DataType type;
    if (!types::DataTypeFromString(text.substr(7), &type)) return false;
    *out = Scalar(type);
    return true;
  }
  return false;
}

PortType BoxValueType(const BoxValue& value) {
  if (std::holds_alternative<types::Value>(value)) {
    const types::Value& v = std::get<types::Value>(value);
    return PortType::Scalar(v.is_null() ? types::DataType::kFloat : v.type());
  }
  const display::Displayable& displayable = std::get<display::Displayable>(value);
  if (std::holds_alternative<display::DisplayRelation>(displayable)) {
    return PortType::Relation();
  }
  if (std::holds_alternative<display::Composite>(displayable)) {
    return PortType::CompositeT();
  }
  return PortType::GroupT();
}

Result<BoxValue> CoerceBoxValue(const BoxValue& value, const PortType& target) {
  PortType actual = BoxValueType(value);
  if (!PortType::Connectable(actual, target)) {
    return Status::TypeError("cannot use a " + actual.ToString() + " value where " +
                             target.ToString() + " is expected");
  }
  if (target.kind() == PortType::Kind::kScalar) {
    TIOGA2_ASSIGN_OR_RETURN(types::Value v, AsScalar(value));
    if (v.is_null()) return BoxValue(v);
    TIOGA2_ASSIGN_OR_RETURN(types::Value cast, v.CastTo(target.scalar_type()));
    return BoxValue(std::move(cast));
  }
  const display::Displayable& displayable = std::get<display::Displayable>(value);
  switch (target.kind()) {
    case PortType::Kind::kRelation:
      return value;  // already an R by Connectable
    case PortType::Kind::kComposite: {
      TIOGA2_ASSIGN_OR_RETURN(display::Composite composite,
                              display::AsComposite(displayable));
      return BoxValue(display::Displayable(std::move(composite)));
    }
    case PortType::Kind::kGroup:
      return BoxValue(display::Displayable(display::AsGroup(displayable)));
    default:
      return Status::Internal("unreachable coercion target");
  }
}

Result<display::Displayable> AsDisplayable(const BoxValue& value) {
  if (!std::holds_alternative<display::Displayable>(value)) {
    return Status::TypeError("expected a displayable value, got a scalar");
  }
  return std::get<display::Displayable>(value);
}

Result<types::Value> AsScalar(const BoxValue& value) {
  if (!std::holds_alternative<types::Value>(value)) {
    return Status::TypeError("expected a scalar value, got a displayable");
  }
  return std::get<types::Value>(value);
}

}  // namespace tioga2::dataflow
