#include "dataflow/engine.h"

#include <algorithm>
#include <set>

#include "dataflow/stamp.h"

namespace tioga2::dataflow {

Result<MemoCache::EntryPtr> Engine::EvaluateBox(
    const Graph& graph, const std::string& box_id,
    std::vector<std::string>* eval_stack) {
  if (std::find(eval_stack->begin(), eval_stack->end(), box_id) != eval_stack->end()) {
    return Status::Internal("cycle through box '" + box_id + "' during evaluation");
  }
  TIOGA2_ASSIGN_OR_RETURN(const Box* box, graph.GetBox(box_id));

  ExecContext ctx;
  ctx.catalog = catalog_;
  ctx.encap_inputs = encap_inputs_;
  ctx.policy = policy_.value_or(db::DefaultExecPolicy());

  // Evaluate inputs first (depth first), accumulating the stamp.
  eval_stack->push_back(box_id);
  uint64_t stamp = BoxSignature(*box, ctx);
  std::vector<PortType> input_types = box->InputTypes();
  std::vector<MemoCache::EntryPtr> upstream_entries;
  std::vector<size_t> upstream_ports;
  upstream_entries.reserve(input_types.size());
  for (size_t port = 0; port < input_types.size(); ++port) {
    std::optional<Edge> edge = graph.IncomingEdge(box_id, port);
    if (!edge.has_value()) {
      eval_stack->pop_back();
      return Status::FailedPrecondition("box '" + box_id + "' (" + box->type_name() +
                                        ") input " + std::to_string(port) +
                                        " is not connected");
    }
    Result<MemoCache::EntryPtr> upstream = EvaluateBox(graph, edge->from_box, eval_stack);
    if (!upstream.ok()) {
      eval_stack->pop_back();
      return upstream.status();
    }
    MemoCache::EntryPtr entry = std::move(upstream).value();
    stamp = HashCombine(stamp, entry->stamp);
    stamp = HashCombine(stamp, edge->from_port);
    stamp = HashCombine(stamp, port);
    if (edge->from_port >= entry->outputs.size()) {
      eval_stack->pop_back();
      return Status::Internal("box '" + edge->from_box + "' produced no output " +
                              std::to_string(edge->from_port));
    }
    upstream_entries.push_back(std::move(entry));
    upstream_ports.push_back(edge->from_port);
  }
  eval_stack->pop_back();

  if (MemoCache::EntryPtr cached = cache_->Lookup(box_id, stamp)) {
    ++stats_.cache_hits;
    return cached;
  }
  // Local miss: another session may have evaluated an identical subgraph —
  // stamps are content-addressed, so a shared-tier entry under this stamp is
  // byte-identical to what firing would produce. Adopt it into the local
  // cache (sharing the allocation) instead of firing.
  if (shared_cache_ != nullptr) {
    if (MemoCache::EntryPtr shared = shared_cache_->Lookup(stamp)) {
      ++stats_.cache_hits;
      ++stats_.shared_hits;
      return cache_->InsertEntry(box_id, std::move(shared));
    }
  }

  // Cache miss: coerce the inputs and fire.
  std::vector<BoxValue> inputs;
  inputs.reserve(input_types.size());
  for (size_t port = 0; port < input_types.size(); ++port) {
    TIOGA2_ASSIGN_OR_RETURN(
        BoxValue coerced,
        CoerceBoxValue(upstream_entries[port]->outputs[upstream_ports[port]],
                       input_types[port]));
    inputs.push_back(std::move(coerced));
  }
  Result<std::vector<BoxValue>> outputs = box->Fire(inputs, ctx);
  for (std::string& warning : ctx.warnings) warnings_.push_back(std::move(warning));
  TIOGA2_RETURN_IF_ERROR(outputs.status());
  ++stats_.boxes_fired;
  if (outputs->size() != box->OutputTypes().size()) {
    return Status::Internal("box '" + box_id + "' (" + box->type_name() + ") fired " +
                            std::to_string(outputs->size()) + " outputs, declared " +
                            std::to_string(box->OutputTypes().size()));
  }
  MemoCache::EntryPtr stored =
      cache_->Insert(box_id, stamp, std::move(outputs).value());
  if (shared_cache_ != nullptr) shared_cache_->Insert(stored);
  return stored;
}

Result<BoxValue> Engine::Evaluate(const Graph& graph, const std::string& box_id,
                                  size_t output_port) {
  ++stats_.evaluations;
  warnings_.clear();
  std::vector<std::string> eval_stack;
  TIOGA2_ASSIGN_OR_RETURN(MemoCache::EntryPtr entry,
                          EvaluateBox(graph, box_id, &eval_stack));
  if (output_port >= entry->outputs.size()) {
    return Status::OutOfRange("box '" + box_id + "' has no output " +
                              std::to_string(output_port));
  }
  return entry->outputs[output_port];
}

Status Engine::EvaluateAll(const Graph& graph) {
  ++stats_.evaluations;
  warnings_.clear();
  TIOGA2_ASSIGN_OR_RETURN(std::vector<std::string> order, graph.TopologicalOrder());
  // Skip boxes that transitively depend on a dangling input — reported via
  // stats().boxes_skipped and a warning per box, not silently dropped.
  std::vector<std::string> dangling = graph.BoxesWithDanglingInputs();
  std::vector<std::string> blocked = dangling;
  for (const std::string& id : order) {
    if (std::find(blocked.begin(), blocked.end(), id) != blocked.end()) {
      ++stats_.boxes_skipped;
      warnings_.push_back("EvaluateAll: skipped box '" + id +
                          "' (dangling input, cannot fire)");
      continue;
    }
    bool upstream_blocked = false;
    std::vector<PortType> input_types;
    TIOGA2_ASSIGN_OR_RETURN(const Box* box, graph.GetBox(id));
    input_types = box->InputTypes();
    for (size_t port = 0; port < input_types.size(); ++port) {
      std::optional<Edge> edge = graph.IncomingEdge(id, port);
      if (edge.has_value() &&
          std::find(blocked.begin(), blocked.end(), edge->from_box) != blocked.end()) {
        upstream_blocked = true;
      }
    }
    if (upstream_blocked) {
      blocked.push_back(id);
      ++stats_.boxes_skipped;
      warnings_.push_back("EvaluateAll: skipped box '" + id +
                          "' (upstream of it has a dangling input)");
      continue;
    }
    std::vector<std::string> eval_stack;
    TIOGA2_RETURN_IF_ERROR(EvaluateBox(graph, id, &eval_stack).status());
  }
  return Status::OK();
}

std::vector<std::string> BoxesDownstreamOfTable(const Graph& graph,
                                                const std::string& table) {
  // Source boxes reading `table`, then the transitive downstream closure.
  std::set<std::string> affected;
  std::vector<std::string> frontier;
  for (const std::string& id : graph.BoxIds()) {
    Result<const Box*> box = graph.GetBox(id);
    if (!box.ok()) continue;
    if (box.value()->type_name() != "Table") continue;
    auto params = box.value()->Params();
    auto it = params.find("table");
    if (it != params.end() && it->second == table) {
      affected.insert(id);
      frontier.push_back(id);
    }
  }
  while (!frontier.empty()) {
    std::string id = std::move(frontier.back());
    frontier.pop_back();
    for (const Edge& edge : graph.OutgoingEdges(id)) {
      if (affected.insert(edge.to_box).second) frontier.push_back(edge.to_box);
    }
  }
  return std::vector<std::string>(affected.begin(), affected.end());
}

size_t Engine::InvalidateDownstreamOf(const Graph& graph, const std::string& table) {
  size_t evicted = 0;
  for (const std::string& id : BoxesDownstreamOfTable(graph, table)) {
    if (cache_->StampOf(id).has_value()) {
      cache_->Erase(id);
      ++evicted;
    }
  }
  return evicted;
}

Result<InvalidationResult> Engine::Invalidate(const Graph& graph,
                                              const Invalidation& inv) {
  InvalidationResult result;
  switch (inv.scope()) {
    case Invalidation::Scope::kAll:
      result.entries_evicted = cache_->size();
      cache_->Clear();
      return result;
    case Invalidation::Scope::kDownstreamOf:
      result.entries_evicted = InvalidateDownstreamOf(graph, inv.table());
      return result;
    case Invalidation::Scope::kDelta: {
      TIOGA2_ASSIGN_OR_RETURN(
          result, PropagateDelta(graph, catalog_, inv.delta(), *cache_,
                                 policy_.value_or(db::DefaultExecPolicy()),
                                 encap_inputs_));
      stats_.deltas_applied += result.deltas_applied;
      stats_.delta_fallbacks += result.delta_fallbacks;
      for (const std::string& warning : result.warnings)
        warnings_.push_back(warning);
      return result;
    }
  }
  return Status::Internal("unknown invalidation scope");
}

}  // namespace tioga2::dataflow
