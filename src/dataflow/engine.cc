#include "dataflow/engine.h"

#include <algorithm>

namespace tioga2::dataflow {

namespace {

uint64_t HashCombine(uint64_t seed, uint64_t value) {
  // 64-bit variant of boost::hash_combine.
  return seed ^ (value + 0x9E3779B97F4A7C15ULL + (seed << 12) + (seed >> 4));
}

uint64_t HashString(const std::string& text) {
  // FNV-1a.
  uint64_t hash = 1469598103934665603ULL;
  for (char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

uint64_t BoxSignature(const Box& box, const ExecContext& ctx) {
  uint64_t hash = HashString(box.type_name());
  for (const auto& [key, value] : box.Params()) {
    hash = HashCombine(hash, HashString(key));
    hash = HashCombine(hash, HashString(value));
  }
  hash = HashCombine(hash, HashString(box.CacheSalt(ctx)));
  return hash;
}

}  // namespace

Result<const Engine::CacheEntry*> Engine::EvaluateBox(
    const Graph& graph, const std::string& box_id,
    std::vector<std::string>* eval_stack) {
  if (std::find(eval_stack->begin(), eval_stack->end(), box_id) != eval_stack->end()) {
    return Status::Internal("cycle through box '" + box_id + "' during evaluation");
  }
  TIOGA2_ASSIGN_OR_RETURN(const Box* box, graph.GetBox(box_id));

  ExecContext ctx;
  ctx.catalog = catalog_;
  ctx.encap_inputs = encap_inputs_;

  // Evaluate inputs first (depth first), accumulating the stamp.
  eval_stack->push_back(box_id);
  uint64_t stamp = BoxSignature(*box, ctx);
  std::vector<PortType> input_types = box->InputTypes();
  std::vector<BoxValue> inputs;
  inputs.reserve(input_types.size());
  for (size_t port = 0; port < input_types.size(); ++port) {
    std::optional<Edge> edge = graph.IncomingEdge(box_id, port);
    if (!edge.has_value()) {
      eval_stack->pop_back();
      return Status::FailedPrecondition("box '" + box_id + "' (" + box->type_name() +
                                        ") input " + std::to_string(port) +
                                        " is not connected");
    }
    Result<const CacheEntry*> upstream = EvaluateBox(graph, edge->from_box, eval_stack);
    if (!upstream.ok()) {
      eval_stack->pop_back();
      return upstream.status();
    }
    const CacheEntry* entry = upstream.value();
    stamp = HashCombine(stamp, entry->stamp);
    stamp = HashCombine(stamp, edge->from_port);
    stamp = HashCombine(stamp, port);
    if (edge->from_port >= entry->outputs.size()) {
      eval_stack->pop_back();
      return Status::Internal("box '" + edge->from_box + "' produced no output " +
                              std::to_string(edge->from_port));
    }
    Result<BoxValue> coerced =
        CoerceBoxValue(entry->outputs[edge->from_port], input_types[port]);
    if (!coerced.ok()) {
      eval_stack->pop_back();
      return coerced.status();
    }
    inputs.push_back(std::move(coerced).value());
  }
  eval_stack->pop_back();

  auto cached = cache_.find(box_id);
  if (cached != cache_.end() && cached->second.stamp == stamp) {
    ++stats_.cache_hits;
    return static_cast<const CacheEntry*>(&cached->second);
  }

  Result<std::vector<BoxValue>> outputs = box->Fire(inputs, ctx);
  for (std::string& warning : ctx.warnings) warnings_.push_back(std::move(warning));
  TIOGA2_RETURN_IF_ERROR(outputs.status());
  ++stats_.boxes_fired;
  if (outputs->size() != box->OutputTypes().size()) {
    return Status::Internal("box '" + box_id + "' (" + box->type_name() + ") fired " +
                            std::to_string(outputs->size()) + " outputs, declared " +
                            std::to_string(box->OutputTypes().size()));
  }
  CacheEntry& entry = cache_[box_id];
  entry.stamp = stamp;
  entry.outputs = std::move(outputs).value();
  return static_cast<const CacheEntry*>(&entry);
}

Result<BoxValue> Engine::Evaluate(const Graph& graph, const std::string& box_id,
                                  size_t output_port) {
  ++stats_.evaluations;
  warnings_.clear();
  std::vector<std::string> eval_stack;
  TIOGA2_ASSIGN_OR_RETURN(const CacheEntry* entry,
                          EvaluateBox(graph, box_id, &eval_stack));
  if (output_port >= entry->outputs.size()) {
    return Status::OutOfRange("box '" + box_id + "' has no output " +
                              std::to_string(output_port));
  }
  return entry->outputs[output_port];
}

Status Engine::EvaluateAll(const Graph& graph) {
  ++stats_.evaluations;
  warnings_.clear();
  TIOGA2_ASSIGN_OR_RETURN(std::vector<std::string> order, graph.TopologicalOrder());
  // Skip boxes that transitively depend on a dangling input.
  std::vector<std::string> dangling = graph.BoxesWithDanglingInputs();
  std::vector<std::string> blocked = dangling;
  for (const std::string& id : order) {
    if (std::find(blocked.begin(), blocked.end(), id) != blocked.end()) continue;
    bool upstream_blocked = false;
    std::vector<PortType> input_types;
    TIOGA2_ASSIGN_OR_RETURN(const Box* box, graph.GetBox(id));
    input_types = box->InputTypes();
    for (size_t port = 0; port < input_types.size(); ++port) {
      std::optional<Edge> edge = graph.IncomingEdge(id, port);
      if (edge.has_value() &&
          std::find(blocked.begin(), blocked.end(), edge->from_box) != blocked.end()) {
        upstream_blocked = true;
      }
    }
    if (upstream_blocked) {
      blocked.push_back(id);
      continue;
    }
    std::vector<std::string> eval_stack;
    TIOGA2_RETURN_IF_ERROR(EvaluateBox(graph, id, &eval_stack).status());
  }
  return Status::OK();
}

}  // namespace tioga2::dataflow
