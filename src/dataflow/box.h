#ifndef TIOGA2_DATAFLOW_BOX_H_
#define TIOGA2_DATAFLOW_BOX_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "dataflow/port_type.h"
#include "db/catalog.h"

namespace tioga2::dataflow {

/// Context threaded through box firing: the catalog (for table sources and
/// §8 updates), warnings accumulated for the user (e.g. the §6.1 overlay
/// dimension-mismatch warning), and — inside encapsulated boxes — the values
/// bound to the enclosing box's inputs.
struct ExecContext {
  const db::Catalog* catalog = nullptr;
  /// Warnings surfaced to the UI; firing continues.
  mutable std::vector<std::string> warnings;
  /// Values of the enclosing encapsulated box's inputs (for InputStub).
  const std::vector<BoxValue>* encap_inputs = nullptr;
};

/// A primitive procedure in a boxes-and-arrows program (§2). Boxes are
/// immutable once constructed; editing a box means replacing it, which is
/// what lets the engine cache outputs by value.
class Box {
 public:
  virtual ~Box() = default;

  /// The box's operation name, e.g. "Restrict" (also the serialization tag
  /// and the BoxFactory key).
  virtual std::string type_name() const = 0;

  /// Input port types, in order.
  virtual std::vector<PortType> InputTypes() const = 0;

  /// Output port types, in order. Boxes may have multiple outputs — the key
  /// expressiveness fix over the original Tioga (§1.2 principle 5).
  virtual std::vector<PortType> OutputTypes() const = 0;

  /// Computes all outputs from inputs (already coerced to InputTypes()).
  /// Must be deterministic given (inputs, params, CacheSalt).
  virtual Result<std::vector<BoxValue>> Fire(const std::vector<BoxValue>& inputs,
                                             const ExecContext& ctx) const = 0;

  /// The box's parameters for serialization and cache signatures. Keys and
  /// values must round-trip through the BoxFactory.
  virtual std::map<std::string, std::string> Params() const = 0;

  /// Extra state that affects Fire but is not a parameter — e.g. the catalog
  /// version of the table a source box reads. Folded into the cache stamp.
  virtual std::string CacheSalt(const ExecContext& ctx) const {
    (void)ctx;
    return "";
  }

  virtual std::unique_ptr<Box> Clone() const = 0;

  /// "TypeName(k=v, ...)" for diagnostics and program listings.
  std::string ToString() const;
};

using BoxPtr = std::unique_ptr<Box>;

}  // namespace tioga2::dataflow

#endif  // TIOGA2_DATAFLOW_BOX_H_
