#ifndef TIOGA2_DATAFLOW_BOX_H_
#define TIOGA2_DATAFLOW_BOX_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "dataflow/delta.h"
#include "dataflow/port_type.h"
#include "db/catalog.h"
#include "db/exec_policy.h"

namespace tioga2::dataflow {

/// Context threaded through box firing: the catalog (for table sources and
/// §8 updates), warnings accumulated for the user (e.g. the §6.1 overlay
/// dimension-mismatch warning), the execution policy, and — inside
/// encapsulated boxes — the values bound to the enclosing box's inputs.
struct ExecContext {
  const db::Catalog* catalog = nullptr;
  /// Warnings surfaced to the UI; firing continues.
  mutable std::vector<std::string> warnings;
  /// Values of the enclosing encapsulated box's inputs (for InputStub).
  const std::vector<BoxValue>* encap_inputs = nullptr;
  /// How to execute (scalar vs vectorized paths). Never affects output
  /// bytes, so it stays out of the memo stamps.
  db::ExecPolicy policy;
  /// During delta propagation only: the table edit being propagated. Source
  /// boxes use it to emit their own ValueDelta; null during normal firing.
  const db::TableDelta* pending_delta = nullptr;
};

/// One input to Box::ApplyDelta: the value the box saw at its previous
/// firing, the value it would see now, and the edit script between them.
/// Both values are coerced to the input port's type, exactly as Fire's
/// inputs are. `delta` is never null; an unchanged input carries an empty
/// ValueDelta with old_value and new_value pointing at the same bytes.
struct DeltaInput {
  const BoxValue* old_value = nullptr;
  const BoxValue* new_value = nullptr;
  const ValueDelta* delta = nullptr;
};

/// The result of an accepted delta application: the box's new outputs —
/// which MUST be byte-identical to what Fire(new inputs) would produce (the
/// stamp contract, dataflow/stamp.h point 2) — and, per output port, the
/// edit script relating them to the old outputs (consumed by downstream
/// boxes and by the delta renderer).
struct DeltaFire {
  std::vector<BoxValue> outputs;
  std::vector<ValueDelta> deltas;  // parallel to outputs
};

/// A primitive procedure in a boxes-and-arrows program (§2). Boxes are
/// immutable once constructed; editing a box means replacing it, which is
/// what lets the engine cache outputs by value.
class Box {
 public:
  virtual ~Box() = default;

  /// The box's operation name, e.g. "Restrict" (also the serialization tag
  /// and the BoxFactory key).
  virtual std::string type_name() const = 0;

  /// Input port types, in order.
  virtual std::vector<PortType> InputTypes() const = 0;

  /// Output port types, in order. Boxes may have multiple outputs — the key
  /// expressiveness fix over the original Tioga (§1.2 principle 5).
  virtual std::vector<PortType> OutputTypes() const = 0;

  /// Computes all outputs from inputs (already coerced to InputTypes()).
  /// Must be deterministic given (inputs, params, CacheSalt).
  virtual Result<std::vector<BoxValue>> Fire(const std::vector<BoxValue>& inputs,
                                             const ExecContext& ctx) const = 0;

  /// The box's parameters for serialization and cache signatures. Keys and
  /// values must round-trip through the BoxFactory.
  virtual std::map<std::string, std::string> Params() const = 0;

  /// Extra state that affects Fire but is not a parameter — e.g. the catalog
  /// version of the table a source box reads. Folded into the cache stamp.
  virtual std::string CacheSalt(const ExecContext& ctx) const {
    (void)ctx;
    return "";
  }

  /// Incremental fast path for single-tuple §8 updates. Given old and new
  /// input values related by per-input edit scripts, either maintain the old
  /// outputs incrementally — returning a DeltaFire whose outputs are
  /// byte-identical to a fresh Fire over the new inputs — or decline by
  /// returning an empty optional, in which case the engine falls back to
  /// evicting this box and everything downstream of it (full
  /// recomputation). The default declines; boxes for which maintenance is
  /// not cheaper than re-firing (Join, GroupBy, Distinct, ...) simply keep
  /// the default. The engine never calls this when every input is unchanged
  /// (it reuses the old outputs directly), so at least one input delta is
  /// non-empty.
  virtual Result<std::optional<DeltaFire>> ApplyDelta(
      const std::vector<DeltaInput>& inputs,
      const std::vector<BoxValue>& old_outputs, const ExecContext& ctx) const {
    (void)inputs;
    (void)old_outputs;
    (void)ctx;
    return std::optional<DeltaFire>();
  }

  virtual std::unique_ptr<Box> Clone() const = 0;

  /// "TypeName(k=v, ...)" for diagnostics and program listings.
  std::string ToString() const;
};

using BoxPtr = std::unique_ptr<Box>;

}  // namespace tioga2::dataflow

#endif  // TIOGA2_DATAFLOW_BOX_H_
