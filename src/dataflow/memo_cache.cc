#include "dataflow/memo_cache.h"

namespace tioga2::dataflow {

MemoCache::EntryPtr MemoCache::Lookup(const std::string& box_id,
                                      uint64_t stamp) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(box_id);
  if (it == entries_.end() || it->second->stamp != stamp) return nullptr;
  return it->second;
}

MemoCache::EntryPtr MemoCache::Insert(const std::string& box_id, uint64_t stamp,
                                      std::vector<BoxValue> outputs) {
  auto entry = std::make_shared<Entry>();
  entry->stamp = stamp;
  entry->outputs = std::move(outputs);
  std::lock_guard<std::mutex> lock(mu_);
  EntryPtr& slot = entries_[box_id];
  if (slot != nullptr && slot->stamp == stamp) return slot;  // lost the race
  slot = std::move(entry);
  return slot;
}

MemoCache::EntryPtr MemoCache::InsertEntry(const std::string& box_id,
                                           EntryPtr entry) {
  std::lock_guard<std::mutex> lock(mu_);
  EntryPtr& slot = entries_[box_id];
  if (slot != nullptr && slot->stamp == entry->stamp) return slot;
  slot = std::move(entry);
  return slot;
}

std::optional<uint64_t> MemoCache::StampOf(const std::string& box_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(box_id);
  if (it == entries_.end()) return std::nullopt;
  return it->second->stamp;
}

MemoCache::EntryPtr MemoCache::Get(const std::string& box_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(box_id);
  return it == entries_.end() ? nullptr : it->second;
}

void MemoCache::Erase(const std::string& box_id) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.erase(box_id);
}

void MemoCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
}

size_t MemoCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace tioga2::dataflow
