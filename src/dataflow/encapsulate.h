#ifndef TIOGA2_DATAFLOW_ENCAPSULATE_H_
#define TIOGA2_DATAFLOW_ENCAPSULATE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "dataflow/graph.h"

namespace tioga2::dataflow {

/// Placeholder inside an encapsulated definition delivering the enclosing
/// box's `index`-th input (the edges cut by the user's closed curve, §4.1).
class InputStub : public Box {
 public:
  InputStub(size_t index, PortType type) : index_(index), type_(type) {}

  std::string type_name() const override { return "InputStub"; }
  std::vector<PortType> InputTypes() const override { return {}; }
  std::vector<PortType> OutputTypes() const override { return {type_}; }
  Result<std::vector<BoxValue>> Fire(const std::vector<BoxValue>& inputs,
                                     const ExecContext& ctx) const override;
  std::map<std::string, std::string> Params() const override {
    return {{"index", std::to_string(index_)}, {"type", type_.ToString()}};
  }
  std::unique_ptr<Box> Clone() const override {
    return std::make_unique<InputStub>(index_, type_);
  }

  size_t index() const { return index_; }

 private:
  size_t index_;
  PortType type_;
};

/// A hole (§4.1): "these areas become 'holes' — they are not included in the
/// encapsulated box ... to use an encapsulated box with holes, the user must
/// specify a box with compatible types that can be plugged into each hole."
/// Firing an unfilled hole is an error.
class HoleBox : public Box {
 public:
  HoleBox(std::string label, std::vector<PortType> inputs, std::vector<PortType> outputs)
      : label_(std::move(label)), inputs_(std::move(inputs)), outputs_(std::move(outputs)) {}

  std::string type_name() const override { return "Hole"; }
  std::vector<PortType> InputTypes() const override { return inputs_; }
  std::vector<PortType> OutputTypes() const override { return outputs_; }
  Result<std::vector<BoxValue>> Fire(const std::vector<BoxValue>& inputs,
                                     const ExecContext& ctx) const override;
  std::map<std::string, std::string> Params() const override;
  std::unique_ptr<Box> Clone() const override {
    return std::make_unique<HoleBox>(label_, inputs_, outputs_);
  }

  const std::string& label() const { return label_; }

 private:
  std::string label_;
  std::vector<PortType> inputs_;
  std::vector<PortType> outputs_;
};

/// A user-defined box produced by Encapsulate (§4.1): a nested
/// boxes-and-arrows program behaving as one primitive box — the graphical
/// analog of a procedure, or with holes, of a macro / higher-order function.
class EncapsulatedBox : public Box {
 public:
  /// `outputs` lists (inner box id, port) pairs feeding each outer output.
  EncapsulatedBox(std::string name, Graph inner,
                  std::vector<std::pair<std::string, size_t>> outputs);

  std::string type_name() const override { return "Encapsulated"; }
  std::vector<PortType> InputTypes() const override;
  std::vector<PortType> OutputTypes() const override;
  Result<std::vector<BoxValue>> Fire(const std::vector<BoxValue>& inputs,
                                     const ExecContext& ctx) const override;
  std::map<std::string, std::string> Params() const override;
  std::unique_ptr<Box> Clone() const override;

  const std::string& name() const { return name_; }
  const Graph& inner() const { return inner_; }
  const std::vector<std::pair<std::string, size_t>>& output_bindings() const {
    return outputs_;
  }

  /// Ids of unfilled holes, in insertion order.
  std::vector<std::string> HoleIds() const;

  /// Returns a copy with each hole (in HoleIds() order) replaced by the
  /// corresponding filler. Fillers must match the hole's port signature.
  Result<std::unique_ptr<EncapsulatedBox>> FillHoles(
      std::vector<BoxPtr> fillers) const;

 private:
  std::string name_;
  Graph inner_;
  std::vector<std::pair<std::string, size_t>> outputs_;
};

/// Builds an EncapsulatedBox from a region of `graph` (the closed curve of
/// §4.1): `box_ids` is the region; edges entering the region become inputs
/// (in a deterministic order), edges leaving it become outputs. Boxes listed
/// in `hole_ids` (a subset of the region) become holes.
Result<std::unique_ptr<EncapsulatedBox>> EncapsulateSubgraph(
    const Graph& graph, const std::vector<std::string>& box_ids,
    const std::vector<std::string>& hole_ids, const std::string& name);

}  // namespace tioga2::dataflow

#endif  // TIOGA2_DATAFLOW_ENCAPSULATE_H_
