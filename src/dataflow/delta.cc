#include "dataflow/delta.h"

#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "dataflow/engine.h"
#include "dataflow/stamp.h"

namespace tioga2::dataflow {
namespace {

// Per-box bookkeeping for the propagation walk. States are keyed by box id
// and filled in topological order, so a box's upstream states are always
// complete when it is visited.
struct BoxState {
  // True once s_old/s_new are valid. False for boxes with dangling inputs
  // (or downstream of one) — such boxes can never have fired, so there is
  // nothing to maintain, but their stamps cannot be trusted either.
  bool known = false;
  // The box's stamp against the pre-update program (old table version) and
  // against the post-update program. Equal for boxes outside the affected
  // closure.
  uint64_t s_old = 0;
  uint64_t s_new = 0;
  bool affected = false;
  // Affected boxes only: maintained means old_entry/new_entry/deltas are
  // valid and the cache holds the post-update outputs under s_new. A box
  // that is affected but neither maintained nor clean is broken — its
  // downstream affected consumers must fall back because no (old, new)
  // input pair exists for them.
  bool maintained = false;
  MemoCache::EntryPtr old_entry;   // pre-update outputs (kept alive here —
                                   // the cache slot now holds new_entry)
  MemoCache::EntryPtr new_entry;   // post-update outputs
  std::vector<ValueDelta> deltas;  // parallel to new_entry->outputs
};

}  // namespace

Result<InvalidationResult> PropagateDelta(
    const Graph& graph, const db::Catalog* catalog, const db::TableDelta& delta,
    MemoCache& cache, const db::ExecPolicy& policy,
    const std::vector<BoxValue>* encap_inputs) {
  InvalidationResult result;
  if (catalog == nullptr) {
    return Status::FailedPrecondition(
        "delta propagation requires a catalog (the delta's table must be "
        "readable at its new version)");
  }

  std::vector<std::string> affected_list =
      BoxesDownstreamOfTable(graph, delta.table);
  std::set<std::string> affected(affected_list.begin(), affected_list.end());
  if (affected.empty()) return result;  // no box reads the table

  TIOGA2_ASSIGN_OR_RETURN(std::vector<std::string> order,
                          graph.TopologicalOrder());

  ExecContext ctx;
  ctx.catalog = catalog;
  ctx.encap_inputs = encap_inputs;
  ctx.policy = policy;
  ctx.pending_delta = &delta;

  const ValueDelta kUnchangedInput;  // empty delta shared by clean inputs
  std::map<std::string, BoxState> states;

  for (const std::string& id : order) {
    BoxState& st = states[id];
    st.affected = affected.count(id) > 0;

    Result<const Box*> box_or = graph.GetBox(id);
    if (!box_or.ok()) return box_or.status();
    const Box* box = box_or.value();

    // Evicts this box's entry (if any) and marks it broken, which makes
    // every downstream affected box fall back in turn.
    auto fall_back = [&]() {
      if (cache.Get(id) != nullptr) {
        cache.Erase(id);
        ++result.entries_evicted;
        ++result.delta_fallbacks;
      }
      st.maintained = false;
    };

    // The box's own signature, before and after the update. Only source
    // boxes reading the edited table see a different pre-update signature:
    // their CacheSalt is the table version, which the update bumped.
    uint64_t sig_new = BoxSignature(*box, ctx);
    uint64_t sig_old = sig_new;
    if (st.affected && box->type_name() == "Table") {
      auto params = box->Params();
      auto it = params.find("table");
      if (it != params.end() && it->second == delta.table) {
        sig_old =
            BoxSignatureWithSalt(*box, std::to_string(delta.old_version));
      }
    }

    // Fold input stamps in port order, exactly as Engine::EvaluateBox does.
    uint64_t s_old = sig_old;
    uint64_t s_new = sig_new;
    bool known = true;
    std::vector<PortType> input_types = box->InputTypes();
    struct InRef {
      const BoxState* upstream = nullptr;
      std::string from_box;
      size_t from_port = 0;
    };
    std::vector<InRef> in_refs;
    in_refs.reserve(input_types.size());
    for (size_t port = 0; port < input_types.size(); ++port) {
      std::optional<Edge> edge = graph.IncomingEdge(id, port);
      if (!edge.has_value()) {
        known = false;
        break;
      }
      auto up = states.find(edge->from_box);
      if (up == states.end() || !up->second.known) {
        known = false;
        break;
      }
      s_old = HashCombine(s_old, up->second.s_old);
      s_old = HashCombine(s_old, edge->from_port);
      s_old = HashCombine(s_old, port);
      s_new = HashCombine(s_new, up->second.s_new);
      s_new = HashCombine(s_new, edge->from_port);
      s_new = HashCombine(s_new, port);
      in_refs.push_back(InRef{&up->second, edge->from_box, edge->from_port});
    }
    st.known = known;
    st.s_old = s_old;
    st.s_new = s_new;

    if (!st.affected) continue;  // entry untouched; validated by consumers
    if (!known) {
      // Dangling input somewhere upstream: the box cannot have a live
      // entry, but evict defensively if one is lingering.
      fall_back();
      continue;
    }

    MemoCache::EntryPtr entry = cache.Get(id);
    if (entry == nullptr) {
      // Nothing cached: nothing to maintain and nothing to evict. Counted
      // neither as applied nor as fallback; downstream boxes with entries
      // will fall back because no (old, new) pair exists here.
      continue;
    }
    if (entry->stamp != s_old) {
      // The cached entry predates some *other* change too — it does not
      // match the pre-update program, so the delta cannot bridge it.
      fall_back();
      continue;
    }

    // Gather (old, new, delta) for every input, coerced to the input port
    // types exactly as Fire's inputs are. Identity coercions (the value's
    // kind already matches the port) are skipped and the cached value is
    // passed by pointer — copying a BoxValue duplicates its attribute
    // metadata, which would dominate the whole walk.
    bool inputs_ok = true;
    bool any_changed = false;
    std::vector<MemoCache::EntryPtr> holds;  // keep clean entries alive
    std::vector<std::optional<BoxValue>> old_store(in_refs.size());
    std::vector<std::optional<BoxValue>> new_store(in_refs.size());
    std::vector<const BoxValue*> old_vals(in_refs.size(), nullptr);
    std::vector<const BoxValue*> new_vals(in_refs.size(), nullptr);
    std::vector<const ValueDelta*> in_deltas(in_refs.size(), &kUnchangedInput);
    holds.reserve(in_refs.size());
    for (size_t port = 0; port < in_refs.size(); ++port) {
      const InRef& in = in_refs[port];
      const BoxState& up = *in.upstream;
      const BoxValue* old_raw = nullptr;
      const BoxValue* new_raw = nullptr;
      if (!up.affected) {
        MemoCache::EntryPtr hold = cache.Get(in.from_box);
        if (hold == nullptr || hold->stamp != up.s_new ||
            in.from_port >= hold->outputs.size()) {
          inputs_ok = false;  // clean input not cached: cannot maintain
          break;
        }
        old_raw = new_raw = &hold->outputs[in.from_port];
        holds.push_back(std::move(hold));
      } else if (up.maintained &&
                 in.from_port < up.old_entry->outputs.size() &&
                 in.from_port < up.new_entry->outputs.size() &&
                 in.from_port < up.deltas.size()) {
        old_raw = &up.old_entry->outputs[in.from_port];
        new_raw = &up.new_entry->outputs[in.from_port];
        in_deltas[port] = &up.deltas[in.from_port];
      } else {
        inputs_ok = false;  // upstream fell back (or was never cached)
        break;
      }
      if (BoxValueType(*old_raw) == input_types[port]) {
        old_vals[port] = old_raw;
      } else {
        Result<BoxValue> oc = CoerceBoxValue(*old_raw, input_types[port]);
        if (!oc.ok()) {
          inputs_ok = false;
          break;
        }
        old_store[port] = std::move(oc).value();
        old_vals[port] = &*old_store[port];
      }
      if (new_raw == old_raw) {
        new_vals[port] = old_vals[port];
      } else if (BoxValueType(*new_raw) == input_types[port]) {
        new_vals[port] = new_raw;
      } else {
        Result<BoxValue> nc = CoerceBoxValue(*new_raw, input_types[port]);
        if (!nc.ok()) {
          inputs_ok = false;
          break;
        }
        new_store[port] = std::move(nc).value();
        new_vals[port] = &*new_store[port];
      }
      if (!in_deltas[port]->unchanged()) any_changed = true;
    }
    if (!inputs_ok) {
      fall_back();
      continue;
    }

    size_t num_outputs = box->OutputTypes().size();

    // Short-circuit: every input is byte-identical, so the outputs are too
    // (Fire is a pure function of the inputs). Re-key the old outputs under
    // the post-update stamp without consulting the box. Source boxes (no
    // inputs) never take this path — their signature change is the delta.
    if (!in_refs.empty() && !any_changed) {
      st.old_entry = entry;
      st.deltas.assign(num_outputs, ValueDelta{});
      st.new_entry = cache.Insert(id, s_new, entry->outputs);
      st.maintained = true;
      ++result.deltas_applied;
      result.box_deltas[id] = st.deltas;
      continue;
    }

    // Offer the box its incremental fast path.
    std::vector<DeltaInput> dinputs(in_refs.size());
    for (size_t i = 0; i < dinputs.size(); ++i) {
      dinputs[i].old_value = old_vals[i];
      dinputs[i].new_value = new_vals[i];
      dinputs[i].delta = in_deltas[i];
    }
    ctx.warnings.clear();
    Result<std::optional<DeltaFire>> fired =
        box->ApplyDelta(dinputs, entry->outputs, ctx);
    for (std::string& warning : ctx.warnings)
      result.warnings.push_back(std::move(warning));
    ctx.warnings.clear();
    if (!fired.ok()) {
      // A failing fast path degrades to a full recompute; it must not fail
      // the whole invalidation.
      result.warnings.push_back("delta: box '" + id + "' (" +
                                box->type_name() + ") ApplyDelta failed: " +
                                fired.status().ToString() +
                                "; falling back to recompute");
      fall_back();
      continue;
    }
    if (!fired.value().has_value()) {
      fall_back();  // box declined
      continue;
    }
    DeltaFire df = std::move(fired).value().value();
    if (df.outputs.size() != num_outputs ||
        df.deltas.size() != df.outputs.size()) {
      result.warnings.push_back("delta: box '" + id + "' (" +
                                box->type_name() +
                                ") returned a malformed DeltaFire; falling "
                                "back to recompute");
      fall_back();
      continue;
    }
    st.old_entry = entry;
    st.deltas = std::move(df.deltas);
    st.new_entry = cache.Insert(id, s_new, std::move(df.outputs));
    st.maintained = true;
    ++result.deltas_applied;
    result.box_deltas[id] = st.deltas;
  }

  return result;
}

}  // namespace tioga2::dataflow
