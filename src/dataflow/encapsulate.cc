#include "dataflow/encapsulate.h"

#include <algorithm>
#include <set>

#include "common/str_util.h"
#include "dataflow/engine.h"

namespace tioga2::dataflow {

Result<std::vector<BoxValue>> InputStub::Fire(const std::vector<BoxValue>& inputs,
                                              const ExecContext& ctx) const {
  (void)inputs;
  if (ctx.encap_inputs == nullptr) {
    return Status::FailedPrecondition(
        "InputStub fired outside an encapsulated box evaluation");
  }
  if (index_ >= ctx.encap_inputs->size()) {
    return Status::Internal("InputStub index " + std::to_string(index_) +
                            " out of range");
  }
  TIOGA2_ASSIGN_OR_RETURN(BoxValue value,
                          CoerceBoxValue((*ctx.encap_inputs)[index_], type_));
  return std::vector<BoxValue>{std::move(value)};
}

Result<std::vector<BoxValue>> HoleBox::Fire(const std::vector<BoxValue>& inputs,
                                            const ExecContext& ctx) const {
  (void)inputs;
  (void)ctx;
  return Status::FailedPrecondition("hole '" + label_ +
                                    "' has not been filled; plug a box with "
                                    "compatible types into it first (§4.1)");
}

std::map<std::string, std::string> HoleBox::Params() const {
  std::vector<std::string> in;
  for (const PortType& type : inputs_) in.push_back(type.ToString());
  std::vector<std::string> out;
  for (const PortType& type : outputs_) out.push_back(type.ToString());
  return {{"label", label_}, {"inputs", StrJoin(in, ",")}, {"outputs", StrJoin(out, ",")}};
}

EncapsulatedBox::EncapsulatedBox(std::string name, Graph inner,
                                 std::vector<std::pair<std::string, size_t>> outputs)
    : name_(std::move(name)), inner_(std::move(inner)), outputs_(std::move(outputs)) {}

std::vector<PortType> EncapsulatedBox::InputTypes() const {
  // Collect InputStubs sorted by index.
  std::vector<std::pair<size_t, PortType>> stubs;
  for (const std::string& id : inner_.BoxIds()) {
    const Box* box = inner_.GetBox(id).value_or(nullptr);
    if (box == nullptr) continue;
    if (const auto* stub = dynamic_cast<const InputStub*>(box)) {
      stubs.emplace_back(stub->index(), stub->OutputTypes()[0]);
    }
  }
  std::sort(stubs.begin(), stubs.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<PortType> types;
  types.reserve(stubs.size());
  for (const auto& [index, type] : stubs) types.push_back(type);
  return types;
}

std::vector<PortType> EncapsulatedBox::OutputTypes() const {
  std::vector<PortType> types;
  for (const auto& [box_id, port] : outputs_) {
    Result<const Box*> box = inner_.GetBox(box_id);
    if (!box.ok()) continue;
    std::vector<PortType> outs = (*box)->OutputTypes();
    if (port < outs.size()) types.push_back(outs[port]);
  }
  return types;
}

Result<std::vector<BoxValue>> EncapsulatedBox::Fire(const std::vector<BoxValue>& inputs,
                                                    const ExecContext& ctx) const {
  // Evaluate the inner program with a nested engine; the outer inputs bind
  // to the InputStubs.
  Engine engine(ctx.catalog, &inputs);
  std::vector<BoxValue> results;
  results.reserve(outputs_.size());
  for (const auto& [box_id, port] : outputs_) {
    TIOGA2_ASSIGN_OR_RETURN(BoxValue value, engine.Evaluate(inner_, box_id, port));
    results.push_back(std::move(value));
  }
  for (const std::string& warning : engine.warnings()) {
    ctx.warnings.push_back("[" + name_ + "] " + warning);
  }
  return results;
}

std::map<std::string, std::string> EncapsulatedBox::Params() const {
  // The inner graph is serialized structurally by the program serializer;
  // for cache signatures, fold in a listing of the inner program.
  std::vector<std::string> bindings;
  for (const auto& [box_id, port] : outputs_) {
    bindings.push_back(box_id + ":" + std::to_string(port));
  }
  return {{"name", name_},
          {"outputs", StrJoin(bindings, ",")},
          {"inner_digest", inner_.ToString()}};
}

std::unique_ptr<Box> EncapsulatedBox::Clone() const {
  return std::make_unique<EncapsulatedBox>(name_, inner_.Clone(), outputs_);
}

std::vector<std::string> EncapsulatedBox::HoleIds() const {
  std::vector<std::string> ids;
  for (const std::string& id : inner_.BoxIds()) {
    const Box* box = inner_.GetBox(id).value_or(nullptr);
    if (box != nullptr && dynamic_cast<const HoleBox*>(box) != nullptr) {
      ids.push_back(id);
    }
  }
  return ids;
}

Result<std::unique_ptr<EncapsulatedBox>> EncapsulatedBox::FillHoles(
    std::vector<BoxPtr> fillers) const {
  std::vector<std::string> holes = HoleIds();
  if (fillers.size() != holes.size()) {
    return Status::InvalidArgument("encapsulated box '" + name_ + "' has " +
                                   std::to_string(holes.size()) + " holes, got " +
                                   std::to_string(fillers.size()) + " fillers");
  }
  Graph filled = inner_.Clone();
  for (size_t i = 0; i < holes.size(); ++i) {
    TIOGA2_RETURN_IF_ERROR(filled.ReplaceBox(holes[i], std::move(fillers[i])));
  }
  return std::make_unique<EncapsulatedBox>(name_, std::move(filled), outputs_);
}

Result<std::unique_ptr<EncapsulatedBox>> EncapsulateSubgraph(
    const Graph& graph, const std::vector<std::string>& box_ids,
    const std::vector<std::string>& hole_ids, const std::string& name) {
  std::set<std::string> region(box_ids.begin(), box_ids.end());
  std::set<std::string> holes(hole_ids.begin(), hole_ids.end());
  for (const std::string& id : box_ids) {
    if (!graph.HasBox(id)) return Status::NotFound("no box with id '" + id + "'");
  }
  for (const std::string& id : hole_ids) {
    if (region.count(id) == 0) {
      return Status::InvalidArgument("hole '" + id +
                                     "' is not inside the encapsulated region");
    }
  }

  Graph inner;
  // Clone region boxes (holes become HoleBox placeholders keeping the same
  // port signature).
  for (const std::string& id : box_ids) {
    TIOGA2_ASSIGN_OR_RETURN(const Box* box, graph.GetBox(id));
    BoxPtr clone;
    if (holes.count(id) > 0) {
      clone = std::make_unique<HoleBox>(box->type_name(), box->InputTypes(),
                                        box->OutputTypes());
    } else {
      clone = box->Clone();
    }
    TIOGA2_RETURN_IF_ERROR(inner.AddBox(std::move(clone), id).status());
  }

  // Internal edges copy across; edges entering the region become InputStubs;
  // edges leaving the region become output bindings.
  size_t next_input = 0;
  std::vector<std::pair<std::string, size_t>> outputs;
  std::set<std::pair<std::string, size_t>> seen_outputs;
  for (const Edge& edge : graph.edges()) {
    bool from_inside = region.count(edge.from_box) > 0;
    bool to_inside = region.count(edge.to_box) > 0;
    if (from_inside && to_inside) {
      TIOGA2_RETURN_IF_ERROR(
          inner.Connect(edge.from_box, edge.from_port, edge.to_box, edge.to_port));
    } else if (!from_inside && to_inside) {
      TIOGA2_ASSIGN_OR_RETURN(const Box* from, graph.GetBox(edge.from_box));
      PortType type = from->OutputTypes()[edge.from_port];
      TIOGA2_ASSIGN_OR_RETURN(
          std::string stub_id,
          inner.AddBox(std::make_unique<InputStub>(next_input, type),
                       "in" + std::to_string(next_input)));
      ++next_input;
      TIOGA2_RETURN_IF_ERROR(inner.Connect(stub_id, 0, edge.to_box, edge.to_port));
    } else if (from_inside && !to_inside) {
      auto binding = std::make_pair(edge.from_box, edge.from_port);
      if (seen_outputs.insert(binding).second) outputs.push_back(binding);
    }
  }
  if (outputs.empty()) {
    // A region with no outgoing edges exports its sink boxes' outputs.
    for (const std::string& id : box_ids) {
      TIOGA2_ASSIGN_OR_RETURN(const Box* box, graph.GetBox(id));
      if (graph.OutgoingEdges(id).empty() && !box->OutputTypes().empty()) {
        outputs.emplace_back(id, 0);
      }
    }
  }
  if (outputs.empty()) {
    return Status::InvalidArgument(
        "encapsulated region exports no outputs; include a box with a free output");
  }
  return std::make_unique<EncapsulatedBox>(name, std::move(inner), std::move(outputs));
}

}  // namespace tioga2::dataflow
