#include "dataflow/box.h"

#include "common/str_util.h"

namespace tioga2::dataflow {

std::string Box::ToString() const {
  std::string out = type_name() + "(";
  bool first = true;
  for (const auto& [key, value] : Params()) {
    if (!first) out += ", ";
    first = false;
    out += key + "=" + value;
  }
  out += ")";
  return out;
}

}  // namespace tioga2::dataflow
