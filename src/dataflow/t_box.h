#ifndef TIOGA2_DATAFLOW_T_BOX_H_
#define TIOGA2_DATAFLOW_T_BOX_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "dataflow/box.h"

namespace tioga2::dataflow {

/// The T box of §4.1: "simply passes its input unchanged to both outputs,
/// and allows another box, for example a viewer, to be connected". This is
/// what lets a viewer be installed on any edge of a diagram — the debugging
/// improvement Tioga lacked (§1.1 problem 2).
class TBox : public Box {
 public:
  explicit TBox(PortType type) : type_(type) {}

  std::string type_name() const override { return "T"; }
  std::vector<PortType> InputTypes() const override { return {type_}; }
  std::vector<PortType> OutputTypes() const override { return {type_, type_}; }

  Result<std::vector<BoxValue>> Fire(const std::vector<BoxValue>& inputs,
                                     const ExecContext& ctx) const override {
    (void)ctx;
    return std::vector<BoxValue>{inputs[0], inputs[0]};
  }

  std::map<std::string, std::string> Params() const override {
    return {{"type", type_.ToString()}};
  }

  std::unique_ptr<Box> Clone() const override { return std::make_unique<TBox>(type_); }

 private:
  PortType type_;
};

}  // namespace tioga2::dataflow

#endif  // TIOGA2_DATAFLOW_T_BOX_H_
