#include <gtest/gtest.h>

#include "db/operators.h"

namespace tioga2::db {
namespace {

using types::DataType;
using types::Value;

RelationPtr People() {
  return MakeRelation(
             {Column{"id", DataType::kInt}, Column{"name", DataType::kString},
              Column{"age", DataType::kInt}, Column{"score", DataType::kFloat}},
             {
                 {Value::Int(1), Value::String("ann"), Value::Int(30), Value::Float(1.5)},
                 {Value::Int(2), Value::String("bob"), Value::Int(25), Value::Float(2.5)},
                 {Value::Int(3), Value::String("cat"), Value::Int(35), Value::Float(0.5)},
                 {Value::Int(4), Value::String("dan"), Value::Null(), Value::Float(3.5)},
             })
      .value();
}

RelationPtr Orders() {
  return MakeRelation({Column{"person", DataType::kInt},
                       Column{"item", DataType::kString}},
                      {
                          {Value::Int(1), Value::String("hat")},
                          {Value::Int(1), Value::String("bag")},
                          {Value::Int(3), Value::String("pen")},
                          {Value::Int(9), Value::String("orphan")},
                      })
      .value();
}

TEST(ProjectTest, KeepsColumnsInOrder) {
  auto projected = Project(People(), {"name", "id"});
  ASSERT_TRUE(projected.ok());
  EXPECT_EQ((*projected)->schema()->ToString(), "(name:string, id:int)");
  EXPECT_EQ((*projected)->num_rows(), 4u);
  EXPECT_EQ((*projected)->at(0, 0).string_value(), "ann");
  EXPECT_EQ((*projected)->at(0, 1).int_value(), 1);
}

TEST(ProjectTest, UnknownColumnFails) {
  EXPECT_TRUE(Project(People(), {"nope"}).status().IsNotFound());
}

TEST(ProjectTest, DuplicateColumnInListFails) {
  // Projecting the same column twice would create duplicate names.
  EXPECT_TRUE(Project(People(), {"id", "id"}).status().IsAlreadyExists());
}

TEST(RestrictTest, FiltersByPredicate) {
  auto result = Restrict(People(), "age >= 30");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ((*result)->num_rows(), 2u);  // ann, cat; dan's null age rejected
}

TEST(RestrictTest, NullPredicateResultRejectsTuple) {
  auto result = Restrict(People(), "age > 0");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result)->num_rows(), 3u);  // dan's null age is not > 0
}

TEST(RestrictTest, StringAndCompoundPredicates) {
  auto result = Restrict(People(), "name = \"bob\" or score > 3");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result)->num_rows(), 2u);
}

TEST(RestrictTest, NonBoolPredicateIsTypeError) {
  EXPECT_TRUE(Restrict(People(), "age + 1").status().IsTypeError());
}

TEST(RestrictTest, MalformedPredicateIsParseError) {
  EXPECT_TRUE(Restrict(People(), "age >=").status().IsParseError());
}

TEST(SampleTest, ProbabilityZeroAndOne) {
  EXPECT_EQ(Sample(People(), 0.0, 7).value()->num_rows(), 0u);
  EXPECT_EQ(Sample(People(), 1.0, 7).value()->num_rows(), 4u);
}

TEST(SampleTest, DeterministicForSeed) {
  auto a = Sample(People(), 0.5, 99).value();
  auto b = Sample(People(), 0.5, 99).value();
  EXPECT_TRUE(RelationEquals(*a, *b));
}

TEST(SampleTest, RejectsBadProbability) {
  EXPECT_TRUE(Sample(People(), -0.1, 1).status().IsInvalidArgument());
  EXPECT_TRUE(Sample(People(), 1.1, 1).status().IsInvalidArgument());
}

TEST(SampleTest, ProportionRoughlyMatches) {
  RelationBuilder builder(People()->schema());
  for (int i = 0; i < 4000; ++i) {
    builder.AddRowUnchecked(People()->row(static_cast<size_t>(i % 4)));
  }
  RelationPtr big = builder.Build();
  auto sampled = Sample(big, 0.25, 5).value();
  EXPECT_NEAR(static_cast<double>(sampled->num_rows()) / 4000.0, 0.25, 0.03);
}

TEST(JoinTest, HashJoinOnEquality) {
  auto result = Join(People(), Orders(), "id = person");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->algorithm, JoinAlgorithm::kHash);
  EXPECT_EQ(result->relation->num_rows(), 3u);  // ann x2, cat x1
  EXPECT_EQ(result->relation->schema()->ToString(),
            "(id:int, name:string, age:int, score:float, person:int, item:string)");
}

TEST(JoinTest, NestedLoopForNonEqui) {
  auto result = Join(People(), Orders(), "id < person");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->algorithm, JoinAlgorithm::kNestedLoop);
  // pairs with id < person: ids {1,2,3} vs persons {1,1,3,9}:
  // id=1: person 3,9 -> 2; id=2: 3,9 -> 2; id=3: 9 -> 1; id=4 (null age fine) person 9 -> 1
  EXPECT_EQ(result->relation->num_rows(), 6u);
}

TEST(JoinTest, AlgorithmsAgree) {
  auto hash = Join(People(), Orders(), "id = person").value();
  auto loop = NestedLoopJoin(People(), Orders(), "id = person").value();
  ASSERT_EQ(hash.relation->num_rows(), loop->num_rows());
  // The hash join may emit rows in a different order; compare as multisets
  // of rendered rows.
  auto render = [](const Relation& r) {
    std::vector<std::string> rows;
    for (size_t i = 0; i < r.num_rows(); ++i) {
      std::string row;
      for (const auto& v : r.row(i)) row += v.ToString() + "|";
      rows.push_back(row);
    }
    std::sort(rows.begin(), rows.end());
    return rows;
  };
  EXPECT_EQ(render(*hash.relation), render(*loop));
}

TEST(JoinTest, NameCollisionsGetSuffix) {
  auto result = Join(People(), People(), "id = id_2");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->relation->schema()->HasColumn("name_2"));
  EXPECT_EQ(result->relation->num_rows(), 4u);  // self equi-join on key
}

TEST(JoinTest, NullsNeverJoin) {
  auto left = MakeRelation({Column{"k", DataType::kInt}},
                           {{Value::Null()}, {Value::Int(1)}})
                  .value();
  auto right = MakeRelation({Column{"j", DataType::kInt}},
                            {{Value::Null()}, {Value::Int(1)}})
                   .value();
  auto result = Join(left, right, "k = j");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->relation->num_rows(), 1u);
}

TEST(SortTest, AscendingAndDescending) {
  auto asc = Sort(People(), "score").value();
  EXPECT_DOUBLE_EQ(asc->at(0, 3).float_value(), 0.5);
  EXPECT_DOUBLE_EQ(asc->at(3, 3).float_value(), 3.5);
  auto desc = Sort(People(), "score", /*ascending=*/false).value();
  EXPECT_DOUBLE_EQ(desc->at(0, 3).float_value(), 3.5);
}

TEST(SortTest, NullsSortFirst) {
  auto sorted = Sort(People(), "age").value();
  EXPECT_TRUE(sorted->at(0, 2).is_null());
}

TEST(SortTest, StableOnTies) {
  auto relation = MakeRelation({Column{"k", DataType::kInt},
                                Column{"tag", DataType::kString}},
                               {{Value::Int(1), Value::String("first")},
                                {Value::Int(1), Value::String("second")}})
                      .value();
  auto sorted = Sort(relation, "k").value();
  EXPECT_EQ(sorted->at(0, 1).string_value(), "first");
  EXPECT_EQ(sorted->at(1, 1).string_value(), "second");
}

TEST(LimitTest, TruncatesAndClamps) {
  EXPECT_EQ(Limit(People(), 2).value()->num_rows(), 2u);
  EXPECT_EQ(Limit(People(), 0).value()->num_rows(), 0u);
  EXPECT_EQ(Limit(People(), 100).value()->num_rows(), 4u);
}

class SampleSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(SampleSweepTest, RetainedFractionTracksProbability) {
  RelationBuilder builder(People()->schema());
  constexpr int kRows = 8000;
  for (int i = 0; i < kRows; ++i) {
    builder.AddRowUnchecked(People()->row(static_cast<size_t>(i % 4)));
  }
  auto sampled = Sample(builder.Build(), GetParam(), 1234).value();
  EXPECT_NEAR(static_cast<double>(sampled->num_rows()) / kRows, GetParam(), 0.025);
}

INSTANTIATE_TEST_SUITE_P(Probabilities, SampleSweepTest,
                         ::testing::Values(0.05, 0.1, 0.25, 0.5, 0.75, 0.9));

}  // namespace
}  // namespace tioga2::db
