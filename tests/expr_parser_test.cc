#include <gtest/gtest.h>

#include "expr/lexer.h"
#include "expr/parser.h"

namespace tioga2::expr {
namespace {

TEST(LexerTest, TokenizesOperators) {
  auto tokens = Tokenize("+ - * / % = != < <= > >= ( ) ,").value();
  std::vector<TokenKind> kinds;
  for (const Token& token : tokens) kinds.push_back(token.kind);
  EXPECT_EQ(kinds, (std::vector<TokenKind>{
                       TokenKind::kPlus, TokenKind::kMinus, TokenKind::kStar,
                       TokenKind::kSlash, TokenKind::kPercent, TokenKind::kEq,
                       TokenKind::kNe, TokenKind::kLt, TokenKind::kLe, TokenKind::kGt,
                       TokenKind::kGe, TokenKind::kLParen, TokenKind::kRParen,
                       TokenKind::kComma, TokenKind::kEnd}));
}

TEST(LexerTest, AlternativeOperatorSpellings) {
  auto tokens = Tokenize("== <>").value();
  EXPECT_EQ(tokens[0].kind, TokenKind::kEq);
  EXPECT_EQ(tokens[1].kind, TokenKind::kNe);
}

TEST(LexerTest, KeywordsVsIdentifiers) {
  auto tokens = Tokenize("true false null and or not andx").value();
  EXPECT_EQ(tokens[0].kind, TokenKind::kTrue);
  EXPECT_EQ(tokens[1].kind, TokenKind::kFalse);
  EXPECT_EQ(tokens[2].kind, TokenKind::kNull);
  EXPECT_EQ(tokens[3].kind, TokenKind::kAnd);
  EXPECT_EQ(tokens[4].kind, TokenKind::kOr);
  EXPECT_EQ(tokens[5].kind, TokenKind::kNot);
  EXPECT_EQ(tokens[6].kind, TokenKind::kIdentifier);
  EXPECT_EQ(tokens[6].text, "andx");
}

TEST(LexerTest, NumberForms) {
  auto tokens = Tokenize("42 3.5 .25 1e3 2E-2 7.").value();
  EXPECT_EQ(tokens[0].kind, TokenKind::kIntLiteral);
  EXPECT_EQ(tokens[0].int_value, 42);
  EXPECT_EQ(tokens[1].kind, TokenKind::kFloatLiteral);
  EXPECT_DOUBLE_EQ(tokens[1].float_value, 3.5);
  EXPECT_DOUBLE_EQ(tokens[2].float_value, 0.25);
  EXPECT_DOUBLE_EQ(tokens[3].float_value, 1000.0);
  EXPECT_DOUBLE_EQ(tokens[4].float_value, 0.02);
  EXPECT_DOUBLE_EQ(tokens[5].float_value, 7.0);
}

TEST(LexerTest, StringEscapes) {
  auto tokens = Tokenize("\"say \\\"hi\\\"\\n\"").value();
  EXPECT_EQ(tokens[0].kind, TokenKind::kStringLiteral);
  EXPECT_EQ(tokens[0].text, "say \"hi\"\n");
}

TEST(LexerTest, Errors) {
  EXPECT_TRUE(Tokenize("\"unterminated").status().IsParseError());
  EXPECT_TRUE(Tokenize("a ! b").status().IsParseError());
  EXPECT_TRUE(Tokenize("a @ b").status().IsParseError());
  EXPECT_TRUE(Tokenize("\"bad \\q escape\"").status().IsParseError());
}

TEST(LexerTest, PositionsRecorded) {
  auto tokens = Tokenize("ab + cd").value();
  EXPECT_EQ(tokens[0].position, 0u);
  EXPECT_EQ(tokens[1].position, 3u);
  EXPECT_EQ(tokens[2].position, 5u);
}

std::string Reparse(const std::string& source) {
  auto ast = ParseExpr(source);
  EXPECT_TRUE(ast.ok()) << source << ": " << ast.status().ToString();
  return ast.ok() ? ExprToString(**ast) : "<error>";
}

TEST(ParserTest, PrecedenceMulOverAdd) {
  EXPECT_EQ(Reparse("1 + 2 * 3"), "(1 + (2 * 3))");
  EXPECT_EQ(Reparse("(1 + 2) * 3"), "((1 + 2) * 3)");
}

TEST(ParserTest, ComparisonBindsLooserThanArithmetic) {
  EXPECT_EQ(Reparse("a + 1 < b * 2"), "((a + 1) < (b * 2))");
}

TEST(ParserTest, BooleanPrecedence) {
  EXPECT_EQ(Reparse("a or b and c"), "(a or (b and c))");
  EXPECT_EQ(Reparse("not a and b"), "((not a) and b)");
  EXPECT_EQ(Reparse("not (a and b)"), "(not (a and b))");
}

TEST(ParserTest, UnaryMinus) {
  EXPECT_EQ(Reparse("-x + 1"), "((-x) + 1)");
  EXPECT_EQ(Reparse("--3"), "(-(-3))");
  EXPECT_EQ(Reparse("2 * -3"), "(2 * (-3))");
}

TEST(ParserTest, CallsWithArguments) {
  EXPECT_EQ(Reparse("min(a, b + 1)"), "min(a, (b + 1))");
  EXPECT_EQ(Reparse("point()"), "point()");
  EXPECT_EQ(Reparse("if(a > 0, 1, 2)"), "if((a > 0), 1, 2)");
}

TEST(ParserTest, LiteralsRoundTrip) {
  EXPECT_EQ(Reparse("true"), "true");
  EXPECT_EQ(Reparse("null"), "null");
  EXPECT_EQ(Reparse("\"text\""), "\"text\"");
  EXPECT_EQ(Reparse("2.5"), "2.5");
}

TEST(ParserTest, Errors) {
  EXPECT_TRUE(ParseExpr("").status().IsParseError());
  EXPECT_TRUE(ParseExpr("1 +").status().IsParseError());
  EXPECT_TRUE(ParseExpr("(1").status().IsParseError());
  EXPECT_TRUE(ParseExpr("f(1,").status().IsParseError());
  EXPECT_TRUE(ParseExpr("f(1 2)").status().IsParseError());
  EXPECT_TRUE(ParseExpr("1 2").status().IsParseError());  // trailing garbage
}

TEST(ParserTest, ChainedComparisonRejected) {
  // Comparison is non-associative: a < b < c is a syntax error (the parser
  // stops after one comparison and the rest fails the end-of-input check).
  EXPECT_TRUE(ParseExpr("a < b < c").status().IsParseError());
}

TEST(ParserTest, CollectAttributeRefs) {
  auto ast = ParseExpr("a + min(b, c * a)").value();
  std::vector<std::string> refs = CollectAttributeRefs(*ast);
  EXPECT_EQ(refs, (std::vector<std::string>{"a", "b", "c", "a"}));
}

TEST(ParserTest, CloneIsDeepAndEqual) {
  auto ast = ParseExpr("if(a > 0, a * 2, -a)").value();
  auto clone = CloneExpr(*ast);
  EXPECT_EQ(ExprToString(*ast), ExprToString(*clone));
  // Mutating the clone must not affect the original.
  clone->children[0]->children[0]->name = "mutated";
  EXPECT_NE(ExprToString(*ast), ExprToString(*clone));
}

class ParserRoundTripTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ParserRoundTripTest, PrintedFormReparsesToSameTree) {
  auto first = ParseExpr(GetParam());
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  std::string printed = ExprToString(**first);
  auto second = ParseExpr(printed);
  ASSERT_TRUE(second.ok()) << printed;
  EXPECT_EQ(printed, ExprToString(**second));
}

INSTANTIATE_TEST_SUITE_P(
    Expressions, ParserRoundTripTest,
    ::testing::Values("1 + 2 * 3 - 4 / 5", "a and not b or c", "x % 2 = 0",
                      "substr(name, 0, 3)", "circle(2.5, \"#ff0000\", true)",
                      "if(isnull(v), 0.0, v * 1.5)", "-(-x)",
                      "date(\"1995-01-01\") + 30", "a <= b", "a != b",
                      "offset(text(name, 10), 1, -2)"));

}  // namespace
}  // namespace tioga2::expr
