// Tests for Encapsulate (§4.1): user-defined boxes from program regions,
// holes as macro parameters, and nested evaluation.

#include <gtest/gtest.h>

#include "boxes/relational_boxes.h"
#include "dataflow/encapsulate.h"
#include "dataflow/engine.h"
#include "db/relation.h"

namespace tioga2::dataflow {
namespace {

using boxes::ProjectBox;
using boxes::RestrictBox;
using boxes::SampleBox;
using boxes::TableBox;
using db::Column;
using types::DataType;
using types::Value;

class EncapsulateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto table = db::MakeRelation({Column{"v", DataType::kInt}},
                                  {{Value::Int(1)}, {Value::Int(2)}, {Value::Int(3)},
                                   {Value::Int(4)}, {Value::Int(5)}})
                     .value();
    ASSERT_TRUE(catalog_.RegisterTable("T", table).ok());
  }

  Result<size_t> RowsOf(Engine* engine, const Graph& graph, const std::string& box,
                        size_t port = 0) {
    TIOGA2_ASSIGN_OR_RETURN(BoxValue value, engine->Evaluate(graph, box, port));
    TIOGA2_ASSIGN_OR_RETURN(display::Displayable displayable, AsDisplayable(value));
    TIOGA2_ASSIGN_OR_RETURN(display::DisplayRelation relation,
                            display::AsRelation(displayable));
    return relation.num_rows();
  }

  db::Catalog catalog_;
};

TEST_F(EncapsulateTest, RegionBecomesBoxWithCutEdges) {
  // T -> r1 -> r2 -> r3; encapsulate {r1, r2}. The cut edges become one
  // input (from T) and one output (to r3).
  Graph graph;
  std::string table = graph.AddBox(std::make_unique<TableBox>("T")).value();
  std::string r1 = graph.AddBox(std::make_unique<RestrictBox>("v > 1")).value();
  std::string r2 = graph.AddBox(std::make_unique<RestrictBox>("v > 2")).value();
  std::string r3 = graph.AddBox(std::make_unique<RestrictBox>("v > 3")).value();
  ASSERT_TRUE(graph.Connect(table, 0, r1, 0).ok());
  ASSERT_TRUE(graph.Connect(r1, 0, r2, 0).ok());
  ASSERT_TRUE(graph.Connect(r2, 0, r3, 0).ok());

  auto encap = EncapsulateSubgraph(graph, {r1, r2}, {}, "double_filter");
  ASSERT_TRUE(encap.ok()) << encap.status().ToString();
  EXPECT_EQ((*encap)->InputTypes().size(), 1u);
  EXPECT_EQ((*encap)->OutputTypes().size(), 1u);
  EXPECT_EQ((*encap)->name(), "double_filter");
  EXPECT_TRUE((*encap)->HoleIds().empty());

  // Use the new box in a fresh program: T -> encap -> (rows).
  Graph program;
  std::string src = program.AddBox(std::make_unique<TableBox>("T")).value();
  std::string composite = program.AddBox((*encap)->Clone()).value();
  ASSERT_TRUE(program.Connect(src, 0, composite, 0).ok());
  Engine engine(&catalog_);
  EXPECT_EQ(RowsOf(&engine, program, composite).value(), 3u);  // v in {3,4,5}
}

TEST_F(EncapsulateTest, RegionWithSourceInsideNeedsNoInputs) {
  Graph graph;
  std::string table = graph.AddBox(std::make_unique<TableBox>("T")).value();
  std::string r1 = graph.AddBox(std::make_unique<RestrictBox>("v > 3")).value();
  ASSERT_TRUE(graph.Connect(table, 0, r1, 0).ok());
  auto encap = EncapsulateSubgraph(graph, {table, r1}, {}, "canned_query");
  ASSERT_TRUE(encap.ok()) << encap.status().ToString();
  EXPECT_TRUE((*encap)->InputTypes().empty());
  Graph program;
  std::string box = program.AddBox((*encap)->Clone()).value();
  Engine engine(&catalog_);
  EXPECT_EQ(RowsOf(&engine, program, box).value(), 2u);
}

TEST_F(EncapsulateTest, HolesActAsMacroParameters) {
  // T -> hole -> r2; the hole is filled at instantiation (§4.1 "higher-order
  // function").
  Graph graph;
  std::string table = graph.AddBox(std::make_unique<TableBox>("T")).value();
  std::string hole = graph.AddBox(std::make_unique<RestrictBox>("v > 0")).value();
  std::string r2 = graph.AddBox(std::make_unique<RestrictBox>("v < 5")).value();
  ASSERT_TRUE(graph.Connect(table, 0, hole, 0).ok());
  ASSERT_TRUE(graph.Connect(hole, 0, r2, 0).ok());

  auto encap = EncapsulateSubgraph(graph, {hole, r2}, {hole}, "filter_then_cap");
  ASSERT_TRUE(encap.ok()) << encap.status().ToString();
  EXPECT_EQ((*encap)->HoleIds().size(), 1u);

  // Firing with an unfilled hole fails.
  Graph bad;
  std::string src_bad = bad.AddBox(std::make_unique<TableBox>("T")).value();
  std::string unfilled = bad.AddBox((*encap)->Clone()).value();
  ASSERT_TRUE(bad.Connect(src_bad, 0, unfilled, 0).ok());
  Engine bad_engine(&catalog_);
  EXPECT_TRUE(
      bad_engine.Evaluate(bad, unfilled, 0).status().IsFailedPrecondition());

  // Fill the hole with "v > 2" -> {3, 4}.
  std::vector<BoxPtr> fillers;
  fillers.push_back(std::make_unique<RestrictBox>("v > 2"));
  auto filled = (*encap)->FillHoles(std::move(fillers));
  ASSERT_TRUE(filled.ok()) << filled.status().ToString();
  Graph program;
  std::string src = program.AddBox(std::make_unique<TableBox>("T")).value();
  std::string box = program.AddBox(std::move(*filled)).value();
  ASSERT_TRUE(program.Connect(src, 0, box, 0).ok());
  Engine engine(&catalog_);
  EXPECT_EQ(RowsOf(&engine, program, box).value(), 2u);
}

TEST_F(EncapsulateTest, FillHolesValidation) {
  Graph graph;
  std::string hole = graph.AddBox(std::make_unique<RestrictBox>("v > 0")).value();
  auto encap = EncapsulateSubgraph(graph, {hole}, {hole}, "only_hole");
  ASSERT_TRUE(encap.ok());
  // Wrong filler count.
  EXPECT_TRUE((*encap)->FillHoles({}).status().IsInvalidArgument());
  // Wrong signature: Table (0 inputs) cannot fill an R -> R hole.
  std::vector<BoxPtr> wrong;
  wrong.push_back(std::make_unique<TableBox>("T"));
  EXPECT_TRUE((*encap)->FillHoles(std::move(wrong)).status().IsTypeError());
}

TEST_F(EncapsulateTest, RegionValidation) {
  Graph graph;
  std::string r1 = graph.AddBox(std::make_unique<RestrictBox>("v > 0")).value();
  EXPECT_TRUE(EncapsulateSubgraph(graph, {"missing"}, {}, "x").status().IsNotFound());
  EXPECT_TRUE(EncapsulateSubgraph(graph, {r1}, {"missing"}, "x")
                  .status()
                  .IsInvalidArgument());
  // A region exporting no outputs is rejected (a lone Viewer, say).
  Graph sink_graph;
  std::string viewer =
      sink_graph.AddBox(std::make_unique<boxes::ViewerBox>("c")).value();
  EXPECT_TRUE(EncapsulateSubgraph(sink_graph, {viewer}, {}, "x")
                  .status()
                  .IsInvalidArgument());
}

TEST_F(EncapsulateTest, NestedEncapsulation) {
  // Encapsulate a box that itself contains an encapsulated box. Only edges
  // cut by the region boundary become inputs, so each region needs a feeder.
  Graph graph;
  std::string feeder = graph.AddBox(std::make_unique<TableBox>("T")).value();
  std::string r1 = graph.AddBox(std::make_unique<RestrictBox>("v > 1")).value();
  ASSERT_TRUE(graph.Connect(feeder, 0, r1, 0).ok());
  auto inner = EncapsulateSubgraph(graph, {r1}, {}, "inner");
  ASSERT_TRUE(inner.ok());
  ASSERT_EQ((*inner)->InputTypes().size(), 1u);

  Graph outer_graph;
  std::string outer_feeder = outer_graph.AddBox(std::make_unique<TableBox>("T")).value();
  std::string inner_box = outer_graph.AddBox((*inner)->Clone()).value();
  std::string r2 = outer_graph.AddBox(std::make_unique<RestrictBox>("v > 2")).value();
  ASSERT_TRUE(outer_graph.Connect(outer_feeder, 0, inner_box, 0).ok());
  ASSERT_TRUE(outer_graph.Connect(inner_box, 0, r2, 0).ok());
  auto outer = EncapsulateSubgraph(outer_graph, {inner_box, r2}, {}, "outer");
  ASSERT_TRUE(outer.ok()) << outer.status().ToString();
  ASSERT_EQ((*outer)->InputTypes().size(), 1u);

  Graph program;
  std::string src = program.AddBox(std::make_unique<TableBox>("T")).value();
  std::string box = program.AddBox((*outer)->Clone()).value();
  ASSERT_TRUE(program.Connect(src, 0, box, 0).ok());
  Engine engine(&catalog_);
  EXPECT_EQ(RowsOf(&engine, program, box).value(), 3u);  // v in {3,4,5}
}

TEST_F(EncapsulateTest, InputStubOutsideEncapsulationFails) {
  Graph graph;
  std::string stub =
      graph.AddBox(std::make_unique<InputStub>(0, PortType::Relation())).value();
  Engine engine(&catalog_);
  EXPECT_TRUE(engine.Evaluate(graph, stub, 0).status().IsFailedPrecondition());
}

}  // namespace
}  // namespace tioga2::dataflow
