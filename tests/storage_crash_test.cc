// Crash-recovery property test: run randomized edit traces against a
// StorageEngine whose writes die mid-stream at a random byte (FaultFs), then
// recover from whatever prefix reached "disk" and assert the recovered
// catalog is byte-identical — fingerprints, versions, programs, floors — to
// an uncrashed oracle replaying the same trace up to the recovered LSN.
// Covers cuts inside WAL frames, inside snapshot sections, and between
// files; plus a deterministic truncate-at-every-offset sweep over a small
// log. Runs under ASan via scripts/check.sh.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <random>
#include <string>
#include <vector>

#include "storage/fault_fs.h"
#include "storage/format.h"
#include "storage/fs.h"
#include "storage/storage_engine.h"
#include "storage/wal.h"
#include "types/value.h"

namespace tioga2::storage {
namespace {

using types::Value;

std::string TestDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "tioga2_crash_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

db::RelationPtr BaseRelation() {
  auto relation = db::MakeRelation(
      {db::Column{"id", types::DataType::kInt},
       db::Column{"x", types::DataType::kFloat},
       db::Column{"tag", types::DataType::kString}},
      {{Value::Int(0), Value::Float(0.5), Value::String("a")},
       {Value::Int(1), Value::Float(1.5), Value::String("b")},
       {Value::Int(2), Value::Float(2.5), Value::Null()},
       {Value::Int(3), Value::Float(std::nan("")), Value::String("d")}});
  EXPECT_TRUE(relation.ok());
  return relation.value();
}

/// One atomic trace action — exactly one catalog call, hence exactly one
/// WAL record. That one-to-one mapping is what lets the property test turn
/// the recovered LSN into an exact oracle prefix: recovery always lands on
/// a whole number of actions. Drop and recreate are therefore separate
/// actions (a cut between them recovers a catalog with "t" missing, and the
/// oracle at that prefix agrees).
struct Step {
  enum Kind { kUpdate, kReplace, kDrop, kRecreate, kSaveProgram } kind = kUpdate;
  size_t row = 0;
  int64_t delta = 0;
};

std::vector<Step> PlanTrace(std::mt19937_64* rng, size_t steps) {
  std::vector<Step> trace;
  while (trace.size() < steps) {
    Step step;
    uint64_t pick = (*rng)() % 10;
    if (pick < 6) {
      step.kind = Step::kUpdate;
      step.row = (*rng)() % 4;
      step.delta = static_cast<int64_t>((*rng)() % 100) + 1;
      trace.push_back(step);
    } else if (pick < 8) {
      step.kind = Step::kReplace;
      step.delta = static_cast<int64_t>((*rng)() % 100) + 1;
      trace.push_back(step);
    } else if (pick < 9) {
      trace.push_back(Step{Step::kDrop, 0, 0});
      trace.push_back(Step{Step::kRecreate, 0, 0});
    } else {
      step.kind = Step::kSaveProgram;
      step.delta = static_cast<int64_t>(trace.size());
      trace.push_back(step);
    }
  }
  return trace;
}

Status ApplyStep(db::Catalog* catalog, const Step& step) {
  switch (step.kind) {
    case Step::kUpdate: {
      TIOGA2_ASSIGN_OR_RETURN(db::RelationPtr rel, catalog->GetTable("t"));
      db::Tuple tuple = rel->row(step.row % rel->num_rows());
      tuple[0] = Value::Int(tuple[0].int_value() + step.delta);
      tuple[1] = Value::Float(tuple[1].float_value() + 0.25);
      return catalog->UpdateRow("t", step.row % rel->num_rows(), tuple).status();
    }
    case Step::kReplace: {
      TIOGA2_ASSIGN_OR_RETURN(db::RelationPtr rel, catalog->GetTable("t"));
      db::Tuple tuple = rel->row(0);
      tuple[0] = Value::Int(step.delta * 1000);
      TIOGA2_ASSIGN_OR_RETURN(db::RelationPtr next,
                              db::WithRowReplaced(rel, 0, std::move(tuple)));
      return catalog->ReplaceTable("t", next);
    }
    case Step::kDrop:
      return catalog->DropTable("t");
    case Step::kRecreate:
      return catalog->RegisterTable("t", BaseRelation());
    case Step::kSaveProgram:
      catalog->SaveProgram("p", "program-v" + std::to_string(step.delta));
      return Status::OK();
  }
  return Status::OK();
}

/// Everything recovery promises to restore, in comparable form.
struct CatalogImage {
  std::map<std::string, uint64_t> fingerprints;
  std::map<std::string, uint64_t> versions;
  std::map<std::string, std::string> programs;
  std::map<std::string, uint64_t> floors;

  bool operator==(const CatalogImage& other) const {
    return fingerprints == other.fingerprints && versions == other.versions &&
           programs == other.programs && floors == other.floors;
  }
};

CatalogImage ImageOf(const db::Catalog& catalog) {
  CatalogImage image;
  for (const std::string& name : catalog.ListTables()) {
    image.fingerprints[name] =
        FingerprintRelation(*catalog.GetTable(name).value()).value();
    image.versions[name] = catalog.TableVersion(name).value();
  }
  for (const std::string& name : catalog.ListPrograms()) {
    image.programs[name] = catalog.GetProgram(name).value();
  }
  image.floors = catalog.version_floors();
  return image;
}

/// The oracle: a never-crashed engine-free catalog with the first
/// `prefix_len` steps applied. Recovery must land exactly here.
CatalogImage OracleImage(const std::vector<Step>& trace, size_t prefix_len) {
  db::Catalog catalog;
  EXPECT_TRUE(catalog.RegisterTable("t", BaseRelation()).ok());
  for (size_t i = 0; i < prefix_len; ++i) {
    EXPECT_TRUE(ApplyStep(&catalog, trace[i]).ok()) << "oracle step " << i;
  }
  return ImageOf(catalog);
}

/// Runs `trace` against an engine whose filesystem dies after `byte_budget`
/// bytes, "crashes" (abandons the engine without Close), recovers with the
/// real Fs, and checks the recovered state equals the oracle at the
/// recovered prefix. `checkpoint_every` sprinkles snapshots into the trace
/// so cuts land inside snapshot writes too.
void RunCrashCase(const std::string& tag, uint64_t seed, uint64_t byte_budget,
                  size_t steps, size_t checkpoint_every) {
  SCOPED_TRACE(tag + " seed=" + std::to_string(seed) +
               " budget=" + std::to_string(byte_budget));
  const std::string dir = TestDir(tag + "_" + std::to_string(seed));
  std::mt19937_64 rng(seed);
  std::vector<Step> trace = PlanTrace(&rng, steps);

  FaultFs fault(Fs::Default(), byte_budget);
  // lsn_after[i] = the engine's last LSN after step i was appended. Recovery
  // replays a prefix of the log; this maps the recovered LSN back to the
  // number of fully-applied steps.
  std::vector<uint64_t> lsn_after;
  uint64_t base_lsn = 0;
  {
    db::Catalog catalog;
    ASSERT_TRUE(catalog.RegisterTable("t", BaseRelation()).ok());
    StorageOptions options;
    options.dir = dir;
    options.fs = &fault;
    options.wal.durability = Durability::kNone;
    options.wal.rotate_bytes = 2048;  // cuts land near segment boundaries too
    auto engine = StorageEngine::Open(&catalog, options);
    ASSERT_TRUE(engine.ok()) << engine.status().message();
    base_lsn = (*engine)->last_lsn();  // the bootstrap kRegister record
    for (size_t i = 0; i < trace.size(); ++i) {
      ASSERT_TRUE(ApplyStep(&catalog, trace[i]).ok()) << "step " << i;
      lsn_after.push_back((*engine)->last_lsn());
      if (checkpoint_every != 0 && (i + 1) % checkpoint_every == 0) {
        // Checkpoints may fail once the budget is gone — that IS the crash.
        (void)(*engine)->Checkpoint();
      }
      // Push queued WAL bytes through the (faulty) files so the budget is
      // consumed in trace order; ignore errors, the crash is the point.
      (void)(*engine)->Sync();
    }
    // No Close(): the process "dies" here. The engine object is destroyed,
    // which tears down threads, but the FaultFs already swallowed whatever
    // was past the budget — exactly the bytes a power loss would lose.
    (void)(*engine)->Close();
    catalog.SetListener(nullptr);
  }

  db::Catalog recovered;
  StorageOptions options;
  options.dir = dir;
  RecoveryInfo info;
  auto engine = StorageEngine::Open(&recovered, options, &info);
  ASSERT_TRUE(engine.ok()) << engine.status().message();
  // A prefix cut must never read as corruption — only as a torn tail.
  EXPECT_FALSE(info.wal_corrupt);

  if (info.last_lsn < base_lsn) {
    // The cut tore even the bootstrap register: recovery is an empty catalog.
    EXPECT_EQ(ImageOf(recovered), CatalogImage{});
  } else {
    // Map the recovered LSN to the step prefix it covers. Each step is one
    // record, so last_lsn >= lsn_after[i] means step i fully landed.
    size_t prefix = 0;
    while (prefix < lsn_after.size() && info.last_lsn >= lsn_after[prefix]) {
      ++prefix;
    }
    EXPECT_EQ(ImageOf(recovered), OracleImage(trace, prefix))
        << "recovered lsn=" << info.last_lsn << " prefix=" << prefix << "/"
        << trace.size() << " snapshots_skipped=" << info.snapshots_skipped
        << " replayed=" << info.records_replayed;
  }
  ASSERT_TRUE((*engine)->Close().ok());
}

TEST(StorageCrashTest, RandomCrashOffsetsWalOnly) {
  std::mt19937_64 seeds(0xc0ffee);
  for (int round = 0; round < 12; ++round) {
    uint64_t seed = seeds();
    uint64_t budget = 200 + seeds() % 6000;
    RunCrashCase("wal", seed, budget, 30, /*checkpoint_every=*/0);
  }
}

TEST(StorageCrashTest, RandomCrashOffsetsWithSnapshots) {
  std::mt19937_64 seeds(0xfeedbeef);
  for (int round = 0; round < 12; ++round) {
    uint64_t seed = seeds();
    uint64_t budget = 500 + seeds() % 12000;
    RunCrashCase("snap", seed, budget, 30, /*checkpoint_every=*/7);
  }
}

TEST(StorageCrashTest, GenerousBudgetLosesNothing) {
  // With a budget the trace cannot exhaust, recovery must land on the full
  // trace (the degenerate, but load-bearing, end of the property).
  RunCrashCase("full", 0x5eed, 10u << 20, 25, /*checkpoint_every=*/5);
}

// Deterministic sweep: truncate a small intact log at EVERY byte offset and
// recover. Complements the random cuts with exhaustive coverage of one log.
TEST(StorageCrashTest, TruncateSweepRecoversEveryPrefix) {
  const std::string dir = TestDir("sweep_build");
  std::mt19937_64 rng(0x517e9);
  std::vector<Step> trace = PlanTrace(&rng, 8);
  std::vector<uint64_t> lsn_after;
  {
    db::Catalog catalog;
    ASSERT_TRUE(catalog.RegisterTable("t", BaseRelation()).ok());
    StorageOptions options;
    options.dir = dir;
    options.wal.durability = Durability::kNone;
    auto engine = StorageEngine::Open(&catalog, options);
    ASSERT_TRUE(engine.ok());
    for (const Step& step : trace) {
      ASSERT_TRUE(ApplyStep(&catalog, step).ok());
      lsn_after.push_back((*engine)->last_lsn());
    }
    ASSERT_TRUE((*engine)->Close().ok());
    catalog.SetListener(nullptr);
  }
  auto segments = Wal::ListSegments(Fs::Default(), dir);
  ASSERT_TRUE(segments.ok());
  ASSERT_EQ(segments->size(), 1u);
  const std::string segment_path = dir + "/" + segments->front();
  auto data = Fs::Default()->ReadFile(segment_path);
  ASSERT_TRUE(data.ok());

  const std::string sweep_dir = TestDir("sweep_run");
  for (size_t cut = 0; cut <= data->size(); cut += 7) {  // every 7th offset
    std::filesystem::remove_all(sweep_dir);
    std::filesystem::create_directories(sweep_dir);
    std::ofstream(sweep_dir + "/" + segments->front(),
                  std::ios::binary | std::ios::trunc)
        .write(data->data(), static_cast<std::streamsize>(cut));
    db::Catalog recovered;
    StorageOptions options;
    options.dir = sweep_dir;
    RecoveryInfo info;
    auto engine = StorageEngine::Open(&recovered, options, &info);
    ASSERT_TRUE(engine.ok()) << "cut=" << cut << ": " << engine.status().message();
    EXPECT_FALSE(info.wal_corrupt) << "cut=" << cut;
    if (info.last_lsn < 1) {  // even the bootstrap register was torn
      EXPECT_EQ(ImageOf(recovered), CatalogImage{}) << "cut=" << cut;
    } else {
      size_t prefix = 0;
      while (prefix < lsn_after.size() && info.last_lsn >= lsn_after[prefix]) {
        ++prefix;
      }
      EXPECT_EQ(ImageOf(recovered), OracleImage(trace, prefix)) << "cut=" << cut;
    }
    ASSERT_TRUE((*engine)->Close().ok());
    recovered.SetListener(nullptr);
  }
}

}  // namespace
}  // namespace tioga2::storage
