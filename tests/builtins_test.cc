// Tests for the builtin function library: math, strings, dates, colors, and
// the drawable constructors of §5.1.

#include <gtest/gtest.h>

#include <cmath>

#include "db/relation.h"
#include "expr/builtins.h"
#include "expr/expr.h"

namespace tioga2::expr {
namespace {

using types::DataType;
using types::Value;

class BuiltinsTest : public ::testing::Test {
 protected:
  BuiltinsTest()
      : env_(MakeSchemaTypeEnv({{"n", DataType::kInt}, {"x", DataType::kFloat},
                                {"s", DataType::kString}})),
        row_{Value::Int(-4), Value::Float(6.25), Value::String("Tioga")},
        accessor_(row_) {}

  Result<Value> Eval(const std::string& source) {
    TIOGA2_ASSIGN_OR_RETURN(CompiledExpr compiled, CompiledExpr::Compile(source, env_));
    return compiled.Eval(accessor_);
  }

  TypeEnv env_;
  db::Tuple row_;
  TupleAccessor accessor_;
};

TEST_F(BuiltinsTest, MathBasics) {
  EXPECT_EQ(Eval("abs(n)")->int_value(), 4);
  EXPECT_DOUBLE_EQ(Eval("abs(-2.5)")->float_value(), 2.5);
  EXPECT_EQ(Eval("min(3, 7)")->int_value(), 3);
  EXPECT_EQ(Eval("max(3, 7)")->int_value(), 7);
  EXPECT_DOUBLE_EQ(Eval("min(3, 7.5)")->float_value(), 3.0);
  EXPECT_EQ(Eval("floor(2.7)")->int_value(), 2);
  EXPECT_EQ(Eval("ceil(2.2)")->int_value(), 3);
  EXPECT_EQ(Eval("round(2.5)")->int_value(), 3);
  EXPECT_EQ(Eval("floor(-2.5)")->int_value(), -3);
  EXPECT_DOUBLE_EQ(Eval("sqrt(x)")->float_value(), 2.5);
  EXPECT_DOUBLE_EQ(Eval("pow(2, 10)")->float_value(), 1024.0);
  EXPECT_NEAR(Eval("exp(1)")->float_value(), 2.718281828, 1e-6);
  EXPECT_NEAR(Eval("ln(exp(2))")->float_value(), 2.0, 1e-9);
  EXPECT_NEAR(Eval("log10(1000)")->float_value(), 3.0, 1e-9);
  EXPECT_NEAR(Eval("sin(0)")->float_value(), 0.0, 1e-12);
  EXPECT_NEAR(Eval("cos(0)")->float_value(), 1.0, 1e-12);
  EXPECT_NEAR(Eval("atan2(1, 1)")->float_value(), M_PI / 4, 1e-9);
}

TEST_F(BuiltinsTest, ClampSignTrunc) {
  EXPECT_DOUBLE_EQ(Eval("clamp(5, 0, 3)")->float_value(), 3.0);
  EXPECT_DOUBLE_EQ(Eval("clamp(-1, 0, 3)")->float_value(), 0.0);
  EXPECT_DOUBLE_EQ(Eval("clamp(2, 0, 3)")->float_value(), 2.0);
  EXPECT_DOUBLE_EQ(Eval("clamp(2, 3, 0)")->float_value(), 2.0);  // bounds swap
  EXPECT_EQ(Eval("sign(-7)")->int_value(), -1);
  EXPECT_EQ(Eval("sign(0)")->int_value(), 0);
  EXPECT_EQ(Eval("sign(2.5)")->int_value(), 1);
  EXPECT_EQ(Eval("trunc(2.9)")->int_value(), 2);
  EXPECT_EQ(Eval("trunc(-2.9)")->int_value(), -2);  // toward zero, unlike floor
}

TEST_F(BuiltinsTest, MathDomainErrorsAreNull) {
  EXPECT_TRUE(Eval("sqrt(-1)")->is_null());
  EXPECT_TRUE(Eval("ln(0)")->is_null());
  EXPECT_TRUE(Eval("ln(-3)")->is_null());
  EXPECT_TRUE(Eval("log10(0)")->is_null());
  EXPECT_TRUE(Eval("pow(0, -1)")->is_null());  // inf -> null
}

TEST_F(BuiltinsTest, NumericPromotionRule) {
  // abs/min/max return int only when all arguments are int.
  EXPECT_TRUE(Eval("abs(n)")->is_int());
  EXPECT_TRUE(Eval("abs(x)")->is_float());
  EXPECT_TRUE(Eval("max(1, 2)")->is_int());
  EXPECT_TRUE(Eval("max(1, 2.0)")->is_float());
}

TEST_F(BuiltinsTest, Conversions) {
  EXPECT_EQ(Eval("int(2.9)")->int_value(), 2);
  EXPECT_EQ(Eval("int(\"42\")")->int_value(), 42);
  EXPECT_DOUBLE_EQ(Eval("float(7)")->float_value(), 7.0);
  EXPECT_DOUBLE_EQ(Eval("float(\"2.5\")")->float_value(), 2.5);
  EXPECT_EQ(Eval("str(42)")->string_value(), "42");
  EXPECT_EQ(Eval("str(s)")->string_value(), "Tioga");  // unquoted
  EXPECT_EQ(Eval("str(true)")->string_value(), "true");
  EXPECT_TRUE(Eval("int(\"abc\")").status().IsParseError());
}

TEST_F(BuiltinsTest, Strings) {
  EXPECT_EQ(Eval("len(s)")->int_value(), 5);
  EXPECT_EQ(Eval("len(\"\")")->int_value(), 0);
  EXPECT_EQ(Eval("substr(s, 1, 3)")->string_value(), "iog");
  EXPECT_EQ(Eval("substr(s, 0, 99)")->string_value(), "Tioga");
  EXPECT_EQ(Eval("substr(s, 99, 2)")->string_value(), "");
  EXPECT_EQ(Eval("substr(s, -5, 2)")->string_value(), "Ti");  // clamped
  EXPECT_EQ(Eval("upper(s)")->string_value(), "TIOGA");
  EXPECT_EQ(Eval("lower(s)")->string_value(), "tioga");
  EXPECT_TRUE(Eval("contains(s, \"iog\")")->bool_value());
  EXPECT_FALSE(Eval("contains(s, \"xyz\")")->bool_value());
  EXPECT_TRUE(Eval("startswith(s, \"Ti\")")->bool_value());
  EXPECT_FALSE(Eval("startswith(s, \"io\")")->bool_value());
}

TEST_F(BuiltinsTest, LikeGlobMatching) {
  EXPECT_TRUE(Eval("like(s, \"Tioga\")")->bool_value());
  EXPECT_TRUE(Eval("like(s, \"Ti*\")")->bool_value());
  EXPECT_TRUE(Eval("like(s, \"*oga\")")->bool_value());
  EXPECT_TRUE(Eval("like(s, \"T?oga\")")->bool_value());
  EXPECT_TRUE(Eval("like(s, \"*\")")->bool_value());
  EXPECT_TRUE(Eval("like(\"\", \"*\")")->bool_value());
  EXPECT_FALSE(Eval("like(s, \"T?ga\")")->bool_value());
  EXPECT_FALSE(Eval("like(s, \"tioga\")")->bool_value());  // case sensitive
  EXPECT_FALSE(Eval("like(s, \"Tiog\")")->bool_value());   // must match fully
  EXPECT_TRUE(Eval("like(s, \"*i*g*\")")->bool_value());
}

TEST_F(BuiltinsTest, Dates) {
  EXPECT_EQ(Eval("year(date(\"1995-07-14\"))")->int_value(), 1995);
  EXPECT_EQ(Eval("month(date(\"1995-07-14\"))")->int_value(), 7);
  EXPECT_EQ(Eval("day(date(\"1995-07-14\"))")->int_value(), 14);
  EXPECT_EQ(Eval("days(date(\"1970-01-03\"))")->int_value(), 2);
  EXPECT_TRUE(Eval("date_from_days(2) = date(\"1970-01-03\")")->bool_value());
  EXPECT_TRUE(Eval("date(\"bogus\")").status().IsParseError());
}

TEST_F(BuiltinsTest, Colors) {
  EXPECT_EQ(Eval("rgb(255, 0, 16)")->string_value(), "#ff0010");
  EXPECT_EQ(Eval("rgb(300, -5, 0)")->string_value(), "#ff0000");  // clamped
  EXPECT_EQ(Eval("lerp_color(\"#000000\", \"#ffffff\", 0)")->string_value(),
            "#000000");
  EXPECT_EQ(Eval("lerp_color(\"#000000\", \"#ffffff\", 1)")->string_value(),
            "#ffffff");
  EXPECT_TRUE(
      Eval("lerp_color(\"bad\", \"#ffffff\", 0.5)").status().IsInvalidArgument());
}

TEST_F(BuiltinsTest, DrawableConstructors) {
  auto circle = Eval("circle(2.5, \"#c81e1e\", true)");
  ASSERT_TRUE(circle.ok()) << circle.status().ToString();
  ASSERT_TRUE(circle->is_display());
  const draw::Drawable& c = (*circle->display_value())[0];
  EXPECT_EQ(c.kind, draw::DrawableKind::kCircle);
  EXPECT_DOUBLE_EQ(c.a, 2.5);
  EXPECT_EQ(c.style.fill, draw::FillMode::kFilled);
  EXPECT_EQ(c.color, (draw::Color{0xC8, 0x1E, 0x1E}));

  auto rect = Eval("rect(4, 3)");
  EXPECT_EQ((*rect->display_value())[0].kind, draw::DrawableKind::kRectangle);

  auto line = Eval("line(1, -1, \"#0000ff\")");
  EXPECT_EQ((*line->display_value())[0].kind, draw::DrawableKind::kLine);

  auto text = Eval("text(s, 12)");
  EXPECT_EQ((*text->display_value())[0].text, "Tioga");

  auto point = Eval("point()");
  EXPECT_EQ((*point->display_value())[0].kind, draw::DrawableKind::kPoint);
}

TEST_F(BuiltinsTest, PolygonVariadic) {
  auto triangle = Eval("polygon(0, 0, 1, 0, 0, 1)");
  ASSERT_TRUE(triangle.ok()) << triangle.status().ToString();
  EXPECT_EQ((*triangle->display_value())[0].points.size(), 3u);
  EXPECT_TRUE(Eval("polygon(0, 0, 1, 0)").status().IsInvalidArgument());
  EXPECT_TRUE(Eval("polygon(0, 0, 1, 0, 1)").status().IsInvalidArgument());  // odd
}

TEST_F(BuiltinsTest, ViewerConstructor) {
  auto viewer = Eval("viewer(10, 8, \"temps\", 3, 4, 2.0)");
  ASSERT_TRUE(viewer.ok()) << viewer.status().ToString();
  const draw::Drawable& v = (*viewer->display_value())[0];
  EXPECT_EQ(v.kind, draw::DrawableKind::kViewer);
  EXPECT_EQ(v.wormhole.destination_canvas, "temps");
  EXPECT_DOUBLE_EQ(v.wormhole.initial_x, 3);
  EXPECT_DOUBLE_EQ(v.wormhole.elevation, 2.0);
}

TEST_F(BuiltinsTest, OffsetShiftsDisplay) {
  auto shifted = Eval("offset(circle(1), 5, -2)");
  ASSERT_TRUE(shifted.ok());
  EXPECT_DOUBLE_EQ((*shifted->display_value())[0].offset_x, 5);
  EXPECT_DOUBLE_EQ((*shifted->display_value())[0].offset_y, -2);
}

TEST_F(BuiltinsTest, EmptyDisplay) {
  auto empty = Eval("empty_display()");
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->display_value()->empty());
}

TEST_F(BuiltinsTest, OverloadResolutionByArity) {
  EXPECT_TRUE(Eval("circle(1)").ok());
  EXPECT_TRUE(Eval("circle(1, \"#000000\")").ok());
  EXPECT_TRUE(Eval("circle(1, \"#000000\", false)").ok());
  EXPECT_TRUE(Eval("circle()").status().IsTypeError());
  EXPECT_TRUE(Eval("circle(1, 2)").status().IsTypeError());
}

TEST(BuiltinRegistryTest, LookupAndNames) {
  EXPECT_FALSE(LookupBuiltins("circle").empty());
  EXPECT_EQ(LookupBuiltins("circle").size(), 3u);
  EXPECT_TRUE(LookupBuiltins("no_such_fn").empty());
  std::vector<std::string> names = AllBuiltinNames();
  EXPECT_GT(names.size(), 30u);
  EXPECT_NE(std::find(names.begin(), names.end(), "viewer"), names.end());
}

TEST(BuiltinRegistryTest, ParamMatching) {
  EXPECT_TRUE(ParamMatches(ParamType::kNumeric, DataType::kInt));
  EXPECT_TRUE(ParamMatches(ParamType::kNumeric, DataType::kFloat));
  EXPECT_FALSE(ParamMatches(ParamType::kNumeric, DataType::kString));
  EXPECT_TRUE(ParamMatches(ParamType::kFloat, DataType::kInt));  // widening
  EXPECT_FALSE(ParamMatches(ParamType::kInt, DataType::kFloat));
  EXPECT_TRUE(ParamMatches(ParamType::kAny, DataType::kDisplay));
}

}  // namespace
}  // namespace tioga2::expr
