#include <gtest/gtest.h>

#include "db/relation.h"
#include "db/schema.h"

namespace tioga2::db {
namespace {

using types::DataType;
using types::Value;

Schema TwoColumnSchema() {
  return Schema::Make({Column{"id", DataType::kInt}, Column{"name", DataType::kString}})
      .value();
}

TEST(SchemaTest, MakeValidatesNames) {
  EXPECT_TRUE(Schema::Make({Column{"a", DataType::kInt}}).ok());
  EXPECT_TRUE(Schema::Make({Column{"a", DataType::kInt}, Column{"a", DataType::kFloat}})
                  .status()
                  .IsAlreadyExists());
  EXPECT_TRUE(Schema::Make({Column{"", DataType::kInt}}).status().IsInvalidArgument());
  EXPECT_TRUE(Schema::Make({}).ok());  // empty schema is legal
}

TEST(SchemaTest, Lookup) {
  Schema schema = TwoColumnSchema();
  EXPECT_EQ(schema.num_columns(), 2u);
  EXPECT_EQ(schema.FindColumn("name"), std::optional<size_t>(1));
  EXPECT_EQ(schema.FindColumn("missing"), std::nullopt);
  EXPECT_EQ(schema.ColumnIndex("id").value(), 0u);
  EXPECT_TRUE(schema.ColumnIndex("missing").status().IsNotFound());
  EXPECT_TRUE(schema.HasColumn("id"));
  EXPECT_FALSE(schema.HasColumn("ID"));  // case sensitive
}

TEST(SchemaTest, AddAndRemoveColumn) {
  Schema schema = TwoColumnSchema();
  Schema wider = schema.AddColumn(Column{"score", DataType::kFloat}).value();
  EXPECT_EQ(wider.num_columns(), 3u);
  EXPECT_TRUE(schema.AddColumn(Column{"id", DataType::kInt}).status().IsAlreadyExists());
  Schema narrower = wider.RemoveColumn(0).value();
  EXPECT_EQ(narrower.num_columns(), 2u);
  EXPECT_FALSE(narrower.HasColumn("id"));
  EXPECT_TRUE(wider.RemoveColumn(9).status().IsOutOfRange());
}

TEST(SchemaTest, ToStringListsColumns) {
  EXPECT_EQ(TwoColumnSchema().ToString(), "(id:int, name:string)");
}

TEST(RelationBuilderTest, TypeChecksRows) {
  RelationBuilder builder(std::make_shared<const Schema>(TwoColumnSchema()));
  EXPECT_TRUE(builder.AddRow({Value::Int(1), Value::String("a")}).ok());
  EXPECT_TRUE(builder.AddRow({Value::Null(), Value::Null()}).ok());  // nulls allowed
  EXPECT_TRUE(builder.AddRow({Value::Int(1)}).IsInvalidArgument());  // arity
  EXPECT_TRUE(
      builder.AddRow({Value::String("x"), Value::String("a")}).IsTypeError());
  RelationPtr relation = builder.Build();
  EXPECT_EQ(relation->num_rows(), 2u);
}

TEST(RelationBuilderTest, IntWidensToFloatColumn) {
  auto relation = MakeRelation({Column{"v", DataType::kFloat}}, {{Value::Int(3)}});
  ASSERT_TRUE(relation.ok());
  EXPECT_TRUE((*relation)->at(0, 0).is_float());
  EXPECT_DOUBLE_EQ((*relation)->at(0, 0).float_value(), 3.0);
}

TEST(RelationBuilderTest, BuildResetsBuilder) {
  RelationBuilder builder(std::make_shared<const Schema>(TwoColumnSchema()));
  ASSERT_TRUE(builder.AddRow({Value::Int(1), Value::String("a")}).ok());
  RelationPtr first = builder.Build();
  EXPECT_EQ(first->num_rows(), 1u);
  ASSERT_TRUE(builder.AddRow({Value::Int(2), Value::String("b")}).ok());
  RelationPtr second = builder.Build();
  EXPECT_EQ(second->num_rows(), 1u);
  EXPECT_EQ(second->at(0, 0).int_value(), 2);
  EXPECT_EQ(first->num_rows(), 1u);  // first build unaffected
}

TEST(RelationTest, AccessorsAndToString) {
  auto relation = MakeRelation({Column{"id", DataType::kInt},
                                Column{"name", DataType::kString}},
                               {{Value::Int(1), Value::String("a")},
                                {Value::Int(2), Value::String("b")}})
                      .value();
  EXPECT_EQ(relation->num_rows(), 2u);
  EXPECT_EQ(relation->num_columns(), 2u);
  EXPECT_EQ(relation->at(1, 1).string_value(), "b");
  std::string text = relation->ToString();
  EXPECT_NE(text.find("id | name"), std::string::npos);
  EXPECT_NE(text.find("\"a\""), std::string::npos);
}

TEST(RelationTest, ToStringTruncates) {
  RelationBuilder builder(
      std::make_shared<const Schema>(Schema::Make({Column{"v", DataType::kInt}}).value()));
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(builder.AddRow({Value::Int(i)}).ok());
  }
  std::string text = builder.Build()->ToString(/*max_rows=*/5);
  EXPECT_NE(text.find("25 more rows"), std::string::npos);
}

TEST(RelationTest, EqualityStructural) {
  auto make = [](int64_t v) {
    return MakeRelation({Column{"v", DataType::kInt}}, {{Value::Int(v)}}).value();
  };
  EXPECT_TRUE(RelationEquals(*make(1), *make(1)));
  EXPECT_FALSE(RelationEquals(*make(1), *make(2)));
  auto different_schema =
      MakeRelation({Column{"w", DataType::kInt}}, {{Value::Int(1)}}).value();
  EXPECT_FALSE(RelationEquals(*make(1), *different_schema));
}

}  // namespace
}  // namespace tioga2::db
