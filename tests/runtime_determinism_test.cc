// Serial/parallel equivalence over the full figure suite: every figure
// program evaluates to bit-identical outputs and stamps whether it runs
// through the serial dataflow::Engine or the ParallelEngine at 1, 2, or 8
// threads. This is the guarantee that lets SessionServer schedule work on a
// pool without changing what any user sees.

#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "boxes/relational_boxes.h"
#include "runtime/epoch.h"
#include "runtime/parallel_engine.h"
#include "runtime/thread_pool.h"
#include "testing/fig_programs.h"
#include "tioga2/environment.h"

namespace tioga2::testing {
namespace {

/// A canvas evaluation target: the edge feeding a viewer box.
struct Target {
  std::string canvas;
  std::string from;
  size_t from_port = 0;
};

std::vector<Target> TargetsOf(const dataflow::Graph& graph) {
  std::vector<Target> targets;
  for (const std::string& id : graph.BoxIds()) {
    const auto* viewer =
        dynamic_cast<const boxes::ViewerBox*>(graph.GetBox(id).value());
    if (viewer == nullptr) continue;
    std::optional<dataflow::Edge> edge = graph.IncomingEdge(id, 0);
    if (!edge.has_value()) continue;
    targets.push_back(Target{viewer->canvas(), edge->from_box, edge->from_port});
  }
  return targets;
}

/// Builds `program` into a fresh environment.
std::unique_ptr<Environment> BuildEnv(const FigProgram& program) {
  auto env = std::make_unique<Environment>();
  EXPECT_TRUE(env->LoadDemoData(program.extra_stations, program.num_days).ok())
      << program.name;
  Status built = program.build(env.get());
  EXPECT_TRUE(built.ok()) << program.name << ": " << built.message();
  return env;
}

TEST(RuntimeDeterminismTest, ParallelMatchesSerialOnEveryFigProgram) {
  for (const FigProgram& program : AllFigPrograms()) {
    SCOPED_TRACE(program.name);
    // Serial reference: evaluate every canvas target through the session's
    // engine, recording output fingerprints and the resulting stamp map.
    auto serial_env = BuildEnv(program);
    ui::Session& serial_session = serial_env->session();
    std::vector<Target> targets = TargetsOf(serial_session.graph());
    ASSERT_EQ(targets.size(), program.canvases.size());
    std::map<std::string, std::string> expected;
    for (const Target& t : targets) {
      auto value = serial_session.engine().Evaluate(serial_session.graph(),
                                                    t.from, t.from_port);
      ASSERT_TRUE(value.ok()) << t.canvas << ": " << value.status().message();
      expected[t.canvas] = FingerprintBoxValue(value.value());
    }
    std::map<std::string, std::optional<uint64_t>> expected_stamps;
    for (const std::string& id : serial_session.graph().BoxIds()) {
      expected_stamps[id] = serial_session.engine().cache().StampOf(id);
    }

    for (size_t num_threads : {1u, 2u, 8u}) {
      SCOPED_TRACE("threads=" + std::to_string(num_threads));
      // A fresh environment regenerates identical demo data (seeded), so
      // the parallel run starts from the same tables and versions.
      auto env = BuildEnv(program);
      ui::Session& session = env->session();
      runtime::ThreadPool pool(num_threads);
      runtime::ParallelEngine engine(session.catalog(), &pool);
      for (const Target& t : TargetsOf(session.graph())) {
        auto value = engine.Evaluate(session.graph(), t.from, t.from_port);
        ASSERT_TRUE(value.ok()) << t.canvas << ": " << value.status().message();
        ASSERT_EQ(expected.count(t.canvas), 1u);
        EXPECT_EQ(FingerprintBoxValue(value.value()), expected.at(t.canvas))
            << t.canvas;
      }
      for (const std::string& id : session.graph().BoxIds()) {
        ASSERT_EQ(expected_stamps.count(id), 1u) << id;
        EXPECT_EQ(engine.cache().StampOf(id), expected_stamps.at(id)) << id;
      }
    }
  }
}

// Morsel-driven fan-out: the same 3-pass regression with intra-operator
// parallelism forced on. Small pinned morsel sizes split every operator in
// each figure program into many concurrently-evaluated morsels (including
// sizes that do NOT align with expr::kBatchSize, so inner batch boundaries
// differ from the serial sweep), and a size larger than every input
// degenerates to one morsel. Outputs and stamps must stay bit-identical to
// the serial dataflow::Engine in all cases.
TEST(RuntimeDeterminismTest, MorselFanOutMatchesSerialOnEveryFigProgram) {
  struct Config {
    size_t threads;
    size_t morsel_rows;
  };
  const Config configs[] = {
      {2, 4097},       // straddles the kBatchSize boundary, 2 workers
      {8, 509},        // dozens of small unaligned morsels, 8 workers
      {8, 1u << 20},   // larger than every input: exactly one morsel
  };
  for (const FigProgram& program : AllFigPrograms()) {
    SCOPED_TRACE(program.name);
    auto serial_env = BuildEnv(program);
    ui::Session& serial_session = serial_env->session();
    std::vector<Target> targets = TargetsOf(serial_session.graph());
    ASSERT_EQ(targets.size(), program.canvases.size());
    std::map<std::string, std::string> expected;
    for (const Target& t : targets) {
      auto value = serial_session.engine().Evaluate(serial_session.graph(),
                                                    t.from, t.from_port);
      ASSERT_TRUE(value.ok()) << t.canvas << ": " << value.status().message();
      expected[t.canvas] = FingerprintBoxValue(value.value());
    }
    std::map<std::string, std::optional<uint64_t>> expected_stamps;
    for (const std::string& id : serial_session.graph().BoxIds()) {
      expected_stamps[id] = serial_session.engine().cache().StampOf(id);
    }

    for (const Config& config : configs) {
      SCOPED_TRACE("threads=" + std::to_string(config.threads) +
                   " morsel_rows=" + std::to_string(config.morsel_rows));
      auto env = BuildEnv(program);
      ui::Session& session = env->session();
      runtime::ThreadPool pool(config.threads);
      runtime::ParallelEngine engine(session.catalog(), &pool);
      db::ExecPolicy policy;
      policy.morsel_rows = config.morsel_rows;
      // No runner set here: FireBox lends the engine's own pool, so boxes
      // running ON pool workers fan morsels out ACROSS the same workers —
      // the nested-use case the deadlock-avoidance design exists for.
      engine.set_exec_policy(policy);
      for (const Target& t : TargetsOf(session.graph())) {
        auto value = engine.Evaluate(session.graph(), t.from, t.from_port);
        ASSERT_TRUE(value.ok()) << t.canvas << ": " << value.status().message();
        ASSERT_EQ(expected.count(t.canvas), 1u);
        EXPECT_EQ(FingerprintBoxValue(value.value()), expected.at(t.canvas))
            << t.canvas;
      }
      for (const std::string& id : session.graph().BoxIds()) {
        ASSERT_EQ(expected_stamps.count(id), 1u) << id;
        EXPECT_EQ(engine.cache().StampOf(id), expected_stamps.at(id)) << id;
      }
    }
  }
}

// Cross-session sharing: a stamp-keyed SharedMemoCache populated by one
// environment's engine serves another environment's engine byte-identical
// entries — in both directions between the serial Engine and the
// ParallelEngine. An adopting serial engine fires ZERO boxes: every value
// arrives through the shared tier, which is the §7 many-viewers convergence
// claim in its strongest form. Demo data is seeded, so distinct
// environments carry identical tables at identical versions and therefore
// identical stamps.
TEST(RuntimeDeterminismTest, SharedCacheParityOnEveryFigProgram) {
  for (const FigProgram& program : AllFigPrograms()) {
    SCOPED_TRACE(program.name);
    // Reference: serial, no shared tier.
    auto ref_env = BuildEnv(program);
    ui::Session& ref_session = ref_env->session();
    std::vector<Target> targets = TargetsOf(ref_session.graph());
    std::map<std::string, std::string> expected;
    for (const Target& t : targets) {
      auto value =
          ref_session.engine().Evaluate(ref_session.graph(), t.from, t.from_port);
      ASSERT_TRUE(value.ok()) << t.canvas << ": " << value.status().message();
      expected[t.canvas] = FingerprintBoxValue(value.value());
    }
    std::map<std::string, std::optional<uint64_t>> expected_stamps;
    for (const std::string& id : ref_session.graph().BoxIds()) {
      expected_stamps[id] = ref_session.engine().cache().StampOf(id);
    }

    dataflow::SharedMemoCache shared(4096);
    // Publisher: a serial engine fills the shared tier as it evaluates.
    auto pub_env = BuildEnv(program);
    ui::Session& pub_session = pub_env->session();
    pub_session.set_shared_cache(&shared);
    for (const Target& t : TargetsOf(pub_session.graph())) {
      auto value =
          pub_session.engine().Evaluate(pub_session.graph(), t.from, t.from_port);
      ASSERT_TRUE(value.ok()) << t.canvas;
      EXPECT_EQ(FingerprintBoxValue(value.value()), expected.at(t.canvas));
    }
    ASSERT_GT(shared.stats().inserts, 0u);

    // Serial adopter: every box resolves through the shared tier — zero
    // fires — and outputs and stamps stay byte-identical.
    auto serial_env = BuildEnv(program);
    ui::Session& serial_session = serial_env->session();
    serial_session.set_shared_cache(&shared);
    for (const Target& t : TargetsOf(serial_session.graph())) {
      auto value = serial_session.engine().Evaluate(serial_session.graph(),
                                                    t.from, t.from_port);
      ASSERT_TRUE(value.ok()) << t.canvas;
      EXPECT_EQ(FingerprintBoxValue(value.value()), expected.at(t.canvas))
          << t.canvas;
    }
    EXPECT_EQ(serial_session.engine().stats().boxes_fired, 0u);
    EXPECT_GT(serial_session.engine().stats().shared_hits, 0u);
    for (const std::string& id : serial_session.graph().BoxIds()) {
      EXPECT_EQ(serial_session.engine().cache().StampOf(id),
                expected_stamps.at(id))
          << id;
    }

    // Parallel adopter: the pool-driven engine adopts the same entries.
    {
      auto env = BuildEnv(program);
      ui::Session& session = env->session();
      runtime::ThreadPool pool(8);
      runtime::ParallelEngine engine(session.catalog(), &pool);
      engine.set_shared_cache(&shared);
      for (const Target& t : TargetsOf(session.graph())) {
        auto value = engine.Evaluate(session.graph(), t.from, t.from_port);
        ASSERT_TRUE(value.ok()) << t.canvas;
        EXPECT_EQ(FingerprintBoxValue(value.value()), expected.at(t.canvas))
            << t.canvas;
      }
      EXPECT_EQ(engine.stats().boxes_fired, 0u);
      EXPECT_GT(engine.stats().shared_hits, 0u);
      for (const std::string& id : session.graph().BoxIds()) {
        EXPECT_EQ(engine.cache().StampOf(id), expected_stamps.at(id)) << id;
      }
    }

    // Reverse direction: a ParallelEngine populates a fresh shared tier and
    // a serial engine adopts its entries without firing anything.
    dataflow::SharedMemoCache reverse(4096);
    auto par_env = BuildEnv(program);
    {
      ui::Session& session = par_env->session();
      runtime::ThreadPool pool(8);
      runtime::ParallelEngine engine(session.catalog(), &pool);
      engine.set_shared_cache(&reverse);
      for (const Target& t : TargetsOf(session.graph())) {
        auto value = engine.Evaluate(session.graph(), t.from, t.from_port);
        ASSERT_TRUE(value.ok()) << t.canvas;
        EXPECT_EQ(FingerprintBoxValue(value.value()), expected.at(t.canvas));
      }
    }
    {
      auto env = BuildEnv(program);
      ui::Session& session = env->session();
      session.set_shared_cache(&reverse);
      for (const Target& t : TargetsOf(session.graph())) {
        auto value =
            session.engine().Evaluate(session.graph(), t.from, t.from_port);
        ASSERT_TRUE(value.ok()) << t.canvas;
        EXPECT_EQ(FingerprintBoxValue(value.value()), expected.at(t.canvas))
            << t.canvas;
      }
      EXPECT_EQ(session.engine().stats().boxes_fired, 0u);
      EXPECT_GT(session.engine().stats().shared_hits, 0u);
    }
  }
}

// Epoch-reclaimed shared tier parity: a deliberately tiny shared cache wired
// to its own EpochDomain evicts on nearly every insert — retiring nodes and
// tombstone-compacted tables through the domain, with TryAdvance reclaiming
// them between rounds — while three successive environments evaluate every
// fig program through it. Outputs and stamps must stay byte-identical to
// the no-cache reference: eviction, retirement, and reclamation only move
// memory, never values. This is the determinism half of the DESIGN.md §13
// byte-identity claim (the torture half lives in session_server_test).
TEST(RuntimeDeterminismTest, EpochReclaimedSharedCacheParityOnEveryFigProgram) {
  for (const FigProgram& program : AllFigPrograms()) {
    SCOPED_TRACE(program.name);
    auto ref_env = BuildEnv(program);
    ui::Session& ref_session = ref_env->session();
    std::vector<Target> targets = TargetsOf(ref_session.graph());
    std::map<std::string, std::string> expected;
    for (const Target& t : targets) {
      auto value =
          ref_session.engine().Evaluate(ref_session.graph(), t.from, t.from_port);
      ASSERT_TRUE(value.ok()) << t.canvas << ": " << value.status().message();
      expected[t.canvas] = FingerprintBoxValue(value.value());
    }
    std::map<std::string, std::optional<uint64_t>> expected_stamps;
    for (const std::string& id : ref_session.graph().BoxIds()) {
      expected_stamps[id] = ref_session.engine().cache().StampOf(id);
    }

    runtime::EpochDomain domain(8);
    dataflow::SharedMemoCache shared(1, &domain);
    for (int round = 0; round < 3; ++round) {
      auto env = BuildEnv(program);
      ui::Session& session = env->session();
      session.set_shared_cache(&shared);
      for (const Target& t : TargetsOf(session.graph())) {
        auto value =
            session.engine().Evaluate(session.graph(), t.from, t.from_port);
        ASSERT_TRUE(value.ok()) << t.canvas;
        EXPECT_EQ(FingerprintBoxValue(value.value()), expected.at(t.canvas))
            << t.canvas;
      }
      for (const std::string& id : session.graph().BoxIds()) {
        EXPECT_EQ(session.engine().cache().StampOf(id), expected_stamps.at(id))
            << id;
      }
      domain.TryAdvance();  // reclaim between rounds, mid-reuse
    }
    dataflow::SharedMemoCache::Stats stats = shared.stats();
    ASSERT_GT(stats.inserts, 0u);
    // Capacity 1: any program publishing more than one distinct stamp had
    // to evict, and every eviction retires the node through the domain.
    if (stats.inserts > 1) {
      EXPECT_GT(stats.evictions, 0u);
      EXPECT_GT(domain.stats().retired, 0u);
    }
    while (domain.stats().pending > 0) ASSERT_TRUE(domain.TryAdvance());
    EXPECT_EQ(domain.stats().reclaimed, domain.stats().retired);
  }
}

}  // namespace
}  // namespace tioga2::testing
