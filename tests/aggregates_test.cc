// Tests for GroupBy / Distinct / UnionAll and their boxes.

#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <vector>

#include "boxes/box_registry.h"
#include "boxes/query_boxes.h"
#include "dataflow/engine.h"
#include "db/aggregates.h"
#include "db/catalog.h"
#include "types/date.h"

namespace tioga2::db {
namespace {

using types::DataType;
using types::Value;

RelationPtr Sales() {
  return MakeRelation(
             {Column{"region", DataType::kString}, Column{"product", DataType::kString},
              Column{"units", DataType::kInt}, Column{"price", DataType::kFloat}},
             {
                 {Value::String("west"), Value::String("hat"), Value::Int(3),
                  Value::Float(10.0)},
                 {Value::String("west"), Value::String("bag"), Value::Int(1),
                  Value::Float(25.0)},
                 {Value::String("east"), Value::String("hat"), Value::Int(5),
                  Value::Float(9.0)},
                 {Value::String("east"), Value::String("hat"), Value::Null(),
                  Value::Float(11.0)},
             })
      .value();
}

TEST(GroupByTest, CountSumAvgMinMax) {
  auto grouped = GroupBy(Sales(), {"region"},
                         {AggSpec{AggFn::kCount, "", "n"},
                          AggSpec{AggFn::kSum, "units", "total_units"},
                          AggSpec{AggFn::kAvg, "price", "avg_price"},
                          AggSpec{AggFn::kMin, "price", "min_price"},
                          AggSpec{AggFn::kMax, "product", "max_product"}});
  ASSERT_TRUE(grouped.ok()) << grouped.status().ToString();
  const Relation& r = **grouped;
  ASSERT_EQ(r.num_rows(), 2u);
  EXPECT_EQ(r.schema()->ToString(),
            "(region:string, n:int, total_units:float, avg_price:float, "
            "min_price:float, max_product:string)");
  // Groups appear in first-seen order: west then east.
  EXPECT_EQ(r.at(0, 0).string_value(), "west");
  EXPECT_EQ(r.at(0, 1).int_value(), 2);
  EXPECT_DOUBLE_EQ(r.at(0, 2).float_value(), 4.0);
  EXPECT_DOUBLE_EQ(r.at(0, 3).float_value(), 17.5);
  EXPECT_DOUBLE_EQ(r.at(0, 4).float_value(), 10.0);
  EXPECT_EQ(r.at(0, 5).string_value(), "hat");
  // East: null units skipped by sum; count counts rows.
  EXPECT_EQ(r.at(1, 1).int_value(), 2);
  EXPECT_DOUBLE_EQ(r.at(1, 2).float_value(), 5.0);
}

TEST(GroupByTest, MultipleKeys) {
  auto grouped = GroupBy(Sales(), {"region", "product"},
                         {AggSpec{AggFn::kCount, "", "n"}});
  ASSERT_TRUE(grouped.ok());
  EXPECT_EQ((*grouped)->num_rows(), 3u);  // west-hat, west-bag, east-hat
}

TEST(GroupByTest, EmptyKeysIsGlobalAggregate) {
  auto grouped =
      GroupBy(Sales(), {}, {AggSpec{AggFn::kSum, "units", "total"}});
  ASSERT_TRUE(grouped.ok());
  ASSERT_EQ((*grouped)->num_rows(), 1u);
  EXPECT_DOUBLE_EQ((*grouped)->at(0, 0).float_value(), 9.0);
}

TEST(GroupByTest, AllNullColumnYieldsNullAggregate) {
  auto relation = MakeRelation({Column{"k", DataType::kString},
                                Column{"v", DataType::kInt}},
                               {{Value::String("a"), Value::Null()}})
                      .value();
  auto grouped = GroupBy(relation, {"k"}, {AggSpec{AggFn::kSum, "v", "s"},
                                           AggSpec{AggFn::kMin, "v", "m"}});
  ASSERT_TRUE(grouped.ok());
  EXPECT_TRUE((*grouped)->at(0, 1).is_null());
  EXPECT_TRUE((*grouped)->at(0, 2).is_null());
}

TEST(GroupByTest, Validation) {
  EXPECT_TRUE(GroupBy(Sales(), {"nope"}, {AggSpec{AggFn::kCount, "", "n"}})
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(GroupBy(Sales(), {"region"}, {AggSpec{AggFn::kSum, "product", "s"}})
                  .status()
                  .IsTypeError());
  EXPECT_TRUE(GroupBy(Sales(), {"region"}, {AggSpec{AggFn::kCount, "", ""}})
                  .status()
                  .IsInvalidArgument());
}

TEST(GroupByTest, NumericKeysUnify) {
  auto relation = MakeRelation({Column{"k", DataType::kFloat}},
                               {{Value::Float(2.0)}, {Value::Float(2.0)},
                                {Value::Float(3.0)}})
                      .value();
  auto grouped = GroupBy(relation, {"k"}, {AggSpec{AggFn::kCount, "", "n"}});
  ASSERT_TRUE(grouped.ok());
  EXPECT_EQ((*grouped)->num_rows(), 2u);
}

// ---- Columnar group-by ------------------------------------------------------
// With policy.vectorized set, int/bool/date and dictionary-encoded string
// keys group on typed cells and dictionary codes instead of TupleKey strings
// (db/aggregates.cc). The scalar row loop is the oracle: both paths must
// produce the same relation down to group order (first appearance) and
// aggregate bytes.

ExecPolicy ScalarPolicy() {
  ExecPolicy policy;
  policy.vectorized = false;
  return policy;
}

ExecPolicy VectorizedPolicy() {
  ExecPolicy policy;
  policy.vectorized = true;
  return policy;
}

constexpr size_t kEveryRow = 1u << 20;

void ExpectGroupByPathsAgree(const RelationPtr& input,
                             const std::vector<std::string>& keys,
                             const std::vector<AggSpec>& aggs) {
  auto scalar = GroupBy(input, keys, aggs, ScalarPolicy());
  auto vectorized = GroupBy(input, keys, aggs, VectorizedPolicy());
  ASSERT_EQ(scalar.ok(), vectorized.ok()) << scalar.status().ToString() << " / "
                                          << vectorized.status().ToString();
  if (!scalar.ok()) return;
  // Cell-by-cell Describe identity rather than RelationEquals: NaN aggregate
  // results never compare Equals-equal to themselves, but both paths must
  // produce the same runtime type, text, and nullness in every cell.
  EXPECT_EQ((*scalar)->schema()->ToString(), (*vectorized)->schema()->ToString());
  ASSERT_EQ((*scalar)->num_rows(), (*vectorized)->num_rows());
  for (size_t r = 0; r < (*scalar)->num_rows(); ++r) {
    for (size_t c = 0; c < (*scalar)->num_columns(); ++c) {
      const Value& a = (*scalar)->at(r, c);
      const Value& b = (*vectorized)->at(r, c);
      ASSERT_EQ(a.is_null(), b.is_null()) << "row " << r << " col " << c;
      if (a.is_null()) continue;
      EXPECT_EQ(a.type(), b.type()) << "row " << r << " col " << c;
      EXPECT_EQ(a.ToString(), b.ToString()) << "row " << r << " col " << c;
    }
  }
}

TEST(GroupByColumnarTest, DictStringAndTypedKeysMatchScalarOracle) {
  // Category strings cover the encoding edges (empty string, UTF-8, embedded
  // NUL); int/bool/date keys and float aggregates carry nulls and NaN.
  const double kNaN = std::numeric_limits<double>::quiet_NaN();
  const std::string cats[] = {"", "west", "east", std::string("a\0b", 3),
                              "\xc3\xa9clair"};
  std::vector<Tuple> rows;
  for (size_t r = 0; r < 300; ++r) {
    rows.push_back(
        {r % 11 == 10 ? Value::Null() : Value::String(cats[r % 5]),
         r % 7 == 6 ? Value::Null() : Value::Int(static_cast<int64_t>(r % 4)),
         r % 13 == 12 ? Value::Null() : Value::Bool(r % 2 == 0),
         r % 17 == 16 ? Value::Null()
                      : Value::DateVal(types::Date(static_cast<int32_t>(r % 3))),
         r % 5 == 4    ? Value::Null()
         : r % 19 == 7 ? Value::Float(kNaN)
                       : Value::Float(static_cast<double>(r) * 0.25 - 30.0)});
  }
  RelationPtr rel =
      MakeRelation({Column{"s", DataType::kString}, Column{"i", DataType::kInt},
                    Column{"b", DataType::kBool}, Column{"d", DataType::kDate},
                    Column{"v", DataType::kFloat}},
                   rows)
          .value();
  const std::vector<AggSpec> aggs = {
      AggSpec{AggFn::kCount, "", "n"},   AggSpec{AggFn::kSum, "v", "sum_v"},
      AggSpec{AggFn::kAvg, "v", "avg_v"}, AggSpec{AggFn::kMin, "v", "min_v"},
      AggSpec{AggFn::kMax, "s", "max_s"}};
  for (const std::vector<std::string>& keys :
       std::vector<std::vector<std::string>>{
           {"s"}, {"s", "i"}, {"i", "b", "d"}, {"s", "d"}, {"b"}}) {
    SCOPED_TRACE(keys.front());
    ExpectGroupByPathsAgree(rel, keys, aggs);
  }
}

TEST(GroupByColumnarTest, TagByteValuesFallBackAndStillAgree) {
  // TupleKey cells are "\x01v" + QuoteString(value); interior quotes are
  // escaped, so the rows below CANNOT collide across the column boundary —
  // three distinct groups on the scalar path. Values containing the '\x01'
  // tag byte nonetheless push the columnar path onto the conservative
  // fallback (db/aggregates.cc eligibility), which must reproduce the oracle
  // exactly.
  RelationPtr rel =
      MakeRelation({Column{"s", DataType::kString}, Column{"t", DataType::kString},
                    Column{"v", DataType::kInt}},
                   {{Value::String("a\x01vb"), Value::String("c"), Value::Int(1)},
                    {Value::String("a"), Value::String("b\x01vc"), Value::Int(10)},
                    {Value::String("a"), Value::String("c"), Value::Int(100)}})
          .value();
  auto scalar = GroupBy(rel, {"s", "t"}, {AggSpec{AggFn::kSum, "v", "total"}},
                        ScalarPolicy());
  ASSERT_TRUE(scalar.ok());
  EXPECT_EQ((*scalar)->num_rows(), 3u);
  ExpectGroupByPathsAgree(rel, {"s", "t"}, {AggSpec{AggFn::kSum, "v", "total"}});
}

TEST(GroupByColumnarTest, FloatKeysAndUnencodedStringsStayOnTheScalarPath) {
  // Float keys are ineligible for the columnar path (FormatDouble("-0") !=
  // "0" although -0.0 == 0.0, and all NaNs format as "nan" while comparing
  // unequal) — both paths must still agree because the vectorized policy
  // simply declines these keys.
  const double kNaN = std::numeric_limits<double>::quiet_NaN();
  RelationPtr rel =
      MakeRelation({Column{"k", DataType::kFloat}, Column{"v", DataType::kInt}},
                   {{Value::Float(0.0), Value::Int(1)},
                    {Value::Float(-0.0), Value::Int(2)},
                    {Value::Float(kNaN), Value::Int(4)},
                    {Value::Float(kNaN), Value::Int(8)},
                    {Value::Null(), Value::Int(16)}})
          .value();
  ExpectGroupByPathsAgree(rel, {"k"}, {AggSpec{AggFn::kSum, "v", "total"},
                                       AggSpec{AggFn::kCount, "", "n"}});

  // Un-encoded strings (dict_encode off at materialization) likewise decline.
  ExecPolicy no_dict = DefaultExecPolicy();
  no_dict.dict_encode = false;
  SetDefaultExecPolicy(no_dict);
  RelationPtr plain = Sales();
  plain->columnar();
  no_dict.dict_encode = true;
  SetDefaultExecPolicy(no_dict);
  ExpectGroupByPathsAgree(plain, {"region", "product"},
                          {AggSpec{AggFn::kCount, "", "n"},
                           AggSpec{AggFn::kSum, "units", "total"}});
}

TEST(DistinctTest, RemovesDuplicatesKeepsFirst) {
  auto relation = MakeRelation({Column{"a", DataType::kInt},
                                Column{"b", DataType::kString}},
                               {{Value::Int(1), Value::String("x")},
                                {Value::Int(1), Value::String("x")},
                                {Value::Int(1), Value::String("y")},
                                {Value::Null(), Value::Null()},
                                {Value::Null(), Value::Null()}})
                      .value();
  auto distinct = Distinct(relation);
  ASSERT_TRUE(distinct.ok());
  EXPECT_EQ((*distinct)->num_rows(), 3u);
}

TEST(UnionAllTest, AppendsAndChecksSchema) {
  auto a = MakeRelation({Column{"v", DataType::kInt}}, {{Value::Int(1)}}).value();
  auto b = MakeRelation({Column{"v", DataType::kInt}}, {{Value::Int(2)}}).value();
  auto merged = UnionAll(a, b);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ((*merged)->num_rows(), 2u);
  auto c = MakeRelation({Column{"w", DataType::kInt}}, {}).value();
  EXPECT_TRUE(UnionAll(a, c).status().IsTypeError());
}

TEST(AggFnTest, NamesRoundTrip) {
  for (AggFn fn : {AggFn::kCount, AggFn::kSum, AggFn::kAvg, AggFn::kMin, AggFn::kMax}) {
    AggFn parsed;
    ASSERT_TRUE(AggFnFromString(AggFnToString(fn), &parsed));
    EXPECT_EQ(parsed, fn);
  }
  AggFn unused;
  EXPECT_FALSE(AggFnFromString("median", &unused));
}

TEST(AggSpecParseTest, RoundTrip) {
  auto specs = boxes::ParseAggSpecs("count::n;sum:units:total;min:price:cheapest");
  ASSERT_TRUE(specs.ok()) << specs.status().ToString();
  EXPECT_EQ(specs->size(), 3u);
  EXPECT_EQ(boxes::AggSpecsToString(*specs),
            "count::n;sum:units:total;min:price:cheapest");
  EXPECT_TRUE(boxes::ParseAggSpecs("bogus:units:x").status().IsParseError());
  EXPECT_TRUE(boxes::ParseAggSpecs("sum::x").status().IsParseError());
  EXPECT_TRUE(boxes::ParseAggSpecs("sum:units").status().IsParseError());
  EXPECT_TRUE(boxes::ParseAggSpecs("").status().IsInvalidArgument());
}

TEST(QueryBoxesTest, GroupByBoxThroughEngine) {
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterTable("Sales", Sales()).ok());
  dataflow::Graph graph;
  std::string table = graph.AddBox(boxes::MakeBox("Table", {{"table", "Sales"}})
                                       .value())
                          .value();
  std::string group =
      graph
          .AddBox(boxes::MakeBox("GroupBy", {{"keys", "region"},
                                             {"aggs", "count::n;sum:units:total"}})
                      .value())
          .value();
  ASSERT_TRUE(graph.Connect(table, 0, group, 0).ok());
  dataflow::Engine engine(&catalog);
  auto value = engine.Evaluate(graph, group, 0);
  ASSERT_TRUE(value.ok()) << value.status().ToString();
  auto relation =
      display::AsRelation(std::get<display::Displayable>(*value)).value();
  EXPECT_EQ(relation.num_rows(), 2u);
  EXPECT_EQ(relation.name(), "Sales_by");
}

TEST(QueryBoxesTest, SortLimitDistinctUnionBoxes) {
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterTable("Sales", Sales()).ok());
  dataflow::Graph graph;
  std::string table =
      graph.AddBox(boxes::MakeBox("Table", {{"table", "Sales"}}).value()).value();
  std::string sorted =
      graph
          .AddBox(boxes::MakeBox("Sort", {{"column", "units"}, {"ascending", "false"}})
                      .value())
          .value();
  std::string limited =
      graph.AddBox(boxes::MakeBox("Limit", {{"n", "2"}}).value()).value();
  ASSERT_TRUE(graph.Connect(table, 0, sorted, 0).ok());
  ASSERT_TRUE(graph.Connect(sorted, 0, limited, 0).ok());
  dataflow::Engine engine(&catalog);
  auto value = engine.Evaluate(graph, limited, 0).value();
  auto relation =
      display::AsRelation(std::get<display::Displayable>(value)).value();
  ASSERT_EQ(relation.num_rows(), 2u);
  EXPECT_EQ(relation.base()->at(0, 2).int_value(), 5);  // sorted descending

  std::string table2 =
      graph.AddBox(boxes::MakeBox("Table", {{"table", "Sales"}}).value()).value();
  std::string both =
      graph.AddBox(boxes::MakeBox("UnionAll", {}).value()).value();
  ASSERT_TRUE(graph.Connect(limited, 0, both, 0).ok());
  ASSERT_TRUE(graph.Connect(table2, 0, both, 1).ok());
  std::string distinct =
      graph.AddBox(boxes::MakeBox("Distinct", {}).value()).value();
  ASSERT_TRUE(graph.Connect(both, 0, distinct, 0).ok());
  auto distinct_value = engine.Evaluate(graph, distinct, 0).value();
  auto distinct_relation =
      display::AsRelation(std::get<display::Displayable>(distinct_value)).value();
  // 2 + 4 rows with the 2 limited ones duplicated -> 4 distinct.
  EXPECT_EQ(distinct_relation.num_rows(), 4u);
}

}  // namespace
}  // namespace tioga2::db
