// Tests for GroupBy / Distinct / UnionAll and their boxes.

#include <gtest/gtest.h>

#include "boxes/box_registry.h"
#include "boxes/query_boxes.h"
#include "dataflow/engine.h"
#include "db/aggregates.h"
#include "db/catalog.h"

namespace tioga2::db {
namespace {

using types::DataType;
using types::Value;

RelationPtr Sales() {
  return MakeRelation(
             {Column{"region", DataType::kString}, Column{"product", DataType::kString},
              Column{"units", DataType::kInt}, Column{"price", DataType::kFloat}},
             {
                 {Value::String("west"), Value::String("hat"), Value::Int(3),
                  Value::Float(10.0)},
                 {Value::String("west"), Value::String("bag"), Value::Int(1),
                  Value::Float(25.0)},
                 {Value::String("east"), Value::String("hat"), Value::Int(5),
                  Value::Float(9.0)},
                 {Value::String("east"), Value::String("hat"), Value::Null(),
                  Value::Float(11.0)},
             })
      .value();
}

TEST(GroupByTest, CountSumAvgMinMax) {
  auto grouped = GroupBy(Sales(), {"region"},
                         {AggSpec{AggFn::kCount, "", "n"},
                          AggSpec{AggFn::kSum, "units", "total_units"},
                          AggSpec{AggFn::kAvg, "price", "avg_price"},
                          AggSpec{AggFn::kMin, "price", "min_price"},
                          AggSpec{AggFn::kMax, "product", "max_product"}});
  ASSERT_TRUE(grouped.ok()) << grouped.status().ToString();
  const Relation& r = **grouped;
  ASSERT_EQ(r.num_rows(), 2u);
  EXPECT_EQ(r.schema()->ToString(),
            "(region:string, n:int, total_units:float, avg_price:float, "
            "min_price:float, max_product:string)");
  // Groups appear in first-seen order: west then east.
  EXPECT_EQ(r.at(0, 0).string_value(), "west");
  EXPECT_EQ(r.at(0, 1).int_value(), 2);
  EXPECT_DOUBLE_EQ(r.at(0, 2).float_value(), 4.0);
  EXPECT_DOUBLE_EQ(r.at(0, 3).float_value(), 17.5);
  EXPECT_DOUBLE_EQ(r.at(0, 4).float_value(), 10.0);
  EXPECT_EQ(r.at(0, 5).string_value(), "hat");
  // East: null units skipped by sum; count counts rows.
  EXPECT_EQ(r.at(1, 1).int_value(), 2);
  EXPECT_DOUBLE_EQ(r.at(1, 2).float_value(), 5.0);
}

TEST(GroupByTest, MultipleKeys) {
  auto grouped = GroupBy(Sales(), {"region", "product"},
                         {AggSpec{AggFn::kCount, "", "n"}});
  ASSERT_TRUE(grouped.ok());
  EXPECT_EQ((*grouped)->num_rows(), 3u);  // west-hat, west-bag, east-hat
}

TEST(GroupByTest, EmptyKeysIsGlobalAggregate) {
  auto grouped =
      GroupBy(Sales(), {}, {AggSpec{AggFn::kSum, "units", "total"}});
  ASSERT_TRUE(grouped.ok());
  ASSERT_EQ((*grouped)->num_rows(), 1u);
  EXPECT_DOUBLE_EQ((*grouped)->at(0, 0).float_value(), 9.0);
}

TEST(GroupByTest, AllNullColumnYieldsNullAggregate) {
  auto relation = MakeRelation({Column{"k", DataType::kString},
                                Column{"v", DataType::kInt}},
                               {{Value::String("a"), Value::Null()}})
                      .value();
  auto grouped = GroupBy(relation, {"k"}, {AggSpec{AggFn::kSum, "v", "s"},
                                           AggSpec{AggFn::kMin, "v", "m"}});
  ASSERT_TRUE(grouped.ok());
  EXPECT_TRUE((*grouped)->at(0, 1).is_null());
  EXPECT_TRUE((*grouped)->at(0, 2).is_null());
}

TEST(GroupByTest, Validation) {
  EXPECT_TRUE(GroupBy(Sales(), {"nope"}, {AggSpec{AggFn::kCount, "", "n"}})
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(GroupBy(Sales(), {"region"}, {AggSpec{AggFn::kSum, "product", "s"}})
                  .status()
                  .IsTypeError());
  EXPECT_TRUE(GroupBy(Sales(), {"region"}, {AggSpec{AggFn::kCount, "", ""}})
                  .status()
                  .IsInvalidArgument());
}

TEST(GroupByTest, NumericKeysUnify) {
  auto relation = MakeRelation({Column{"k", DataType::kFloat}},
                               {{Value::Float(2.0)}, {Value::Float(2.0)},
                                {Value::Float(3.0)}})
                      .value();
  auto grouped = GroupBy(relation, {"k"}, {AggSpec{AggFn::kCount, "", "n"}});
  ASSERT_TRUE(grouped.ok());
  EXPECT_EQ((*grouped)->num_rows(), 2u);
}

TEST(DistinctTest, RemovesDuplicatesKeepsFirst) {
  auto relation = MakeRelation({Column{"a", DataType::kInt},
                                Column{"b", DataType::kString}},
                               {{Value::Int(1), Value::String("x")},
                                {Value::Int(1), Value::String("x")},
                                {Value::Int(1), Value::String("y")},
                                {Value::Null(), Value::Null()},
                                {Value::Null(), Value::Null()}})
                      .value();
  auto distinct = Distinct(relation);
  ASSERT_TRUE(distinct.ok());
  EXPECT_EQ((*distinct)->num_rows(), 3u);
}

TEST(UnionAllTest, AppendsAndChecksSchema) {
  auto a = MakeRelation({Column{"v", DataType::kInt}}, {{Value::Int(1)}}).value();
  auto b = MakeRelation({Column{"v", DataType::kInt}}, {{Value::Int(2)}}).value();
  auto merged = UnionAll(a, b);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ((*merged)->num_rows(), 2u);
  auto c = MakeRelation({Column{"w", DataType::kInt}}, {}).value();
  EXPECT_TRUE(UnionAll(a, c).status().IsTypeError());
}

TEST(AggFnTest, NamesRoundTrip) {
  for (AggFn fn : {AggFn::kCount, AggFn::kSum, AggFn::kAvg, AggFn::kMin, AggFn::kMax}) {
    AggFn parsed;
    ASSERT_TRUE(AggFnFromString(AggFnToString(fn), &parsed));
    EXPECT_EQ(parsed, fn);
  }
  AggFn unused;
  EXPECT_FALSE(AggFnFromString("median", &unused));
}

TEST(AggSpecParseTest, RoundTrip) {
  auto specs = boxes::ParseAggSpecs("count::n;sum:units:total;min:price:cheapest");
  ASSERT_TRUE(specs.ok()) << specs.status().ToString();
  EXPECT_EQ(specs->size(), 3u);
  EXPECT_EQ(boxes::AggSpecsToString(*specs),
            "count::n;sum:units:total;min:price:cheapest");
  EXPECT_TRUE(boxes::ParseAggSpecs("bogus:units:x").status().IsParseError());
  EXPECT_TRUE(boxes::ParseAggSpecs("sum::x").status().IsParseError());
  EXPECT_TRUE(boxes::ParseAggSpecs("sum:units").status().IsParseError());
  EXPECT_TRUE(boxes::ParseAggSpecs("").status().IsInvalidArgument());
}

TEST(QueryBoxesTest, GroupByBoxThroughEngine) {
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterTable("Sales", Sales()).ok());
  dataflow::Graph graph;
  std::string table = graph.AddBox(boxes::MakeBox("Table", {{"table", "Sales"}})
                                       .value())
                          .value();
  std::string group =
      graph
          .AddBox(boxes::MakeBox("GroupBy", {{"keys", "region"},
                                             {"aggs", "count::n;sum:units:total"}})
                      .value())
          .value();
  ASSERT_TRUE(graph.Connect(table, 0, group, 0).ok());
  dataflow::Engine engine(&catalog);
  auto value = engine.Evaluate(graph, group, 0);
  ASSERT_TRUE(value.ok()) << value.status().ToString();
  auto relation =
      display::AsRelation(std::get<display::Displayable>(*value)).value();
  EXPECT_EQ(relation.num_rows(), 2u);
  EXPECT_EQ(relation.name(), "Sales_by");
}

TEST(QueryBoxesTest, SortLimitDistinctUnionBoxes) {
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterTable("Sales", Sales()).ok());
  dataflow::Graph graph;
  std::string table =
      graph.AddBox(boxes::MakeBox("Table", {{"table", "Sales"}}).value()).value();
  std::string sorted =
      graph
          .AddBox(boxes::MakeBox("Sort", {{"column", "units"}, {"ascending", "false"}})
                      .value())
          .value();
  std::string limited =
      graph.AddBox(boxes::MakeBox("Limit", {{"n", "2"}}).value()).value();
  ASSERT_TRUE(graph.Connect(table, 0, sorted, 0).ok());
  ASSERT_TRUE(graph.Connect(sorted, 0, limited, 0).ok());
  dataflow::Engine engine(&catalog);
  auto value = engine.Evaluate(graph, limited, 0).value();
  auto relation =
      display::AsRelation(std::get<display::Displayable>(value)).value();
  ASSERT_EQ(relation.num_rows(), 2u);
  EXPECT_EQ(relation.base()->at(0, 2).int_value(), 5);  // sorted descending

  std::string table2 =
      graph.AddBox(boxes::MakeBox("Table", {{"table", "Sales"}}).value()).value();
  std::string both =
      graph.AddBox(boxes::MakeBox("UnionAll", {}).value()).value();
  ASSERT_TRUE(graph.Connect(limited, 0, both, 0).ok());
  ASSERT_TRUE(graph.Connect(table2, 0, both, 1).ok());
  std::string distinct =
      graph.AddBox(boxes::MakeBox("Distinct", {}).value()).value();
  ASSERT_TRUE(graph.Connect(both, 0, distinct, 0).ok());
  auto distinct_value = engine.Evaluate(graph, distinct, 0).value();
  auto distinct_relation =
      display::AsRelation(std::get<display::Displayable>(distinct_value)).value();
  // 2 + 4 rows with the 2 limited ones duplicated -> 4 distinct.
  EXPECT_EQ(distinct_relation.num_rows(), 4u);
}

}  // namespace
}  // namespace tioga2::db
