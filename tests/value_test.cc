#include <gtest/gtest.h>

#include "types/value.h"

namespace tioga2::types {
namespace {

TEST(ValueTest, NullBasics) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.ToString(), "null");
  EXPECT_TRUE(Value::Null().Equals(Value::Null()));
  EXPECT_FALSE(Value::Null().Equals(Value::Int(0)));
}

TEST(ValueTest, TypedConstructorsAndAccessors) {
  EXPECT_EQ(Value::Bool(true).bool_value(), true);
  EXPECT_EQ(Value::Int(-5).int_value(), -5);
  EXPECT_DOUBLE_EQ(Value::Float(2.5).float_value(), 2.5);
  EXPECT_EQ(Value::String("hi").string_value(), "hi");
  EXPECT_EQ(Value::DateVal(Date::FromYmd(1995, 7, 14)).date_value().Year(), 1995);
}

TEST(ValueTest, TypeReporting) {
  EXPECT_EQ(Value::Bool(false).type(), DataType::kBool);
  EXPECT_EQ(Value::Int(1).type(), DataType::kInt);
  EXPECT_EQ(Value::Float(1).type(), DataType::kFloat);
  EXPECT_EQ(Value::String("").type(), DataType::kString);
  EXPECT_EQ(Value::DateVal(Date()).type(), DataType::kDate);
  EXPECT_EQ(Value::Display(draw::MakeDrawableList({})).type(), DataType::kDisplay);
}

TEST(ValueTest, NumericCrossTypeEquality) {
  EXPECT_TRUE(Value::Int(2).Equals(Value::Float(2.0)));
  EXPECT_FALSE(Value::Int(2).Equals(Value::Float(2.5)));
  EXPECT_TRUE(Value::Float(3.0).Equals(Value::Int(3)));
}

TEST(ValueTest, DisplayEqualityIsStructural) {
  auto a = Value::Display(draw::MakeDrawableList({draw::MakeCircle(2.0)}));
  auto b = Value::Display(draw::MakeDrawableList({draw::MakeCircle(2.0)}));
  auto c = Value::Display(draw::MakeDrawableList({draw::MakeCircle(3.0)}));
  EXPECT_TRUE(a.Equals(b));
  EXPECT_FALSE(a.Equals(c));
}

TEST(ValueTest, CompareNumeric) {
  EXPECT_EQ(Value::Int(1).Compare(Value::Int(2)).value(), -1);
  EXPECT_EQ(Value::Int(2).Compare(Value::Int(2)).value(), 0);
  EXPECT_EQ(Value::Float(2.5).Compare(Value::Int(2)).value(), 1);
}

TEST(ValueTest, CompareStringsAndDates) {
  EXPECT_LT(Value::String("apple").Compare(Value::String("banana")).value(), 0);
  EXPECT_GT(Value::DateVal(Date::FromYmd(1995, 1, 2))
                .Compare(Value::DateVal(Date::FromYmd(1995, 1, 1)))
                .value(),
            0);
}

TEST(ValueTest, CompareBools) {
  EXPECT_LT(Value::Bool(false).Compare(Value::Bool(true)).value(), 0);
  EXPECT_EQ(Value::Bool(true).Compare(Value::Bool(true)).value(), 0);
}

TEST(ValueTest, NullSortsFirst) {
  EXPECT_EQ(Value::Null().Compare(Value::Int(0)).value(), -1);
  EXPECT_EQ(Value::Int(0).Compare(Value::Null()).value(), 1);
  EXPECT_EQ(Value::Null().Compare(Value::Null()).value(), 0);
}

TEST(ValueTest, CrossTypeCompareIsError) {
  EXPECT_TRUE(Value::String("x").Compare(Value::Int(1)).status().IsTypeError());
  EXPECT_TRUE(Value::Bool(true).Compare(Value::DateVal(Date())).status().IsTypeError());
}

TEST(ValueTest, DisplayHasNoOrdering) {
  auto d = Value::Display(draw::MakeDrawableList({}));
  EXPECT_TRUE(d.Compare(d).status().IsTypeError());
}

TEST(ValueTest, CastIntToFloat) {
  auto cast = Value::Int(7).CastTo(DataType::kFloat);
  ASSERT_TRUE(cast.ok());
  EXPECT_DOUBLE_EQ(cast->float_value(), 7.0);
}

TEST(ValueTest, CastIdentityAndFailure) {
  EXPECT_TRUE(Value::String("x").CastTo(DataType::kString).ok());
  EXPECT_TRUE(Value::Float(1.5).CastTo(DataType::kInt).status().IsTypeError());
  EXPECT_TRUE(Value::String("1").CastTo(DataType::kInt).status().IsTypeError());
}

TEST(ValueTest, CastNullIsNull) {
  auto cast = Value::Null().CastTo(DataType::kInt);
  ASSERT_TRUE(cast.ok());
  EXPECT_TRUE(cast->is_null());
}

TEST(ValueTest, ToStringForms) {
  EXPECT_EQ(Value::Bool(true).ToString(), "true");
  EXPECT_EQ(Value::Int(42).ToString(), "42");
  EXPECT_EQ(Value::Float(2.5).ToString(), "2.5");
  EXPECT_EQ(Value::Float(3.0).ToString(), "3");
  EXPECT_EQ(Value::String("hi").ToString(), "\"hi\"");
  EXPECT_EQ(Value::DateVal(Date::FromYmd(1995, 7, 14)).ToString(), "1995-07-14");
}

TEST(ValueParseTest, ParsesEachType) {
  EXPECT_EQ(Value::Parse(DataType::kBool, "true")->bool_value(), true);
  EXPECT_EQ(Value::Parse(DataType::kBool, "0")->bool_value(), false);
  EXPECT_EQ(Value::Parse(DataType::kInt, " -12 ")->int_value(), -12);
  EXPECT_DOUBLE_EQ(Value::Parse(DataType::kFloat, "2.5e1")->float_value(), 25.0);
  EXPECT_EQ(Value::Parse(DataType::kString, "plain")->string_value(), "plain");
  EXPECT_EQ(Value::Parse(DataType::kString, "\"quoted text\"")->string_value(),
            "quoted text");
  EXPECT_EQ(Value::Parse(DataType::kDate, "1990-06-15")->date_value().Month(), 6);
}

TEST(ValueParseTest, RejectsMalformed) {
  EXPECT_TRUE(Value::Parse(DataType::kBool, "yes").status().IsParseError());
  EXPECT_TRUE(Value::Parse(DataType::kInt, "12x").status().IsParseError());
  EXPECT_TRUE(Value::Parse(DataType::kInt, "").status().IsParseError());
  EXPECT_TRUE(Value::Parse(DataType::kFloat, "abc").status().IsParseError());
  EXPECT_TRUE(Value::Parse(DataType::kDate, "1990/01/01").status().IsParseError());
  EXPECT_TRUE(Value::Parse(DataType::kDisplay, "circle").status().IsParseError());
}

TEST(ValueParseTest, RoundTripsThroughToString) {
  for (const Value& v :
       {Value::Bool(false), Value::Int(99), Value::Float(-1.25),
        Value::String("round trip"), Value::DateVal(Date::FromYmd(2001, 12, 31))}) {
    auto parsed = Value::Parse(v.type(), v.ToString());
    ASSERT_TRUE(parsed.ok()) << v.ToString();
    EXPECT_TRUE(parsed->Equals(v)) << v.ToString();
  }
}

TEST(DataTypeTest, NamesRoundTrip) {
  for (DataType type : {DataType::kBool, DataType::kInt, DataType::kFloat,
                        DataType::kString, DataType::kDate, DataType::kDisplay}) {
    DataType parsed;
    ASSERT_TRUE(DataTypeFromString(DataTypeToString(type), &parsed));
    EXPECT_EQ(parsed, type);
  }
  DataType unused;
  EXPECT_FALSE(DataTypeFromString("blob", &unused));
}

TEST(DataTypeTest, NumericAndConvertible) {
  EXPECT_TRUE(IsNumericType(DataType::kInt));
  EXPECT_TRUE(IsNumericType(DataType::kFloat));
  EXPECT_FALSE(IsNumericType(DataType::kString));
  EXPECT_TRUE(IsImplicitlyConvertible(DataType::kInt, DataType::kFloat));
  EXPECT_FALSE(IsImplicitlyConvertible(DataType::kFloat, DataType::kInt));
  EXPECT_TRUE(IsImplicitlyConvertible(DataType::kDate, DataType::kDate));
}

}  // namespace
}  // namespace tioga2::types
