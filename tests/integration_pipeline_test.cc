// End-to-end integration tests: build the paper's running example (§4,
// Figures 1/4) programmatically through the Session, evaluate it through the
// lazy engine, and render it through both backends.

#include <gtest/gtest.h>

#include "tioga2/environment.h"

namespace tioga2 {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(env_.LoadDemoData(/*extra_stations=*/100, /*num_days=*/60).ok());
  }

  Environment env_;
};

TEST_F(PipelineTest, Figure1DefaultTableView) {
  ui::Session& session = env_.session();
  auto stations = session.AddTable("Stations");
  ASSERT_TRUE(stations.ok()) << stations.status().ToString();
  auto restrict = session.AddBox("Restrict", {{"predicate", "state = \"LA\""}});
  ASSERT_TRUE(restrict.ok()) << restrict.status().ToString();
  ASSERT_TRUE(session.Connect(*stations, 0, *restrict, 0).ok());
  auto viewer_box = session.AddViewer(*restrict, 0, "fig1");
  ASSERT_TRUE(viewer_box.ok()) << viewer_box.status().ToString();

  auto content = session.EvaluateCanvas("fig1");
  ASSERT_TRUE(content.ok()) << content.status().ToString();
  auto relation = display::AsRelation(*content);
  ASSERT_TRUE(relation.ok());
  EXPECT_EQ(relation->num_rows(), 15u);  // the named Louisiana stations
  // Default display (§5.2): x = 0, y = sequence number, textual display.
  auto loc = relation->LocationOf(3);
  ASSERT_TRUE(loc.ok()) << loc.status().ToString();
  EXPECT_DOUBLE_EQ((*loc)[0], 0.0);
  EXPECT_DOUBLE_EQ((*loc)[1], 3.0);
  auto display_list = relation->DisplayOf(0);
  ASSERT_TRUE(display_list.ok());
  EXPECT_EQ((*display_list)->size(), relation->base()->schema()->num_columns());

  // Render it.
  auto viewer = env_.GetViewer("fig1");
  ASSERT_TRUE(viewer.ok()) << viewer.status().ToString();
  ASSERT_TRUE((*viewer)->FitContent(640, 480).ok());
  auto stats = env_.RenderViewer(*viewer, 640, 480);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GT(stats->tuples_drawn, 0u);
  EXPECT_EQ(stats->tuple_errors, 0u);
}

TEST_F(PipelineTest, Figure4ScatterWithAltitudeSlider) {
  ui::Session& session = env_.session();
  auto stations = session.AddTable("Stations");
  auto restrict = session.AddBox("Restrict", {{"predicate", "state = \"LA\""}});
  ASSERT_TRUE(session.Connect(*stations, 0, *restrict, 0).ok());
  // Map (longitude, latitude) to (x, y) and add the Altitude slider.
  auto set_x = session.AddBox("SetLocation", {{"dim", "0"}, {"attr", "longitude"}});
  auto set_y = session.AddBox("SetLocation", {{"dim", "1"}, {"attr", "latitude"}});
  auto slider = session.AddBox("AddLocationDimension", {{"attr", "altitude"}});
  // Display: circle plus the station name below it.
  auto add_circle = session.AddBox(
      "AddAttribute", {{"name", "circ"}, {"definition", "circle(0.05, \"#c81e1e\", true)"}});
  auto add_label = session.AddBox(
      "AddAttribute",
      {{"name", "label"}, {"definition", "offset(text(name, 0.12), -0.2, -0.25)"}});
  auto combine = session.AddBox("CombineDisplays", {{"name", "dots"},
                                                    {"first", "circ"},
                                                    {"second", "label"},
                                                    {"dx", "0"},
                                                    {"dy", "0"}});
  auto set_display = session.AddBox("SetDisplay", {{"attr", "dots"}});
  ASSERT_TRUE(session.Connect(*restrict, 0, *set_x, 0).ok());
  ASSERT_TRUE(session.Connect(*set_x, 0, *set_y, 0).ok());
  ASSERT_TRUE(session.Connect(*set_y, 0, *slider, 0).ok());
  ASSERT_TRUE(session.Connect(*slider, 0, *add_circle, 0).ok());
  ASSERT_TRUE(session.Connect(*add_circle, 0, *add_label, 0).ok());
  ASSERT_TRUE(session.Connect(*add_label, 0, *combine, 0).ok());
  ASSERT_TRUE(session.Connect(*combine, 0, *set_display, 0).ok());
  ASSERT_TRUE(session.AddViewer(*set_display, 0, "fig4").ok());

  auto content = session.EvaluateCanvas("fig4");
  ASSERT_TRUE(content.ok()) << content.status().ToString();
  auto relation = display::AsRelation(*content);
  ASSERT_TRUE(relation.ok()) << relation.status().ToString();
  EXPECT_EQ(relation->Dimension(), 3u);  // x, y, altitude

  // New Orleans is at (-90.08, 29.95).
  auto loc = relation->LocationOf(0);
  ASSERT_TRUE(loc.ok()) << loc.status().ToString();
  EXPECT_DOUBLE_EQ((*loc)[0], -90.08);
  EXPECT_DOUBLE_EQ((*loc)[1], 29.95);

  auto viewer = env_.GetViewer("fig4");
  ASSERT_TRUE(viewer.ok());
  ASSERT_TRUE((*viewer)->FitContent(640, 480).ok());
  auto stats = env_.RenderViewer(*viewer, 640, 480);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->tuples_drawn, 15u);
  EXPECT_EQ(stats->tuple_errors, 0u);

  // The altitude slider culls high stations: only stations below 100 ft.
  (*viewer)->SetSlider(2, viewer::SliderRange{0, 100});
  auto filtered = env_.RenderViewer(*viewer, 640, 480);
  ASSERT_TRUE(filtered.ok());
  EXPECT_LT(filtered->tuples_drawn, 15u);
  EXPECT_GT(filtered->tuples_culled_slider, 0u);
  EXPECT_EQ(filtered->tuples_drawn + filtered->tuples_culled_slider, 15u);
}

TEST_F(PipelineTest, LazyEngineMemoizesAcrossRenders) {
  ui::Session& session = env_.session();
  auto stations = session.AddTable("Stations");
  auto restrict = session.AddBox("Restrict", {{"predicate", "state = \"LA\""}});
  ASSERT_TRUE(session.Connect(*stations, 0, *restrict, 0).ok());
  ASSERT_TRUE(session.AddViewer(*restrict, 0, "memo").ok());

  ASSERT_TRUE(session.EvaluateCanvas("memo").ok());
  uint64_t fired_first = session.engine().stats().boxes_fired;
  ASSERT_TRUE(session.EvaluateCanvas("memo").ok());
  uint64_t fired_second = session.engine().stats().boxes_fired;
  EXPECT_EQ(fired_first, fired_second) << "second evaluation should be fully cached";
  EXPECT_GT(session.engine().stats().cache_hits, 0u);
}

TEST_F(PipelineTest, SvgBackendProducesDocument) {
  ui::Session& session = env_.session();
  auto stations = session.AddTable("Stations");
  ASSERT_TRUE(session.AddViewer(*stations, 0, "svg").ok());
  auto viewer = env_.GetViewer("svg");
  ASSERT_TRUE(viewer.ok());
  ASSERT_TRUE((*viewer)->FitContent(320, 240).ok());
  auto svg = env_.RenderViewerSvg(*viewer, 320, 240);
  ASSERT_TRUE(svg.ok()) << svg.status().ToString();
  EXPECT_NE(svg->find("<svg"), std::string::npos);
  EXPECT_NE(svg->find("<text"), std::string::npos);
  EXPECT_NE(svg->find("</svg>"), std::string::npos);
}

}  // namespace
}  // namespace tioga2
