// Analyzer and evaluator tests: type checking, null semantics, and the
// arithmetic/comparison/date/display operator matrix.

#include <gtest/gtest.h>

#include "db/relation.h"
#include "expr/expr.h"

namespace tioga2::expr {
namespace {

using types::DataType;
using types::Date;
using types::Value;

/// Test fixture: a row (n:int, x:float, s:string, flag:bool, d:date, nul:int=null)
/// visible to every expression.
class EvalTest : public ::testing::Test {
 protected:
  EvalTest()
      : env_(MakeSchemaTypeEnv({{"n", DataType::kInt},
                                {"x", DataType::kFloat},
                                {"s", DataType::kString},
                                {"flag", DataType::kBool},
                                {"d", DataType::kDate},
                                {"nul", DataType::kInt}})),
        row_{Value::Int(6),
             Value::Float(2.5),
             Value::String("Hello"),
             Value::Bool(true),
             Value::DateVal(Date::FromYmd(1990, 6, 15)),
             Value::Null()},
        accessor_(row_) {}

  Result<Value> Eval(const std::string& source) {
    TIOGA2_ASSIGN_OR_RETURN(CompiledExpr compiled, CompiledExpr::Compile(source, env_));
    return compiled.Eval(accessor_);
  }

  Result<DataType> TypeOf(const std::string& source) {
    TIOGA2_ASSIGN_OR_RETURN(CompiledExpr compiled, CompiledExpr::Compile(source, env_));
    return compiled.result_type();
  }

  TypeEnv env_;
  db::Tuple row_;
  TupleAccessor accessor_;
};

TEST_F(EvalTest, IntArithmetic) {
  EXPECT_EQ(Eval("n + 2")->int_value(), 8);
  EXPECT_EQ(Eval("n - 10")->int_value(), -4);
  EXPECT_EQ(Eval("n * n")->int_value(), 36);
  EXPECT_EQ(Eval("n % 4")->int_value(), 2);
  EXPECT_EQ(TypeOf("n + 2").value(), DataType::kInt);
}

TEST_F(EvalTest, DivisionAlwaysFloat) {
  EXPECT_EQ(TypeOf("n / 2").value(), DataType::kFloat);
  EXPECT_DOUBLE_EQ(Eval("n / 4")->float_value(), 1.5);
}

TEST_F(EvalTest, MixedArithmeticPromotes) {
  EXPECT_EQ(TypeOf("n + x").value(), DataType::kFloat);
  EXPECT_DOUBLE_EQ(Eval("n + x")->float_value(), 8.5);
  EXPECT_DOUBLE_EQ(Eval("x * 2")->float_value(), 5.0);
}

TEST_F(EvalTest, DivisionByZeroIsNull) {
  EXPECT_TRUE(Eval("n / 0")->is_null());
  EXPECT_TRUE(Eval("n % 0")->is_null());
  EXPECT_TRUE(Eval("x / (x - x)")->is_null());
}

TEST_F(EvalTest, UnaryMinusAndNot) {
  EXPECT_EQ(Eval("-n")->int_value(), -6);
  EXPECT_DOUBLE_EQ(Eval("-x")->float_value(), -2.5);
  EXPECT_EQ(Eval("not flag")->bool_value(), false);
  EXPECT_TRUE(Eval("-nul")->is_null());
}

TEST_F(EvalTest, Comparisons) {
  EXPECT_TRUE(Eval("n > 5")->bool_value());
  EXPECT_FALSE(Eval("n > 6")->bool_value());
  EXPECT_TRUE(Eval("n >= 6")->bool_value());
  EXPECT_TRUE(Eval("x < n")->bool_value());
  EXPECT_TRUE(Eval("s = \"Hello\"")->bool_value());
  EXPECT_TRUE(Eval("s != \"World\"")->bool_value());
  EXPECT_TRUE(Eval("s < \"Z\"")->bool_value());
}

TEST_F(EvalTest, NumericCrossTypeEquality) {
  EXPECT_TRUE(Eval("n = 6.0")->bool_value());
  EXPECT_FALSE(Eval("x = 2")->bool_value());
}

TEST_F(EvalTest, NullComparisonsAreNull) {
  EXPECT_TRUE(Eval("nul = 1")->is_null());
  EXPECT_TRUE(Eval("nul > 1")->is_null());
  EXPECT_TRUE(Eval("nul = null")->is_null());  // SQL semantics, use isnull()
}

TEST_F(EvalTest, ThreeValuedLogic) {
  // false and null = false; true and null = null.
  EXPECT_FALSE(Eval("(n < 0) and (nul > 0)")->bool_value());
  EXPECT_TRUE(Eval("(n > 0) and (nul > 0)")->is_null());
  // true or null = true; false or null = null.
  EXPECT_TRUE(Eval("(n > 0) or (nul > 0)")->bool_value());
  EXPECT_TRUE(Eval("(n < 0) or (nul > 0)")->is_null());
}

TEST_F(EvalTest, ShortCircuitAvoidsRightErrors) {
  // The right side would be null; short circuit still yields a value.
  EXPECT_FALSE(Eval("false and (nul > 0)")->bool_value());
  EXPECT_TRUE(Eval("true or (nul > 0)")->bool_value());
}

TEST_F(EvalTest, StringConcatenation) {
  EXPECT_EQ(Eval("s + \" World\"")->string_value(), "Hello World");
  EXPECT_EQ(TypeOf("s + s").value(), DataType::kString);
}

TEST_F(EvalTest, DateArithmetic) {
  EXPECT_EQ(Eval("d + 30")->date_value(), Date::FromYmd(1990, 7, 15));
  EXPECT_EQ(Eval("d - 15")->date_value(), Date::FromYmd(1990, 5, 31));
  EXPECT_EQ(Eval("d - date(\"1990-06-01\")")->int_value(), 14);
  EXPECT_EQ(TypeOf("d - d").value(), DataType::kInt);
  EXPECT_EQ(TypeOf("d + 1").value(), DataType::kDate);
}

TEST_F(EvalTest, DateComparisons) {
  EXPECT_TRUE(Eval("d < date(\"1991-01-01\")")->bool_value());
  EXPECT_TRUE(Eval("d = date(\"1990-06-15\")")->bool_value());
}

TEST_F(EvalTest, IfAndCoalesce) {
  EXPECT_EQ(Eval("if(n > 5, 1, 2)")->int_value(), 1);
  EXPECT_EQ(Eval("if(n > 9, 1, 2)")->int_value(), 2);
  EXPECT_TRUE(Eval("if(nul > 0, 1, 2)")->is_null());
  EXPECT_EQ(Eval("coalesce(nul, 7)")->int_value(), 7);
  EXPECT_EQ(Eval("coalesce(n, 7)")->int_value(), 6);
}

TEST_F(EvalTest, IfUnifiesBranchTypes) {
  EXPECT_EQ(TypeOf("if(flag, 1, 2.5)").value(), DataType::kFloat);
  EXPECT_EQ(TypeOf("if(flag, null, 2)").value(), DataType::kInt);
  EXPECT_TRUE(TypeOf("if(flag, 1, \"x\")").status().IsTypeError());
}

TEST_F(EvalTest, IsNull) {
  EXPECT_TRUE(Eval("isnull(nul)")->bool_value());
  EXPECT_FALSE(Eval("isnull(n)")->bool_value());
  EXPECT_TRUE(Eval("isnull(nul + 1)")->bool_value());
}

TEST_F(EvalTest, DisplayCombinationViaPlus) {
  auto result = Eval("circle(1.0) + text(s, 2.0)");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_TRUE(result->is_display());
  EXPECT_EQ((*result->display_value()).size(), 2u);
}

TEST_F(EvalTest, TypeErrors) {
  EXPECT_TRUE(TypeOf("s + n").status().IsTypeError());
  EXPECT_TRUE(TypeOf("flag + flag").status().IsTypeError());
  EXPECT_TRUE(TypeOf("s and flag").status().IsTypeError());
  EXPECT_TRUE(TypeOf("not n").status().IsTypeError());
  EXPECT_TRUE(TypeOf("-s").status().IsTypeError());
  EXPECT_TRUE(TypeOf("x % 2").status().IsTypeError());  // mod needs ints
  EXPECT_TRUE(TypeOf("s < 1").status().IsTypeError());
  EXPECT_TRUE(TypeOf("d + x").status().IsTypeError());
}

TEST_F(EvalTest, UnknownAttributeAndFunction) {
  EXPECT_TRUE(TypeOf("missing + 1").status().IsNotFound());
  EXPECT_TRUE(TypeOf("mystery(1)").status().IsNotFound());
}

TEST_F(EvalTest, NullLiteralNeedsContext) {
  EXPECT_TRUE(TypeOf("null = null").status().IsTypeError());
  EXPECT_EQ(TypeOf("n = null").value(), DataType::kBool);
}

TEST_F(EvalTest, CompiledExprCopies) {
  CompiledExpr original = CompiledExpr::Compile("n * 2", env_).value();
  CompiledExpr copy = original;
  EXPECT_EQ(copy.source(), original.source());
  EXPECT_EQ(copy.Eval(accessor_)->int_value(), 12);
  CompiledExpr assigned = CompiledExpr::Compile("n", env_).value();
  assigned = original;
  EXPECT_EQ(assigned.Eval(accessor_)->int_value(), 12);
}

TEST_F(EvalTest, TupleAccessorRejectsComputedNames) {
  CompiledExpr compiled = CompiledExpr::Compile("n", env_).value();
  // GetNamed path is unreachable for stored-resolved refs; call directly.
  EXPECT_TRUE(accessor_.GetNamed("anything").status().IsNotFound());
}

}  // namespace
}  // namespace tioga2::expr
