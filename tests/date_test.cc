#include <gtest/gtest.h>

#include "types/date.h"

namespace tioga2::types {
namespace {

TEST(DateTest, EpochIsJanuaryFirst1970) {
  Date epoch;
  EXPECT_EQ(epoch.DaysValue(), 0);
  EXPECT_EQ(epoch.Year(), 1970);
  EXPECT_EQ(epoch.Month(), 1);
  EXPECT_EQ(epoch.Day(), 1);
}

TEST(DateTest, KnownDates) {
  EXPECT_EQ(Date::FromYmd(1970, 1, 2).DaysValue(), 1);
  EXPECT_EQ(Date::FromYmd(1969, 12, 31).DaysValue(), -1);
  EXPECT_EQ(Date::FromYmd(2000, 3, 1).DaysValue(), 11017);
}

TEST(DateTest, LeapYearHandling) {
  // 2000 was a leap year (divisible by 400); 1900 was not.
  Date feb29_2000 = Date::FromYmd(2000, 2, 29);
  EXPECT_EQ(feb29_2000.Month(), 2);
  EXPECT_EQ(feb29_2000.Day(), 29);
  EXPECT_EQ(feb29_2000.AddDays(1).Month(), 3);
  EXPECT_EQ(feb29_2000.AddDays(1).Day(), 1);
  // 1900-02-28 + 1 day is March 1 (no Feb 29 in 1900).
  Date feb28_1900 = Date::FromYmd(1900, 2, 28);
  EXPECT_EQ(feb28_1900.AddDays(1).Month(), 3);
}

TEST(DateTest, RoundTripYmd) {
  for (int year : {1960, 1970, 1985, 1999, 2000, 2024}) {
    for (int month : {1, 2, 6, 12}) {
      for (int day : {1, 15, 28}) {
        Date date = Date::FromYmd(year, month, day);
        EXPECT_EQ(date.Year(), year);
        EXPECT_EQ(date.Month(), month);
        EXPECT_EQ(date.Day(), day);
      }
    }
  }
}

TEST(DateTest, MonthOverflowNormalizes) {
  EXPECT_EQ(Date::FromYmd(1990, 13, 1), Date::FromYmd(1991, 1, 1));
  EXPECT_EQ(Date::FromYmd(1990, 0, 1), Date::FromYmd(1989, 12, 1));
  EXPECT_EQ(Date::FromYmd(1990, 25, 1), Date::FromYmd(1992, 1, 1));
}

TEST(DateTest, ToStringFormat) {
  EXPECT_EQ(Date::FromYmd(1995, 7, 4).ToString(), "1995-07-04");
  EXPECT_EQ(Date::FromYmd(2024, 12, 25).ToString(), "2024-12-25");
}

TEST(DateTest, ParseValid) {
  Date date;
  ASSERT_TRUE(Date::Parse("1985-01-01", &date));
  EXPECT_EQ(date, Date::FromYmd(1985, 1, 1));
  ASSERT_TRUE(Date::Parse("2000-2-9", &date));
  EXPECT_EQ(date, Date::FromYmd(2000, 2, 9));
}

TEST(DateTest, ParseInvalid) {
  Date date;
  EXPECT_FALSE(Date::Parse("not a date", &date));
  EXPECT_FALSE(Date::Parse("1985-13-01", &date));
  EXPECT_FALSE(Date::Parse("1985-00-10", &date));
  EXPECT_FALSE(Date::Parse("1985-01-32", &date));
  EXPECT_FALSE(Date::Parse("1985-01-01x", &date));
  EXPECT_FALSE(Date::Parse("", &date));
}

TEST(DateTest, Ordering) {
  EXPECT_LT(Date::FromYmd(1989, 12, 31), Date::FromYmd(1990, 1, 1));
  EXPECT_GT(Date::FromYmd(1990, 2, 1), Date::FromYmd(1990, 1, 31));
  EXPECT_EQ(Date::FromYmd(1990, 1, 1), Date::FromYmd(1990, 1, 1));
}

TEST(DateTest, AddDaysArithmetic) {
  Date start = Date::FromYmd(1990, 1, 1);
  EXPECT_EQ(start.AddDays(365), Date::FromYmd(1991, 1, 1));  // 1990 not leap
  EXPECT_EQ(start.AddDays(-1), Date::FromYmd(1989, 12, 31));
  EXPECT_EQ(start.AddDays(0), start);
}

class DateRoundTripTest : public ::testing::TestWithParam<int64_t> {};

TEST_P(DateRoundTripTest, DaysToCivilAndBack) {
  Date date(GetParam());
  Date rebuilt = Date::FromYmd(date.Year(), date.Month(), date.Day());
  EXPECT_EQ(rebuilt.DaysValue(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(SweepDays, DateRoundTripTest,
                         ::testing::Values(-100000, -365, -1, 0, 1, 59, 60, 365, 366,
                                           10000, 36524, 100000));

}  // namespace
}  // namespace tioga2::types
