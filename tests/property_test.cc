// Property-based tests: randomized round-trips and invariants across the
// expression language, program serialization, CSV, cameras, and grouping
// keys. All randomness is seeded per test-parameter, so failures reproduce.

#include <gtest/gtest.h>

#include <cmath>

#include "boxes/box_registry.h"
#include "boxes/program_io.h"
#include "common/rng.h"
#include "common/str_util.h"
#include "dataflow/engine.h"
#include "db/aggregates.h"
#include "db/csv.h"
#include "expr/expr.h"
#include "expr/optimizer.h"
#include "expr/parser.h"
#include "viewer/camera.h"

namespace tioga2 {
namespace {

using types::DataType;
using types::Value;

// ---------------------------------------------------------------------------
// Random expression round-trip and fold equivalence.
// ---------------------------------------------------------------------------

/// Generates a random well-typed numeric/boolean expression over attributes
/// n:int and x:float.
std::string RandomNumericExpr(Rng* rng, int depth) {
  if (depth <= 0) {
    switch (rng->NextBounded(4)) {
      case 0: return "n";
      case 1: return "x";
      case 2: return std::to_string(rng->NextBounded(100));
      default: return FormatDouble(static_cast<double>(rng->NextBounded(1000)) / 8.0);
    }
  }
  switch (rng->NextBounded(6)) {
    case 0:
      return "(" + RandomNumericExpr(rng, depth - 1) + " + " +
             RandomNumericExpr(rng, depth - 1) + ")";
    case 1:
      return "(" + RandomNumericExpr(rng, depth - 1) + " - " +
             RandomNumericExpr(rng, depth - 1) + ")";
    case 2:
      return "(" + RandomNumericExpr(rng, depth - 1) + " * " +
             RandomNumericExpr(rng, depth - 1) + ")";
    case 3:
      return "(" + RandomNumericExpr(rng, depth - 1) + " / " +
             RandomNumericExpr(rng, depth - 1) + ")";
    case 4:
      return "min(" + RandomNumericExpr(rng, depth - 1) + ", " +
             RandomNumericExpr(rng, depth - 1) + ")";
    default:
      return "if(" + RandomNumericExpr(rng, depth - 1) + " > " +
             RandomNumericExpr(rng, depth - 1) + ", " +
             RandomNumericExpr(rng, depth - 1) + ", " +
             RandomNumericExpr(rng, depth - 1) + ")";
  }
}

class RandomExprTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomExprTest, PrintParseRoundTripIsStable) {
  Rng rng(GetParam());
  for (int i = 0; i < 25; ++i) {
    std::string source = RandomNumericExpr(&rng, 3);
    auto first = expr::ParseExpr(source);
    ASSERT_TRUE(first.ok()) << source;
    std::string printed = expr::ExprToString(**first);
    auto second = expr::ParseExpr(printed);
    ASSERT_TRUE(second.ok()) << printed;
    EXPECT_EQ(printed, expr::ExprToString(**second)) << source;
  }
}

TEST_P(RandomExprTest, FoldingPreservesSemantics) {
  Rng rng(GetParam() * 31 + 7);
  expr::TypeEnv env = expr::MakeSchemaTypeEnv(
      {{"n", DataType::kInt}, {"x", DataType::kFloat}});
  for (int i = 0; i < 25; ++i) {
    std::string source = RandomNumericExpr(&rng, 3);
    expr::ExprNodePtr plain = expr::ParseExpr(source).value();
    auto analyzed = expr::AnalyzeExpr(plain.get(), env);
    ASSERT_TRUE(analyzed.ok()) << source;
    expr::ExprNodePtr folded = expr::CloneExpr(*plain);
    ASSERT_TRUE(expr::FoldConstants(folded.get()).ok());

    db::Tuple row{Value::Int(static_cast<int64_t>(rng.NextBounded(20)) - 10),
                  Value::Float(rng.Uniform(-5, 5))};
    expr::TupleAccessor accessor(row);
    Result<Value> a = expr::EvalExpr(*plain, accessor);
    Result<Value> b = expr::EvalExpr(*folded, accessor);
    ASSERT_EQ(a.ok(), b.ok()) << source;
    if (a.ok()) {
      if (a->is_null() || b->is_null()) {
        EXPECT_EQ(a->is_null(), b->is_null()) << source;
      } else if (a->is_float() || b->is_float()) {
        EXPECT_NEAR(a->AsDouble(), b->AsDouble(),
                    1e-9 * std::max(1.0, std::fabs(a->AsDouble())))
            << source;
      } else {
        EXPECT_TRUE(a->Equals(*b)) << source;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomExprTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ---------------------------------------------------------------------------
// Random program serialization round-trip.
// ---------------------------------------------------------------------------

/// Builds a random R -> R chain-with-branches program over a one-column
/// schema; every box type used here is parameterized validly.
dataflow::Graph RandomProgram(Rng* rng, size_t boxes) {
  dataflow::Graph graph;
  std::vector<std::string> relation_outputs;
  std::string table =
      graph.AddBox(boxes::MakeBox("Table", {{"table", "T"}}).value()).value();
  relation_outputs.push_back(table);
  for (size_t i = 0; i < boxes; ++i) {
    std::string from =
        relation_outputs[rng->NextBounded(relation_outputs.size())];
    std::string id;
    switch (rng->NextBounded(5)) {
      case 0:
        id = graph
                 .AddBox(boxes::MakeBox(
                             "Restrict",
                             {{"predicate",
                               "v > " + std::to_string(rng->NextBounded(10))}})
                             .value())
                 .value();
        break;
      case 1:
        id = graph
                 .AddBox(boxes::MakeBox("Sample",
                                        {{"probability", "0.5"},
                                         {"seed", std::to_string(rng->NextBounded(99))}})
                             .value())
                 .value();
        break;
      case 2:
        id = graph
                 .AddBox(boxes::MakeBox("Limit",
                                        {{"n", std::to_string(rng->NextBounded(20))}})
                             .value())
                 .value();
        break;
      case 3:
        id = graph
                 .AddBox(boxes::MakeBox("Sort", {{"column", "v"},
                                                 {"ascending", "true"}})
                             .value())
                 .value();
        break;
      default:
        id = graph.AddBox(boxes::MakeBox("Distinct", {}).value()).value();
        break;
    }
    EXPECT_TRUE(graph.Connect(from, 0, id, 0).ok());
    relation_outputs.push_back(id);
    if (rng->NextBounded(4) == 0) {
      EXPECT_TRUE(graph.SetBoxPosition(id, rng->Uniform(0, 500), rng->Uniform(0, 300))
                      .ok());
    }
  }
  return graph;
}

class RandomProgramTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomProgramTest, SerializationIsAFixedPoint) {
  Rng rng(GetParam());
  dataflow::Graph graph = RandomProgram(&rng, 12);
  std::string once = boxes::SerializeProgram(graph).value();
  dataflow::Graph loaded = boxes::DeserializeProgram(once).value();
  std::string twice = boxes::SerializeProgram(loaded).value();
  EXPECT_EQ(once, twice);
  EXPECT_EQ(graph.num_boxes(), loaded.num_boxes());
  EXPECT_EQ(graph.edges().size(), loaded.edges().size());
}

TEST_P(RandomProgramTest, LoadedProgramEvaluatesIdentically) {
  db::Catalog catalog;
  auto table = db::MakeRelation({db::Column{"v", DataType::kInt}},
                                {{Value::Int(1)},
                                 {Value::Int(2)},
                                 {Value::Int(3)},
                                 {Value::Int(4)},
                                 {Value::Int(5)},
                                 {Value::Int(6)}})
                   .value();
  ASSERT_TRUE(catalog.RegisterTable("T", table).ok());
  Rng rng(GetParam() + 1000);
  dataflow::Graph graph = RandomProgram(&rng, 10);
  dataflow::Graph loaded =
      boxes::DeserializeProgram(boxes::SerializeProgram(graph).value()).value();
  dataflow::Engine engine_a(&catalog);
  dataflow::Engine engine_b(&catalog);
  for (const std::string& id : graph.BoxIds()) {
    auto a = engine_a.Evaluate(graph, id, 0);
    auto b = engine_b.Evaluate(loaded, id, 0);
    ASSERT_EQ(a.ok(), b.ok()) << id;
    if (!a.ok()) continue;
    auto rel_a = display::AsRelation(std::get<display::Displayable>(*a)).value();
    auto rel_b = display::AsRelation(std::get<display::Displayable>(*b)).value();
    EXPECT_TRUE(db::RelationEquals(*rel_a.base(), *rel_b.base())) << id;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

// ---------------------------------------------------------------------------
// Camera projection properties.
// ---------------------------------------------------------------------------

class RandomCameraTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomCameraTest, ProjectionRoundTripsAndPreservesOrientation) {
  Rng rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    viewer::Camera camera(rng.Uniform(-1000, 1000), rng.Uniform(-1000, 1000),
                          rng.Uniform(0.01, 1000),
                          static_cast<int>(rng.NextBounded(1000)) + 8,
                          static_cast<int>(rng.NextBounded(1000)) + 8);
    double wx = rng.Uniform(-2000, 2000);
    double wy = rng.Uniform(-2000, 2000);
    double dx = 0;
    double dy = 0;
    camera.WorldToDevice(wx, wy, &dx, &dy);
    double bx = 0;
    double by = 0;
    camera.DeviceToWorld(dx, dy, &bx, &by);
    EXPECT_NEAR(bx, wx, 1e-6 * std::max(1.0, std::fabs(wx)));
    EXPECT_NEAR(by, wy, 1e-6 * std::max(1.0, std::fabs(wy)));
    // Moving up in the world moves up (smaller y) on the screen.
    double dy_above = 0;
    double unused = 0;
    camera.WorldToDevice(wx, wy + 1, &unused, &dy_above);
    EXPECT_LT(dy_above, dy);
    // The visible world always contains the camera center.
    EXPECT_TRUE(camera.VisibleWorld().Contains(camera.center_x(), camera.center_y()));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCameraTest, ::testing::Values(7, 77, 777));

// ---------------------------------------------------------------------------
// Grouping-key and CSV properties over random tuples.
// ---------------------------------------------------------------------------

Value RandomValue(Rng* rng, DataType type) {
  if (rng->NextBounded(8) == 0) return Value::Null();
  switch (type) {
    case DataType::kBool:
      return Value::Bool(rng->NextBounded(2) == 1);
    case DataType::kInt:
      return Value::Int(static_cast<int64_t>(rng->NextBounded(7)) - 3);
    case DataType::kFloat:
      return Value::Float(static_cast<double>(rng->NextBounded(5)) / 2.0);
    case DataType::kString:
      return Value::String(std::string(1, static_cast<char>('a' + rng->NextBounded(4))));
    case DataType::kDate:
      return Value::DateVal(types::Date(static_cast<int64_t>(rng->NextBounded(100))));
    default:
      return Value::Null();
  }
}

class RandomTupleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomTupleTest, TupleKeyAgreesWithEquality) {
  Rng rng(GetParam());
  const std::vector<DataType> kTypes = {DataType::kInt, DataType::kString,
                                        DataType::kFloat};
  std::vector<size_t> columns = {0, 1, 2};
  for (int i = 0; i < 200; ++i) {
    db::Tuple a;
    db::Tuple b;
    for (DataType type : kTypes) {
      a.push_back(RandomValue(&rng, type));
      b.push_back(RandomValue(&rng, type));
    }
    std::string key_a = db::TupleKey(a, columns).value();
    std::string key_b = db::TupleKey(b, columns).value();
    bool equal = true;
    for (size_t c = 0; c < a.size(); ++c) {
      if (!a[c].Equals(b[c])) equal = false;
    }
    EXPECT_EQ(equal, key_a == key_b);
  }
}

TEST_P(RandomTupleTest, CsvRoundTripsRandomRelations) {
  Rng rng(GetParam() * 13);
  const std::vector<db::Column> columns = {
      {"b", DataType::kBool},   {"i", DataType::kInt},  {"f", DataType::kFloat},
      {"s", DataType::kString}, {"d", DataType::kDate},
  };
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<db::Tuple> rows;
    size_t n = rng.NextBounded(12);
    for (size_t r = 0; r < n; ++r) {
      db::Tuple row;
      for (const db::Column& column : columns) {
        row.push_back(RandomValue(&rng, column.type));
      }
      rows.push_back(std::move(row));
    }
    auto relation = db::MakeRelation(columns, rows).value();
    auto parsed = db::RelationFromCsv(db::RelationToCsv(*relation).value());
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EXPECT_TRUE(db::RelationEquals(*relation, **parsed));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTupleTest, ::testing::Values(3, 33, 333));

}  // namespace
}  // namespace tioga2
