#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/str_util.h"

namespace tioga2 {
namespace {

TEST(StrSplitTest, BasicSplit) {
  EXPECT_EQ(StrSplit("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(StrSplitTest, EmptyPiecesPreserved) {
  EXPECT_EQ(StrSplit(",a,,b,", ','),
            (std::vector<std::string>{"", "a", "", "b", ""}));
}

TEST(StrSplitTest, EmptyInputYieldsOneEmptyPiece) {
  EXPECT_EQ(StrSplit("", ','), (std::vector<std::string>{""}));
}

TEST(StrJoinTest, RoundTripsWithSplit) {
  std::vector<std::string> pieces{"x", "y", "z"};
  EXPECT_EQ(StrJoin(pieces, ","), "x,y,z");
  EXPECT_EQ(StrSplit(StrJoin(pieces, ","), ','), pieces);
}

TEST(StrJoinTest, EmptyAndSingle) {
  EXPECT_EQ(StrJoin({}, ","), "");
  EXPECT_EQ(StrJoin({"only"}, ","), "only");
}

TEST(StripWhitespaceTest, StripsBothEnds) {
  EXPECT_EQ(StripWhitespace("  hello \t\n"), "hello");
  EXPECT_EQ(StripWhitespace("word"), "word");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace(" a b "), "a b");
}

TEST(StartsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("inner.param", "inner."));
  EXPECT_FALSE(StartsWith("inner", "inner."));
  EXPECT_TRUE(StartsWith("anything", ""));
}

TEST(AsciiToLowerTest, LowersOnlyAscii) {
  EXPECT_EQ(AsciiToLower("MiXeD 123"), "mixed 123");
}

TEST(FormatDoubleTest, IntegralValuesHaveNoFraction) {
  EXPECT_EQ(FormatDouble(3.0), "3");
  EXPECT_EQ(FormatDouble(-42.0), "-42");
  EXPECT_EQ(FormatDouble(0.0), "0");
}

TEST(FormatDoubleTest, FractionsKeepPrecision) {
  EXPECT_EQ(FormatDouble(3.25), "3.25");
  EXPECT_EQ(FormatDouble(0.125), "0.125");
}

TEST(FormatDoubleTest, RoundTripsExactly) {
  for (double v : {0.1, 1.0 / 3.0, 3456.789123456789, -2.2250738585072014e-308,
                   1.7976931348623157e308, 6.02214076e23}) {
    std::string text = FormatDouble(v);
    EXPECT_EQ(std::strtod(text.c_str(), nullptr), v) << text;
  }
}

TEST(FormatDoubleTest, SpecialValues) {
  EXPECT_EQ(FormatDouble(std::numeric_limits<double>::infinity()), "inf");
  EXPECT_EQ(FormatDouble(-std::numeric_limits<double>::infinity()), "-inf");
  EXPECT_EQ(FormatDouble(std::numeric_limits<double>::quiet_NaN()), "nan");
}

TEST(QuoteStringTest, RoundTrip) {
  for (const std::string& input :
       {std::string("plain"), std::string(""), std::string("with \"quotes\""),
        std::string("back\\slash"), std::string("new\nline"),
        std::string("all \"of\\it\"\n")}) {
    std::string quoted = QuoteString(input);
    std::string decoded;
    ASSERT_TRUE(UnquoteString(quoted, &decoded)) << quoted;
    EXPECT_EQ(decoded, input);
  }
}

TEST(QuoteStringTest, MalformedInputsRejected) {
  std::string out;
  EXPECT_FALSE(UnquoteString("noquotes", &out));
  EXPECT_FALSE(UnquoteString("\"unterminated", &out));
  EXPECT_FALSE(UnquoteString("\"bad\\x\"", &out));
  EXPECT_FALSE(UnquoteString("\"inner\"quote\"", &out));
  EXPECT_FALSE(UnquoteString("\"dangling\\\"", &out));
  EXPECT_FALSE(UnquoteString("", &out));
  EXPECT_FALSE(UnquoteString("\"", &out));
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  EXPECT_NE(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, ZeroSeedIsUsable) {
  Rng rng(0);
  EXPECT_NE(rng.NextUint64(), 0u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.Uniform(-3.0, 5.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(RngTest, NextBoundedCoversRange) {
  Rng rng(11);
  bool seen[5] = {false, false, false, false, false};
  for (int i = 0; i < 200; ++i) {
    uint64_t v = rng.NextBounded(5);
    ASSERT_LT(v, 5u);
    seen[v] = true;
  }
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(RngTest, RoughlyUniformMean) {
  Rng rng(2024);
  double sum = 0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / kSamples, 0.5, 0.02);
}

}  // namespace
}  // namespace tioga2
