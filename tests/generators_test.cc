// Tests for the synthetic demo datasets substituting the paper's Louisiana
// weather data (see DESIGN.md §1).

#include <gtest/gtest.h>

#include <set>

#include "data/generators.h"
#include "db/operators.h"

namespace tioga2::data {
namespace {

TEST(StationsTest, NamedLouisianaStationsPresent) {
  auto stations = MakeStations(/*extra_stations=*/50, 7).value();
  EXPECT_EQ(stations->num_rows(), 15u + 50u);
  auto la = db::Restrict(stations, "state = \"LA\"").value();
  EXPECT_GE(la->num_rows(), 15u);
  auto nola = db::Restrict(stations, "name = \"NEW ORLEANS\"").value();
  ASSERT_EQ(nola->num_rows(), 1u);
  size_t lon = nola->schema()->ColumnIndex("longitude").value();
  size_t lat = nola->schema()->ColumnIndex("latitude").value();
  EXPECT_NEAR(nola->at(0, lon).float_value(), -90.08, 0.01);
  EXPECT_NEAR(nola->at(0, lat).float_value(), 29.95, 0.01);
}

TEST(StationsTest, DeterministicAndUniqueIds) {
  auto a = MakeStations(30, 9).value();
  auto b = MakeStations(30, 9).value();
  EXPECT_TRUE(db::RelationEquals(*a, *b));
  auto c = MakeStations(30, 10).value();
  EXPECT_FALSE(db::RelationEquals(*a, *c));
  std::set<int64_t> ids;
  for (size_t r = 0; r < a->num_rows(); ++r) ids.insert(a->at(r, 0).int_value());
  EXPECT_EQ(ids.size(), a->num_rows());
}

TEST(StationsTest, CoordinatesInContinentalRange) {
  auto stations = MakeStations(200, 3).value();
  size_t lon = stations->schema()->ColumnIndex("longitude").value();
  size_t lat = stations->schema()->ColumnIndex("latitude").value();
  for (size_t r = 0; r < stations->num_rows(); ++r) {
    EXPECT_GE(stations->at(r, lon).float_value(), -125.0);
    EXPECT_LE(stations->at(r, lon).float_value(), -69.0);
    EXPECT_GE(stations->at(r, lat).float_value(), 25.0);
    EXPECT_LE(stations->at(r, lat).float_value(), 49.0);
  }
}

TEST(ObservationsTest, OneRowPerStationPerDay) {
  auto stations = MakeStations(5, 7).value();
  auto obs = MakeObservations(*stations, types::Date::FromYmd(1985, 1, 1), 10, 8)
                 .value();
  EXPECT_EQ(obs->num_rows(), stations->num_rows() * 10);
}

TEST(ObservationsTest, TemperaturesSeasonalAndPlausible) {
  auto stations = MakeStations(0, 7).value();  // Louisiana only
  auto obs = MakeObservations(*stations, types::Date::FromYmd(1985, 1, 1), 365, 8)
                 .value();
  size_t temp = obs->schema()->ColumnIndex("temperature").value();
  size_t date = obs->schema()->ColumnIndex("obs_date").value();
  double january_sum = 0;
  int january_count = 0;
  double july_sum = 0;
  int july_count = 0;
  for (size_t r = 0; r < obs->num_rows(); ++r) {
    double t = obs->at(r, temp).float_value();
    EXPECT_GT(t, -30.0);
    EXPECT_LT(t, 120.0);
    int month = obs->at(r, date).date_value().Month();
    if (month == 1) {
      january_sum += t;
      ++january_count;
    } else if (month == 7) {
      july_sum += t;
      ++july_count;
    }
  }
  ASSERT_GT(january_count, 0);
  ASSERT_GT(july_count, 0);
  // Louisiana summers are hotter than winters by a wide margin.
  EXPECT_GT(july_sum / july_count, january_sum / january_count + 15.0);
}

TEST(ObservationsTest, PrecipitationNonNegativeAndBursty) {
  auto stations = MakeStations(0, 7).value();
  auto obs = MakeObservations(*stations, types::Date::FromYmd(1985, 1, 1), 200, 8)
                 .value();
  size_t precip = obs->schema()->ColumnIndex("precipitation").value();
  size_t dry = 0;
  for (size_t r = 0; r < obs->num_rows(); ++r) {
    double p = obs->at(r, precip).float_value();
    EXPECT_GE(p, 0.0);
    if (p == 0.0) ++dry;
  }
  // Most days are dry, but not all.
  EXPECT_GT(dry, obs->num_rows() / 3);
  EXPECT_LT(dry, obs->num_rows());
}

TEST(LouisianaMapTest, ClosedOutlineOfSegments) {
  auto map = MakeLouisianaMap().value();
  EXPECT_GT(map->num_rows(), 20u);
  // Segments chain: each row's endpoint is the next row's start.
  for (size_t r = 0; r + 1 < map->num_rows(); ++r) {
    double end_x = map->at(r, 0).float_value() + map->at(r, 2).float_value();
    double end_y = map->at(r, 1).float_value() + map->at(r, 3).float_value();
    EXPECT_NEAR(end_x, map->at(r + 1, 0).float_value(), 1e-9);
    EXPECT_NEAR(end_y, map->at(r + 1, 1).float_value(), 1e-9);
  }
  // The outline closes on itself.
  size_t last = map->num_rows() - 1;
  double close_x = map->at(last, 0).float_value() + map->at(last, 2).float_value();
  double close_y = map->at(last, 1).float_value() + map->at(last, 3).float_value();
  EXPECT_NEAR(close_x, map->at(0, 0).float_value(), 1e-9);
  EXPECT_NEAR(close_y, map->at(0, 1).float_value(), 1e-9);
}

TEST(EmployeesTest, DepartmentsAndSalaries) {
  auto employees = MakeEmployees(200, 5).value();
  EXPECT_EQ(employees->num_rows(), 200u);
  size_t dept = employees->schema()->ColumnIndex("department").value();
  size_t salary = employees->schema()->ColumnIndex("salary").value();
  std::set<std::string> departments;
  for (size_t r = 0; r < employees->num_rows(); ++r) {
    departments.insert(employees->at(r, dept).string_value());
    EXPECT_GE(employees->at(r, salary).float_value(), 2000.0);
    EXPECT_LE(employees->at(r, salary).float_value(), 10000.0);
  }
  EXPECT_EQ(departments.size(), 4u);  // shoe, toy, candy, hardware
  // The §7.4 salary partition has members on both sides.
  EXPECT_GT(db::Restrict(employees, "salary <= 5000").value()->num_rows(), 0u);
  EXPECT_GT(db::Restrict(employees, "salary > 5000").value()->num_rows(), 0u);
}

TEST(LoadDemoDataTest, RegistersAllTables) {
  db::Catalog catalog;
  ASSERT_TRUE(LoadDemoData(&catalog, 10, 5, 1).ok());
  EXPECT_EQ(catalog.ListTables(),
            (std::vector<std::string>{"Employees", "LouisianaMap", "Observations",
                                      "Stations"}));
  // Loading twice collides.
  EXPECT_TRUE(LoadDemoData(&catalog, 10, 5, 1).IsAlreadyExists());
}

}  // namespace
}  // namespace tioga2::data
