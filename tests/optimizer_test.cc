// Tests for the constant-folding optimizer and its interaction with
// CompiledExpr semantics.

#include <gtest/gtest.h>

#include "db/relation.h"
#include "expr/expr.h"
#include "expr/optimizer.h"
#include "expr/parser.h"

namespace tioga2::expr {
namespace {

using types::DataType;
using types::Value;

class OptimizerTest : public ::testing::Test {
 protected:
  OptimizerTest()
      : env_(MakeSchemaTypeEnv({{"n", DataType::kInt}, {"s", DataType::kString}})),
        row_{Value::Int(5), Value::String("x")},
        accessor_(row_) {}

  /// Parses + analyzes without folding.
  ExprNodePtr Analyzed(const std::string& source) {
    ExprNodePtr ast = ParseExpr(source).value();
    EXPECT_TRUE(AnalyzeExpr(ast.get(), env_).ok());
    return ast;
  }

  TypeEnv env_;
  db::Tuple row_;
  TupleAccessor accessor_;
};

TEST_F(OptimizerTest, FoldsPureArithmetic) {
  ExprNodePtr ast = Analyzed("1 + 2 * 3");
  size_t folded = FoldConstants(ast.get()).value();
  EXPECT_GE(folded, 2u);
  ASSERT_EQ(ast->kind, ExprNode::Kind::kLiteral);
  EXPECT_EQ(ast->literal.int_value(), 7);
  EXPECT_EQ(ast->result_type, DataType::kInt);
}

TEST_F(OptimizerTest, FoldsOnlyConstantSubtrees) {
  ExprNodePtr ast = Analyzed("n + (2 * 3)");
  FoldConstants(ast.get()).value();
  ASSERT_EQ(ast->kind, ExprNode::Kind::kBinary);
  EXPECT_EQ(ast->children[0]->kind, ExprNode::Kind::kAttributeRef);
  ASSERT_EQ(ast->children[1]->kind, ExprNode::Kind::kLiteral);
  EXPECT_EQ(ast->children[1]->literal.int_value(), 6);
  // Semantics unchanged.
  EXPECT_EQ(EvalExpr(*ast, accessor_)->int_value(), 11);
}

TEST_F(OptimizerTest, FoldsCallsIncludingZeroArg) {
  ExprNodePtr call = Analyzed("lerp_color(\"#000000\", \"#ffffff\", 0.5)");
  FoldConstants(call.get()).value();
  EXPECT_EQ(call->kind, ExprNode::Kind::kLiteral);
  EXPECT_TRUE(call->literal.is_string());

  ExprNodePtr zero_arg = Analyzed("point()");
  FoldConstants(zero_arg.get()).value();
  EXPECT_EQ(zero_arg->kind, ExprNode::Kind::kLiteral);
  EXPECT_TRUE(zero_arg->literal.is_display());
}

TEST_F(OptimizerTest, FoldsIfAndBooleans) {
  ExprNodePtr ast = Analyzed("if(1 < 2, 10, 20)");
  FoldConstants(ast.get()).value();
  ASSERT_EQ(ast->kind, ExprNode::Kind::kLiteral);
  EXPECT_EQ(ast->literal.int_value(), 10);

  ExprNodePtr boolean = Analyzed("true and not false");
  FoldConstants(boolean.get()).value();
  ASSERT_EQ(boolean->kind, ExprNode::Kind::kLiteral);
  EXPECT_TRUE(boolean->literal.bool_value());
}

TEST_F(OptimizerTest, DivisionByZeroFoldsToNull) {
  // Matches evaluation-time semantics exactly.
  ExprNodePtr ast = Analyzed("1 / 0");
  FoldConstants(ast.get()).value();
  ASSERT_EQ(ast->kind, ExprNode::Kind::kLiteral);
  EXPECT_TRUE(ast->literal.is_null());
}

TEST_F(OptimizerTest, FailingConstantLeftForRuntime) {
  // A bad color string: folding must not turn a per-tuple error into a
  // compile error; the node stays a call.
  ExprNodePtr ast = Analyzed("circle(1, \"notacolor\")");
  FoldConstants(ast.get()).value();
  EXPECT_EQ(ast->kind, ExprNode::Kind::kCall);
  EXPECT_TRUE(EvalExpr(*ast, accessor_).status().IsInvalidArgument());
}

TEST_F(OptimizerTest, AttributeRefsNeverFold) {
  ExprNodePtr ast = Analyzed("n");
  EXPECT_EQ(FoldConstants(ast.get()).value(), 0u);
  EXPECT_EQ(ast->kind, ExprNode::Kind::kAttributeRef);
}

TEST_F(OptimizerTest, CompileFoldsTransparently) {
  CompiledExpr compiled =
      CompiledExpr::Compile("n + 60 * 60 * 24", env_).value();
  // The folded constant is invisible except through the root shape.
  EXPECT_EQ(compiled.Eval(accessor_)->int_value(), 5 + 86400);
  EXPECT_EQ(compiled.root().children[1]->kind, ExprNode::Kind::kLiteral);
  // The original source is preserved for serialization.
  EXPECT_EQ(compiled.source(), "n + 60 * 60 * 24");
}

class FoldEquivalenceTest : public ::testing::TestWithParam<const char*> {};

TEST_P(FoldEquivalenceTest, FoldedAndUnfoldedAgree) {
  TypeEnv env = MakeSchemaTypeEnv(
      {{"n", DataType::kInt}, {"x", DataType::kFloat}, {"s", DataType::kString}});
  db::Tuple row{Value::Int(7), Value::Float(2.5), Value::String("Tioga")};
  TupleAccessor accessor(row);

  ExprNodePtr plain = ParseExpr(GetParam()).value();
  ASSERT_TRUE(AnalyzeExpr(plain.get(), env).ok());
  ExprNodePtr folded = CloneExpr(*plain);
  ASSERT_TRUE(FoldConstants(folded.get()).ok());

  Result<Value> a = EvalExpr(*plain, accessor);
  Result<Value> b = EvalExpr(*folded, accessor);
  ASSERT_EQ(a.ok(), b.ok()) << GetParam();
  if (a.ok()) {
    EXPECT_TRUE(a->Equals(*b)) << GetParam() << ": " << a->ToString() << " vs "
                               << b->ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Expressions, FoldEquivalenceTest,
    ::testing::Values("1 + 2 * n", "x * (3.0 / 4.0)", "min(2, 3) + n",
                      "if(n > 0, 1 + 1, 2 + 2)", "s + (\"a\" + \"b\")",
                      "sqrt(16.0) + x", "circle(1 + 1) + point()",
                      "lerp_color(\"#000000\", \"#ffffff\", 0.25)",
                      "coalesce(null, 5) + n", "abs(-3) * abs(3)",
                      "date(\"1990-01-01\") + (10 + 20)",
                      "not (1 > 2) and n > 0"));

}  // namespace
}  // namespace tioga2::expr
