// Join correctness and determinism: typed key hashing (the old text-keyed
// HashKey had UB on out-of-int64-range doubles and collided distinct float
// keys), the left-major ordering contract across build-side flips, and
// byte-identity of the columnar join/view path against the scalar row-store
// oracle — per-operator and over the full figure programs (stamps and
// fingerprints).

#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "boxes/relational_boxes.h"
#include "db/operators.h"
#include "expr/batch.h"
#include "testing/fig_programs.h"
#include "tioga2/environment.h"

namespace tioga2::db {
namespace {

using types::DataType;
using types::Value;

const ExecPolicy kScalar{false};
const ExecPolicy kVectorized{true};

constexpr size_t kAllRows = 1u << 20;

RelationPtr IntKeyed(const char* key_name, std::vector<std::optional<int64_t>> keys) {
  RelationBuilder builder(std::make_shared<const Schema>(
      Schema::Make({Column{key_name, DataType::kInt}, Column{std::string(key_name) + "_tag", DataType::kInt}})
          .value()));
  int64_t tag = 0;
  for (const auto& key : keys) {
    builder.AddRowUnchecked(
        Tuple{key.has_value() ? Value::Int(*key) : Value::Null(), Value::Int(tag++)});
  }
  return builder.Build();
}

RelationPtr FloatKeyed(const char* key_name, std::vector<std::optional<double>> keys) {
  RelationBuilder builder(std::make_shared<const Schema>(
      Schema::Make({Column{key_name, DataType::kFloat}, Column{std::string(key_name) + "_tag", DataType::kInt}})
          .value()));
  int64_t tag = 0;
  for (const auto& key : keys) {
    builder.AddRowUnchecked(
        Tuple{key.has_value() ? Value::Float(*key) : Value::Null(), Value::Int(tag++)});
  }
  return builder.Build();
}

/// Joins under both policies, checks the two results are byte-identical
/// (schema, order, every cell), and returns the scalar one.
JoinResult JoinBothPaths(const RelationPtr& left, const RelationPtr& right,
                         const std::string& predicate) {
  auto scalar = Join(left, right, predicate, kScalar);
  auto vectorized = Join(left, right, predicate, kVectorized);
  EXPECT_TRUE(scalar.ok()) << scalar.status().ToString();
  EXPECT_TRUE(vectorized.ok()) << vectorized.status().ToString();
  EXPECT_EQ(scalar->algorithm, vectorized->algorithm);
  EXPECT_TRUE(RelationEquals(*scalar->relation, *vectorized->relation));
  EXPECT_EQ(scalar->relation->ToString(kAllRows), vectorized->relation->ToString(kAllRows));
  return std::move(*scalar);
}

TEST(JoinHashKeyTest, NullKeysNeverJoinEitherPath) {
  // Null-null must not match either (SQL semantics), in both hash paths and
  // both nested-loop paths.
  RelationPtr left = IntKeyed("a", {1, std::nullopt, 3, std::nullopt});
  RelationPtr right = IntKeyed("b", {std::nullopt, 3, std::nullopt, 1});
  JoinResult hash = JoinBothPaths(left, right, "a = b");
  EXPECT_EQ(hash.algorithm, JoinAlgorithm::kHash);
  EXPECT_EQ(hash.relation->num_rows(), 2u);

  auto nested_scalar = NestedLoopJoin(left, right, "a = b", kScalar);
  auto nested_vec = NestedLoopJoin(left, right, "a = b", kVectorized);
  ASSERT_TRUE(nested_scalar.ok());
  ASSERT_TRUE(nested_vec.ok());
  EXPECT_EQ((*nested_scalar)->num_rows(), 2u);
  EXPECT_EQ((*nested_scalar)->ToString(kAllRows), (*nested_vec)->ToString(kAllRows));
  // The hash join and the nested loop agree row-for-row (both left-major).
  EXPECT_EQ(hash.relation->ToString(kAllRows), (*nested_scalar)->ToString(kAllRows));
}

TEST(JoinHashKeyTest, IntAndFloatKeysUnify) {
  // 2 joins 2.0 (Value::Equals semantics), on both paths.
  RelationPtr left = IntKeyed("a", {2, 5, 7});
  RelationPtr right = FloatKeyed("b", {2.0, 7.0, 2.0, 6.5});
  JoinResult result = JoinBothPaths(left, right, "a = b");
  EXPECT_EQ(result.algorithm, JoinAlgorithm::kHash);
  ASSERT_EQ(result.relation->num_rows(), 3u);
  // Left-major: left row 0 (key 2) matches right rows 0 and 2, then left
  // row 2 (key 7) matches right row 1.
  EXPECT_EQ(result.relation->at(0, 1).int_value(), 0);  // a_tag
  EXPECT_EQ(result.relation->at(0, 3).int_value(), 0);  // b_tag
  EXPECT_EQ(result.relation->at(1, 1).int_value(), 0);
  EXPECT_EQ(result.relation->at(1, 3).int_value(), 2);
  EXPECT_EQ(result.relation->at(2, 1).int_value(), 2);
  EXPECT_EQ(result.relation->at(2, 3).int_value(), 1);
}

TEST(JoinHashKeyTest, OutOfInt64RangeDoubleKeysAreWellDefined) {
  // The old HashKey evaluated `d == static_cast<int64_t>(d)` — undefined
  // behavior for 1e30. The typed hash must handle the full double range
  // (this test runs under the UBSan pass in scripts/check.sh).
  RelationPtr left = FloatKeyed("a", {1e30, -1e30, 1e-30, 4.0});
  RelationPtr right = FloatKeyed("b", {-1e30, 1e30, 4.0, 1e300});
  JoinResult result = JoinBothPaths(left, right, "a = b");
  EXPECT_EQ(result.algorithm, JoinAlgorithm::kHash);
  ASSERT_EQ(result.relation->num_rows(), 3u);
  EXPECT_EQ(result.relation->at(0, 1).int_value(), 0);  // 1e30 ↔ right row 1
  EXPECT_EQ(result.relation->at(0, 3).int_value(), 1);
  EXPECT_EQ(result.relation->at(1, 1).int_value(), 1);  // -1e30 ↔ right row 0
  EXPECT_EQ(result.relation->at(1, 3).int_value(), 0);
  EXPECT_EQ(result.relation->at(2, 1).int_value(), 3);  // 4.0 ↔ right row 2
  EXPECT_EQ(result.relation->at(2, 3).int_value(), 2);
}

TEST(JoinHashKeyTest, DistinctFloatKeysCloserThanSixDigitsDoNotJoin) {
  // std::to_string(double) keeps six fractional digits, so the old text key
  // mapped these three distinct keys to the same string.
  RelationPtr left = FloatKeyed("a", {0.1234561, 0.1234562});
  RelationPtr right = FloatKeyed("b", {0.1234562, 0.1234563});
  JoinResult result = JoinBothPaths(left, right, "a = b");
  ASSERT_EQ(result.relation->num_rows(), 1u);
  EXPECT_EQ(result.relation->at(0, 1).int_value(), 1);
  EXPECT_EQ(result.relation->at(0, 3).int_value(), 0);
}

TEST(JoinHashKeyTest, NegativeZeroJoinsPositiveZero) {
  // -0.0 == 0.0, so they must hash identically too.
  RelationPtr left = FloatKeyed("a", {-0.0});
  RelationPtr right = FloatKeyed("b", {0.0});
  JoinResult result = JoinBothPaths(left, right, "a = b");
  EXPECT_EQ(result.relation->num_rows(), 1u);
}

TEST(JoinHashKeyTest, CollisionChainsResolveByRealEquality) {
  // Enough keys that bucket chains mix distinct key values; the full-hash
  // guard plus the equality fallback must produce the exact multiset of
  // matches. Expected count: sum over k of count_left(k) * count_right(k).
  std::vector<std::optional<int64_t>> left_keys, right_keys;
  std::map<int64_t, size_t> left_count, right_count;
  for (size_t i = 0; i < 3000; ++i) {
    int64_t kl = static_cast<int64_t>((i * 7919) % 401);
    int64_t kr = static_cast<int64_t>((i * 104729) % 401);
    left_keys.push_back(kl);
    right_keys.push_back(kr);
    ++left_count[kl];
    ++right_count[kr];
  }
  size_t expected = 0;
  for (const auto& [k, n] : left_count) {
    auto it = right_count.find(k);
    if (it != right_count.end()) expected += n * it->second;
  }
  RelationPtr left = IntKeyed("a", left_keys);
  RelationPtr right = IntKeyed("b", right_keys);
  JoinResult result = JoinBothPaths(left, right, "a = b");
  EXPECT_EQ(result.algorithm, JoinAlgorithm::kHash);
  EXPECT_EQ(result.relation->num_rows(), expected);
}

RelationPtr StringKeyed(const char* key_name,
                        std::vector<std::optional<std::string>> keys) {
  RelationBuilder builder(std::make_shared<const Schema>(
      Schema::Make({Column{key_name, DataType::kString},
                    Column{std::string(key_name) + "_tag", DataType::kInt}})
          .value()));
  int64_t tag = 0;
  for (const auto& key : keys) {
    builder.AddRowUnchecked(Tuple{
        key.has_value() ? Value::String(*key) : Value::Null(), Value::Int(tag++)});
  }
  return builder.Build();
}

/// Pins ExecPolicy::dict_encode while relations are built (dictionaries are
/// created at columnar materialization).
class DictGuard {
 public:
  explicit DictGuard(bool dict_encode) : saved_(DefaultExecPolicy()) {
    ExecPolicy policy = saved_;
    policy.dict_encode = dict_encode;
    SetDefaultExecPolicy(policy);
  }
  ~DictGuard() { SetDefaultExecPolicy(saved_); }

 private:
  ExecPolicy saved_;
};

// ---- Dictionary-encoded string keys ----------------------------------------
// The vectorized hash join hashes dictionary codes instead of string bytes
// when both key columns are encoded (db/operators.cc). A self-join shares one
// dictionary and compares codes directly; two independently built relations
// have different dictionaries, so build codes are remapped into probe code
// space by binary search. Either way the scalar string-hashing oracle defines
// the output bytes.

TEST(JoinDictKeyTest, SharedDictionarySelfJoinComparesCodesDirectly) {
  RelationPtr rel =
      StringKeyed("a", {"x", "y", std::nullopt, "x", "z", std::nullopt});
  const uint64_t fallbacks_before =
      expr::BatchMetrics::Global().dict_remap_fallbacks.load();
  JoinResult result = JoinBothPaths(rel, rel, "a = a_2");
  EXPECT_EQ(result.algorithm, JoinAlgorithm::kHash);
  // x matches x twice each way (4), y and z match themselves; nulls never.
  EXPECT_EQ(result.relation->num_rows(), 6u);
  EXPECT_EQ(expr::BatchMetrics::Global().dict_remap_fallbacks.load(),
            fallbacks_before);
}

TEST(JoinDictKeyTest, DifferentDictionariesRemapBuildCodesToProbeSpace) {
  // Partially overlapping alphabets with the encoding edge cases: the empty
  // string, an embedded NUL byte, values private to each side, and nulls.
  const std::string nul_key("k\0key", 5);
  RelationPtr left = StringKeyed(
      "a", {"apple", "", std::nullopt, nul_key, "pear", "apple"});
  RelationPtr right = StringKeyed(
      "b", {"pear", "quince", "", std::nullopt, nul_key, "apple"});
  JoinResult result = JoinBothPaths(left, right, "a = b");
  EXPECT_EQ(result.algorithm, JoinAlgorithm::kHash);
  // apple×1 twice, ""×1, nul×1, pear×1; "quince" and the nulls drop.
  EXPECT_EQ(result.relation->num_rows(), 5u);
}

TEST(JoinDictKeyTest, RemapChainsResolveTheExactMatchMultiset) {
  // Enough rows that code-hash bucket chains mix distinct keys, with the two
  // sides drawing from offset alphabet windows so the remap table contains
  // both mapped and unmapped build codes.
  std::vector<std::optional<std::string>> left_keys, right_keys;
  std::map<std::string, size_t> left_count, right_count;
  for (size_t i = 0; i < 3000; ++i) {
    std::string kl = "cat" + std::to_string((i * 7919) % 60);        // cat0..59
    std::string kr = "cat" + std::to_string(30 + (i * 104729) % 60); // cat30..89
    left_keys.push_back(kl);
    right_keys.push_back(kr);
    ++left_count[kl];
    ++right_count[kr];
  }
  size_t expected = 0;
  for (const auto& [k, n] : left_count) {
    auto it = right_count.find(k);
    if (it != right_count.end()) expected += n * it->second;
  }
  RelationPtr left = StringKeyed("a", left_keys);
  RelationPtr right = StringKeyed("b", right_keys);
  JoinResult result = JoinBothPaths(left, right, "a = b");
  EXPECT_EQ(result.algorithm, JoinAlgorithm::kHash);
  EXPECT_EQ(result.relation->num_rows(), expected);
}

TEST(JoinDictKeyTest, UnencodedStringKeysFallBackToStringHashingAndCount) {
  DictGuard guard(/*dict_encode=*/false);
  RelationPtr left = StringKeyed("a", {"x", "y", "z", "x"});
  RelationPtr right = StringKeyed("b", {"y", "x", "w"});
  const uint64_t fallbacks_before =
      expr::BatchMetrics::Global().dict_remap_fallbacks.load();
  JoinResult result = JoinBothPaths(left, right, "a = b");
  EXPECT_EQ(result.algorithm, JoinAlgorithm::kHash);
  EXPECT_EQ(result.relation->num_rows(), 3u);
  EXPECT_GT(expr::BatchMetrics::Global().dict_remap_fallbacks.load(),
            fallbacks_before);
}

TEST(JoinOrderTest, LeftMajorOrderSurvivesCardinalityFlip) {
  // The planner builds on the smaller side. Growing the left input past the
  // right with non-matching rows flips the build side — the matching rows
  // must come out in exactly the same (left-major) order regardless.
  std::vector<std::optional<int64_t>> small_left = {1, 2, 3};
  RelationPtr right = IntKeyed("b", {3, 2, 1, 2, 9});

  RelationPtr left_small = IntKeyed("a", small_left);  // 3 < 5: build = left
  ASSERT_LT(left_small->num_rows(), right->num_rows());
  JoinResult before = JoinBothPaths(left_small, right, "a = b");

  std::vector<std::optional<int64_t>> big_left = small_left;
  for (int64_t k = 100; k < 104; ++k) big_left.push_back(k);  // no matches
  RelationPtr left_big = IntKeyed("a", big_left);  // 7 > 5: build = right
  ASSERT_GT(left_big->num_rows(), right->num_rows());
  JoinResult after = JoinBothPaths(left_big, right, "a = b");

  EXPECT_EQ(before.algorithm, JoinAlgorithm::kHash);
  EXPECT_EQ(after.algorithm, JoinAlgorithm::kHash);
  // Same matches, same order, independent of which side was built.
  EXPECT_EQ(before.relation->ToString(kAllRows), after.relation->ToString(kAllRows));

  // And that order is left-major: sorted by left row, ties by right row.
  ASSERT_EQ(before.relation->num_rows(), 4u);
  const std::vector<std::pair<int64_t, int64_t>> expected = {
      {0, 2}, {1, 1}, {1, 3}, {2, 0}};  // (a_tag, b_tag)
  for (size_t r = 0; r < expected.size(); ++r) {
    EXPECT_EQ(before.relation->at(r, 1).int_value(), expected[r].first) << r;
    EXPECT_EQ(before.relation->at(r, 3).int_value(), expected[r].second) << r;
  }
}

TEST(JoinOrderTest, NestedLoopMatchesHashOrderOnEquiJoin) {
  // The nested loop is trivially left-major; the hash join must agree with
  // it on an equi-join whichever side it builds on.
  RelationPtr left = IntKeyed("a", {5, 1, 5, 2});
  RelationPtr right = IntKeyed("b", {5, 2, 5, 1, 5, 7});
  JoinResult hash = JoinBothPaths(left, right, "a = b");
  auto nested = NestedLoopJoin(left, right, "a = b", kScalar);
  ASSERT_TRUE(nested.ok());
  EXPECT_EQ(hash.relation->ToString(kAllRows), (*nested)->ToString(kAllRows));
}

TEST(JoinVectorizedTest, NonEquiPredicateBatchesMatchScalar) {
  RelationPtr left = IntKeyed("a", {1, 4, 9, std::nullopt});
  RelationPtr right = IntKeyed("b", {2, 3, 5, 8, std::nullopt});
  JoinResult result = JoinBothPaths(left, right, "a < b");
  EXPECT_EQ(result.algorithm, JoinAlgorithm::kNestedLoop);
  EXPECT_EQ(result.relation->num_rows(), 4u + 2u + 0u);  // 1<{2,3,5,8}, 4<{5,8}
}

TEST(JoinVectorizedTest, ColumnarJoinEmitsViewWithSharedValues) {
  RelationPtr left = IntKeyed("a", {1, 2});
  RelationPtr right = IntKeyed("b", {2, 1, 2});
  auto vectorized = Join(left, right, "a = b", kVectorized);
  ASSERT_TRUE(vectorized.ok());
  EXPECT_TRUE(vectorized->relation->is_view());
  auto scalar = Join(left, right, "a = b", kScalar);
  ASSERT_TRUE(scalar.ok());
  EXPECT_FALSE(scalar->relation->is_view());
  // The view is value-transparent: cell access, row materialization and the
  // columnar gather all agree with the materialized oracle.
  EXPECT_TRUE(RelationEquals(*vectorized->relation, *scalar->relation));
  for (size_t r = 0; r < scalar->relation->num_rows(); ++r) {
    ASSERT_EQ(vectorized->relation->row(r).size(), scalar->relation->row(r).size());
    for (size_t c = 0; c < scalar->relation->num_columns(); ++c) {
      EXPECT_TRUE(vectorized->relation->columnar().column(c).ValueAt(r).Equals(
          scalar->relation->at(r, c)))
          << r << "," << c;
    }
  }
}

// --- full-program byte identity -------------------------------------------

struct Target {
  std::string canvas;
  std::string from;
  size_t from_port = 0;
};

std::vector<Target> TargetsOf(const dataflow::Graph& graph) {
  std::vector<Target> targets;
  for (const std::string& id : graph.BoxIds()) {
    const auto* viewer =
        dynamic_cast<const boxes::ViewerBox*>(graph.GetBox(id).value());
    if (viewer == nullptr) continue;
    std::optional<dataflow::Edge> edge = graph.IncomingEdge(id, 0);
    if (!edge.has_value()) continue;
    targets.push_back(Target{viewer->canvas(), edge->from_box, edge->from_port});
  }
  return targets;
}

std::unique_ptr<Environment> BuildEnv(const testing::FigProgram& program) {
  auto env = std::make_unique<Environment>();
  EXPECT_TRUE(env->LoadDemoData(program.extra_stations, program.num_days).ok())
      << program.name;
  Status built = program.build(env.get());
  EXPECT_TRUE(built.ok()) << program.name << ": " << built.message();
  return env;
}

TEST(JoinByteIdentityTest, ColumnarAndRowPathsAgreeOnEveryFigProgram) {
  // Evaluate every figure program (fig03 joins; fig08 wormholes and fig10
  // stitch are the multi-table §6/§7 shapes) under the scalar row-store
  // policy and under the columnar/view policy: output fingerprints and the
  // whole stamp map must be byte-identical.
  for (const testing::FigProgram& program : testing::AllFigPrograms()) {
    SCOPED_TRACE(program.name);
    auto scalar_env = BuildEnv(program);
    ui::Session& scalar_session = scalar_env->session();
    scalar_session.engine().set_exec_policy(kScalar);
    std::vector<Target> targets = TargetsOf(scalar_session.graph());
    ASSERT_EQ(targets.size(), program.canvases.size());
    std::map<std::string, std::string> expected;
    for (const Target& t : targets) {
      auto value = scalar_session.engine().Evaluate(scalar_session.graph(),
                                                    t.from, t.from_port);
      ASSERT_TRUE(value.ok()) << t.canvas << ": " << value.status().message();
      expected[t.canvas] = testing::FingerprintBoxValue(value.value());
    }
    std::map<std::string, std::optional<uint64_t>> expected_stamps;
    for (const std::string& id : scalar_session.graph().BoxIds()) {
      expected_stamps[id] = scalar_session.engine().cache().StampOf(id);
    }

    auto vec_env = BuildEnv(program);
    ui::Session& vec_session = vec_env->session();
    vec_session.engine().set_exec_policy(kVectorized);
    for (const Target& t : TargetsOf(vec_session.graph())) {
      auto value = vec_session.engine().Evaluate(vec_session.graph(), t.from,
                                                 t.from_port);
      ASSERT_TRUE(value.ok()) << t.canvas << ": " << value.status().message();
      ASSERT_EQ(expected.count(t.canvas), 1u);
      EXPECT_EQ(testing::FingerprintBoxValue(value.value()), expected.at(t.canvas))
          << t.canvas;
    }
    for (const std::string& id : vec_session.graph().BoxIds()) {
      ASSERT_EQ(expected_stamps.count(id), 1u) << id;
      EXPECT_EQ(vec_session.engine().cache().StampOf(id), expected_stamps.at(id))
          << id;
    }
  }
}

}  // namespace
}  // namespace tioga2::db
