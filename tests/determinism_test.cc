// Determinism goldens: the whole pipeline — data generation, evaluation,
// rasterization — must be bit-for-bit reproducible, and the raster and SVG
// backends must agree on what gets drawn.

#include <gtest/gtest.h>

#include "tioga2/environment.h"

namespace tioga2 {
namespace {

/// Builds the Figure 4 scatter in a fresh environment and renders it;
/// returns the PPM bytes.
std::string RenderScatterPpm() {
  Environment env;
  EXPECT_TRUE(env.LoadDemoData(/*extra_stations=*/100, /*num_days=*/5).ok());
  ui::Session& session = env.session();
  std::string previous = session.AddTable("Stations").value();
  auto chain = [&](const std::string& type,
                   const std::map<std::string, std::string>& params) {
    std::string id = session.AddBox(type, params).value();
    EXPECT_TRUE(session.Connect(previous, 0, id, 0).ok());
    previous = id;
  };
  chain("Restrict", {{"predicate", "state = \"LA\""}});
  chain("SetLocation", {{"dim", "0"}, {"attr", "longitude"}});
  chain("SetLocation", {{"dim", "1"}, {"attr", "latitude"}});
  chain("AddAttribute",
        {{"name", "dot"},
         {"definition",
          "circle(0.06, lerp_color(\"#1e46c8\", \"#c81e1e\", altitude / 300.0), "
          "true) + offset(text(name, 0.1), -0.3, -0.2)"}});
  chain("SetDisplay", {{"attr", "dot"}});
  EXPECT_TRUE(session.AddViewer(previous, 0, "golden").ok());
  auto viewer = env.GetViewer("golden").value();
  EXPECT_TRUE(viewer->FitContent(320, 240).ok());
  render::Framebuffer fb(320, 240, draw::kWhite);
  render::RasterSurface surface(&fb);
  EXPECT_TRUE(viewer->RenderTo(&surface).ok());
  return fb.ToPpm();
}

TEST(DeterminismTest, IdenticalPixelsAcrossRuns) {
  std::string first = RenderScatterPpm();
  std::string second = RenderScatterPpm();
  ASSERT_EQ(first.size(), second.size());
  EXPECT_TRUE(first == second) << "render is not deterministic";
  // And it actually drew something.
  EXPECT_GT(first.size(), 320u * 240u);
}

TEST(DeterminismTest, SampleBoxStableAcrossEvaluations) {
  Environment env;
  ASSERT_TRUE(env.LoadDemoData(500, 5).ok());
  ui::Session& session = env.session();
  std::string stations = session.AddTable("Stations").value();
  std::string sample =
      session.AddBox("Sample", {{"probability", "0.3"}, {"seed", "99"}}).value();
  ASSERT_TRUE(session.Connect(stations, 0, sample, 0).ok());
  ASSERT_TRUE(session.AddViewer(sample, 0, "sampled").ok());
  auto first = display::AsRelation(session.EvaluateCanvas("sampled").value()).value();
  session.engine().InvalidateDownstreamOf(session.graph(), "Stations");
  auto second = display::AsRelation(session.EvaluateCanvas("sampled").value()).value();
  EXPECT_TRUE(db::RelationEquals(*first.base(), *second.base()));
}

TEST(DeterminismTest, RasterAndSvgBackendsAgreeOnContent) {
  Environment env;
  ASSERT_TRUE(env.LoadDemoData(0, 5).ok());
  ui::Session& session = env.session();
  std::string previous = session.AddTable("Stations").value();
  auto chain = [&](const std::string& type,
                   const std::map<std::string, std::string>& params) {
    std::string id = session.AddBox(type, params).value();
    ASSERT_TRUE(session.Connect(previous, 0, id, 0).ok());
    previous = id;
  };
  chain("SetLocation", {{"dim", "0"}, {"attr", "longitude"}});
  chain("SetLocation", {{"dim", "1"}, {"attr", "latitude"}});
  chain("AddAttribute",
        {{"name", "dot"}, {"definition", "circle(0.1, \"#c81e1e\", true)"}});
  chain("SetDisplay", {{"attr", "dot"}});
  ASSERT_TRUE(session.AddViewer(previous, 0, "agree").ok());
  auto viewer = env.GetViewer("agree").value();
  ASSERT_TRUE(viewer->FitContent(320, 240).ok());

  // Raster: 15 filled red circles worth of ink.
  render::Framebuffer fb(320, 240, draw::kWhite);
  render::RasterSurface raster(&fb);
  auto raster_stats = viewer->RenderTo(&raster).value();
  // SVG: exactly one <circle> element per drawn tuple.
  render::SvgSurface svg(320, 240);
  svg.Clear(draw::kWhite);
  auto svg_stats = viewer->RenderTo(&svg).value();
  EXPECT_EQ(raster_stats.tuples_drawn, svg_stats.tuples_drawn);
  std::string doc = svg.ToSvg();
  size_t circles = 0;
  for (size_t pos = doc.find("<circle"); pos != std::string::npos;
       pos = doc.find("<circle", pos + 1)) {
    ++circles;
  }
  EXPECT_EQ(circles, svg_stats.tuples_drawn);
  EXPECT_GT(fb.CountPixels(draw::Color{0xC8, 0x1E, 0x1E}), svg_stats.tuples_drawn);
}

}  // namespace
}  // namespace tioga2
