// Tests for the Viewer: navigation, wormhole fly-through with travel
// history and rear view mirrors (§6.2, §6.3), slaving (§7.1), magnifying
// glasses (§7.2), and group member cameras (§2).

#include <gtest/gtest.h>

#include "db/relation.h"
#include "render/framebuffer.h"
#include "render/raster_surface.h"
#include "viewer/viewer.h"

namespace tioga2::viewer {
namespace {

using db::Column;
using db::MakeRelation;
using display::Composite;
using display::DisplayRelation;
using display::Group;
using types::DataType;
using types::Value;

DisplayRelation Dot(const std::string& name, double x, double y, double radius,
                    const std::string& color) {
  auto base = MakeRelation({Column{"px", DataType::kFloat}, Column{"py", DataType::kFloat}},
                           {{Value::Float(x), Value::Float(y)}})
                  .value();
  return DisplayRelation::WithDefaults(name, base)
      .value()
      .SetLocationAttribute(0, "px")
      .value()
      .SetLocationAttribute(1, "py")
      .value()
      .AddAttribute("dot", "circle(" + std::to_string(radius) + ", \"" + color +
                               "\", true)")
      .value()
      .SetDisplayAttribute("dot")
      .value();
}

class ViewerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // "home": a red dot displaying a wormhole to "away"; the underside of
    // home carries a blue marker for the rear view mirror.
    registry_.Register("home", [this]() -> Result<display::Displayable> {
      auto base =
          MakeRelation({Column{"px", DataType::kFloat}}, {{Value::Float(0)}}).value();
      DisplayRelation wormhole_rel =
          DisplayRelation::WithDefaults("holes", base)
              .value()
              .SetLocationAttribute(0, "px")
              .value()
              .AddAttribute("w", "viewer(4, 4, \"away\", 7, 8, 5.0)")
              .value()
              .SetDisplayAttribute("w")
              .value();
      // Centered under the wormhole so the mirror (focused where the user
      // departed) can see it.
      DisplayRelation underside =
          Dot("underside", 2, 2, 2, "#0000ff").SetElevationRange(-100, 0);
      Composite composite(wormhole_rel);
      composite = composite.Overlay(Composite(underside), {});
      return display::Displayable(composite);
    });
    registry_.Register("away", []() -> Result<display::Displayable> {
      return display::Displayable(Dot("green", 7, 8, 3, "#00ff00"));
    });
    registry_.Register("pair", []() -> Result<display::Displayable> {
      std::vector<Composite> members;
      members.emplace_back(Dot("left", 0, 0, 2, "#ff0000"));
      members.emplace_back(Dot("right", 0, 0, 2, "#0000ff"));
      return display::Displayable(
          Group(members, display::GroupLayout::kHorizontal));
    });
  }

  CanvasRegistry registry_;
};

TEST_F(ViewerTest, RefreshBindsContent) {
  Viewer viewer("v", "home", &registry_);
  ASSERT_TRUE(viewer.Refresh().ok());
  EXPECT_EQ(viewer.num_members(), 1u);
  EXPECT_EQ(viewer.content().members()[0].size(), 2u);
  Viewer missing("v", "nope", &registry_);
  EXPECT_TRUE(missing.Refresh().IsNotFound());
}

TEST_F(ViewerTest, PassThroughRequiresLowElevationAndWormhole) {
  Viewer viewer("v", "home", &registry_);
  ASSERT_TRUE(viewer.Refresh().ok());
  // Hover over the wormhole (world (0,0)-(4,4)) but too high.
  viewer.mutable_camera()->MoveTo(2, 2);
  viewer.mutable_camera()->SetElevation(50);
  EXPECT_FALSE(viewer.TryPassThrough().value());
  // Descend to pass-through elevation.
  viewer.mutable_camera()->SetElevation(0.5);
  EXPECT_TRUE(viewer.TryPassThrough().value());
  EXPECT_EQ(viewer.canvas_name(), "away");
  // Landed at the wormhole's initial position and elevation (§6.2).
  EXPECT_DOUBLE_EQ(viewer.camera().center_x(), 7);
  EXPECT_DOUBLE_EQ(viewer.camera().center_y(), 8);
  EXPECT_DOUBLE_EQ(viewer.camera().elevation(), 5.0);
  ASSERT_EQ(viewer.travel_history().size(), 1u);
  EXPECT_EQ(viewer.travel_history()[0].canvas_name, "home");
}

TEST_F(ViewerTest, PassThroughMissesWhenNotOverWormhole) {
  Viewer viewer("v", "home", &registry_);
  ASSERT_TRUE(viewer.Refresh().ok());
  viewer.mutable_camera()->MoveTo(50, 50);
  viewer.mutable_camera()->SetElevation(0.5);
  EXPECT_FALSE(viewer.TryPassThrough().value());
  EXPECT_EQ(viewer.canvas_name(), "home");
}

TEST_F(ViewerTest, TravelBackRestoresCamera) {
  Viewer viewer("v", "home", &registry_);
  ASSERT_TRUE(viewer.Refresh().ok());
  viewer.mutable_camera()->MoveTo(2, 2);
  viewer.mutable_camera()->SetElevation(0.5);
  ASSERT_TRUE(viewer.TryPassThrough().value());
  ASSERT_TRUE(viewer.TravelBack().value());
  EXPECT_EQ(viewer.canvas_name(), "home");
  EXPECT_DOUBLE_EQ(viewer.camera().center_x(), 2);
  EXPECT_DOUBLE_EQ(viewer.camera().elevation(), 0.5);
  EXPECT_TRUE(viewer.travel_history().empty());
  EXPECT_FALSE(viewer.TravelBack().value());  // nothing left
}

TEST_F(ViewerTest, RearViewShowsUndersideOfDepartedCanvas) {
  Viewer viewer("v", "home", &registry_);
  ASSERT_TRUE(viewer.Refresh().ok());
  render::Framebuffer fb(100, 100, draw::kWhite);
  render::RasterSurface surface(&fb);
  // Before any travel the mirror is blank.
  auto empty_stats = viewer.RenderRearView(&surface).value();
  EXPECT_EQ(empty_stats.tuples_drawn, 0u);
  EXPECT_EQ(fb.CountPixels(draw::Color{0, 0, 255}), 0u);

  viewer.mutable_camera()->MoveTo(0, 0);
  viewer.mutable_camera()->SetElevation(0.5);
  // Move over the wormhole area: the hole spans (0,0)-(4,4).
  viewer.mutable_camera()->MoveTo(2, 2);
  ASSERT_TRUE(viewer.TryPassThrough().value());
  auto stats = viewer.RenderRearView(&surface).value();
  // The underside marker (blue, range [-100, 0]) is visible in the mirror.
  EXPECT_EQ(stats.tuples_drawn, 1u);
  EXPECT_GT(fb.CountPixels(draw::Color{0, 0, 255}), 0u);
}

TEST_F(ViewerTest, SlavingPropagatesNavigation) {
  Viewer a("a", "away", &registry_);
  Viewer b("b", "away", &registry_);
  ASSERT_TRUE(a.Refresh().ok());
  ASSERT_TRUE(b.Refresh().ok());
  ASSERT_TRUE(a.SlaveTo(&b).ok());
  double b_x = b.camera().center_x();
  double b_elev = b.camera().elevation();
  a.Pan(3, -1);
  a.Zoom(2.0);
  EXPECT_DOUBLE_EQ(b.camera().center_x(), b_x + 3);
  EXPECT_DOUBLE_EQ(b.camera().elevation(), b_elev / 2);
  // Mutual slaving must not recurse forever.
  ASSERT_TRUE(b.SlaveTo(&a).ok());
  a.Pan(1, 0);
  EXPECT_GT(a.num_slaves(), 0u);
  // Unslave severs both directions.
  a.Unslave(&b);
  double after = b.camera().center_x();
  a.Pan(5, 0);
  EXPECT_DOUBLE_EQ(b.camera().center_x(), after);
}

TEST_F(ViewerTest, SlavingChecksValidity) {
  Viewer a("a", "away", &registry_);
  ASSERT_TRUE(a.Refresh().ok());
  EXPECT_TRUE(a.SlaveTo(&a).IsInvalidArgument());
  EXPECT_TRUE(a.SlaveTo(nullptr).IsInvalidArgument());
}

TEST_F(ViewerTest, GroupMembersHaveIndependentCameras) {
  Viewer viewer("v", "pair", &registry_);
  ASSERT_TRUE(viewer.Refresh().ok());
  ASSERT_EQ(viewer.num_members(), 2u);
  ASSERT_TRUE(viewer.SetActiveMember(0).ok());
  viewer.Pan(10, 0);
  ASSERT_TRUE(viewer.SetActiveMember(1).ok());
  viewer.Pan(-5, 0);
  EXPECT_DOUBLE_EQ(viewer.camera_of(0).center_x(), 10);
  EXPECT_DOUBLE_EQ(viewer.camera_of(1).center_x(), -5);
  EXPECT_TRUE(viewer.SetActiveMember(5).IsOutOfRange());
}

TEST_F(ViewerTest, RenderGroupSplitsViewport) {
  Viewer viewer("v", "pair", &registry_);
  ASSERT_TRUE(viewer.Refresh().ok());
  for (size_t m = 0; m < 2; ++m) {
    viewer.mutable_camera_of(m)->MoveTo(0, 0);
    viewer.mutable_camera_of(m)->SetElevation(10);
  }
  render::Framebuffer fb(200, 100, draw::kWhite);
  render::RasterSurface surface(&fb);
  auto stats = viewer.RenderTo(&surface).value();
  EXPECT_EQ(stats.tuples_drawn, 2u);
  // Left cell shows red, right cell blue.
  EXPECT_GT(fb.CountPixels(draw::Color{255, 0, 0}), 0u);
  EXPECT_GT(fb.CountPixels(draw::Color{0, 0, 255}), 0u);
  // Red only on the left half.
  bool red_on_right = false;
  for (int x = 100; x < 200 && !red_on_right; ++x) {
    for (int y = 0; y < 100; ++y) {
      if (fb.Get(x, y) == (draw::Color{255, 0, 0})) {
        red_on_right = true;
        break;
      }
    }
  }
  EXPECT_FALSE(red_on_right);
}

TEST_F(ViewerTest, ElevationMapReflectsRanges) {
  Viewer viewer("v", "home", &registry_);
  ASSERT_TRUE(viewer.Refresh().ok());
  auto bars = viewer.ElevationMap(0).value();
  ASSERT_EQ(bars.size(), 2u);
  EXPECT_EQ(bars[0].relation_name, "holes");
  EXPECT_EQ(bars[1].relation_name, "underside");
  EXPECT_EQ(bars[1].max_elevation, 0);
  EXPECT_EQ(bars[1].drawing_order, 1u);
  EXPECT_TRUE(viewer.ElevationMap(9).status().IsOutOfRange());
}

TEST_F(ViewerTest, MagnifyingGlassMagnifies) {
  Viewer viewer("v", "away", &registry_);
  ASSERT_TRUE(viewer.Refresh().ok());
  viewer.mutable_camera()->MoveTo(7, 8);
  viewer.mutable_camera()->SetElevation(100);  // dot is tiny
  render::Framebuffer fb(100, 100, draw::kWhite);
  render::RasterSurface surface(&fb);
  ASSERT_TRUE(viewer.RenderTo(&surface).ok());
  size_t plain_green = fb.CountPixels(draw::Color{0, 255, 0});

  MagnifyingGlass glass;
  glass.rect = render::DeviceRect{25, 25, 50, 50};  // centered over the dot
  glass.zoom = 10.0;
  size_t index = viewer.AddMagnifyingGlass(glass);
  fb.Clear(draw::kWhite);
  ASSERT_TRUE(viewer.RenderTo(&surface).ok());
  size_t magnified_green = fb.CountPixels(draw::Color{0, 255, 0});
  EXPECT_GT(magnified_green, plain_green * 4);

  ASSERT_TRUE(viewer.RemoveMagnifyingGlass(index).ok());
  EXPECT_TRUE(viewer.RemoveMagnifyingGlass(9).IsOutOfRange());
  EXPECT_TRUE(viewer.magnifying_glasses().empty());
}

TEST_F(ViewerTest, MagnifyingGlassAlternativeDisplay) {
  // Figure 9: the glass shows an alternative display attribute.
  registry_.Register("alt", []() -> Result<display::Displayable> {
    DisplayRelation rel = Dot("data", 0, 0, 2, "#ff0000")
                              .AddAttribute("precip", "circle(2, \"#0000ff\", true)")
                              .value();
    return display::Displayable(rel);
  });
  Viewer viewer("v", "alt", &registry_);
  ASSERT_TRUE(viewer.Refresh().ok());
  viewer.mutable_camera()->MoveTo(0, 0);
  viewer.mutable_camera()->SetElevation(10);
  MagnifyingGlass glass;
  glass.rect = render::DeviceRect{30, 30, 40, 40};
  glass.zoom = 2.0;
  glass.display_attribute = "precip";
  viewer.AddMagnifyingGlass(glass);
  render::Framebuffer fb(100, 100, draw::kWhite);
  render::RasterSurface surface(&fb);
  ASSERT_TRUE(viewer.RenderTo(&surface).ok());
  // Outside the glass: red (main display). Inside: blue (alternative).
  EXPECT_GT(fb.CountPixels(draw::Color{255, 0, 0}), 0u);
  EXPECT_GT(fb.CountPixels(draw::Color{0, 0, 255}), 0u);
}

TEST_F(ViewerTest, HitTestAtRoutesToGroupMember) {
  Viewer viewer("v", "pair", &registry_);
  ASSERT_TRUE(viewer.Refresh().ok());
  for (size_t m = 0; m < 2; ++m) {
    viewer.mutable_camera_of(m)->MoveTo(0, 0);
    viewer.mutable_camera_of(m)->SetElevation(10);
  }
  render::Framebuffer fb(200, 100, draw::kWhite);
  render::RasterSurface surface(&fb);
  // Center of the left cell.
  auto left = viewer.HitTestAt(&surface, 50, 50).value();
  ASSERT_TRUE(left.has_value());
  EXPECT_EQ(left->group_member, 0u);
  EXPECT_EQ(left->relation_name, "left");
  // Center of the right cell.
  auto right = viewer.HitTestAt(&surface, 150, 50).value();
  ASSERT_TRUE(right.has_value());
  EXPECT_EQ(right->group_member, 1u);
  EXPECT_EQ(right->relation_name, "right");
  // Empty corner.
  auto miss = viewer.HitTestAt(&surface, 5, 5).value();
  EXPECT_FALSE(miss.has_value());
}

TEST_F(ViewerTest, CloneViewIsIndependent) {
  Viewer original("v", "away", &registry_);
  ASSERT_TRUE(original.Refresh().ok());
  original.mutable_camera()->MoveTo(7, 8);
  original.mutable_camera()->SetElevation(3);
  original.AddMagnifyingGlass(MagnifyingGlass{});
  std::unique_ptr<Viewer> clone = original.CloneView("v2");
  EXPECT_EQ(clone->canvas_name(), "away");
  EXPECT_DOUBLE_EQ(clone->camera().center_x(), 7);
  EXPECT_DOUBLE_EQ(clone->camera().elevation(), 3);
  EXPECT_EQ(clone->magnifying_glasses().size(), 1u);
  // Independent navigation after cloning.
  clone->Pan(10, 0);
  EXPECT_DOUBLE_EQ(original.camera().center_x(), 7);
  EXPECT_DOUBLE_EQ(clone->camera().center_x(), 17);
  // The clone can render on its own.
  render::Framebuffer fb(50, 50, draw::kWhite);
  render::RasterSurface surface(&fb);
  EXPECT_TRUE(clone->RenderTo(&surface).ok());
}

TEST_F(ViewerTest, FitContentCoversData) {
  Viewer viewer("v", "away", &registry_);
  ASSERT_TRUE(viewer.FitContent(100, 100).ok());
  EXPECT_TRUE(viewer.camera().VisibleWorld().Contains(7, 8));
}

}  // namespace
}  // namespace tioga2::viewer
