// Columnar view of a relation: the lazily materialized typed columns must
// reconstruct every stored Value bit-identically (the row store stays
// canonical; columnar() is a pure cache).

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "db/columnar.h"
#include "db/exec_policy.h"
#include "db/relation.h"
#include "types/date.h"

namespace tioga2::db {
namespace {

using types::DataType;
using types::Value;

RelationPtr AllTypes() {
  return MakeRelation(
             {Column{"b", DataType::kBool}, Column{"i", DataType::kInt},
              Column{"f", DataType::kFloat}, Column{"s", DataType::kString},
              Column{"d", DataType::kDate}},
             {
                 {Value::Bool(true), Value::Int(-7), Value::Float(1.25),
                  Value::String("hat"), Value::DateVal(types::Date(1000))},
                 {Value::Null(), Value::Null(), Value::Null(), Value::Null(),
                  Value::Null()},
                 {Value::Bool(false), Value::Int(1LL << 40), Value::Float(-0.5),
                  Value::String(""), Value::DateVal(types::Date(-3))},
             })
      .value();
}

TEST(ColumnarTest, RoundTripsEveryTypeAndNull) {
  RelationPtr rel = AllTypes();
  const ColumnarTable& table = rel->columnar();
  for (size_t c = 0; c < rel->num_columns(); ++c) {
    const ColumnVector& col = table.column(c);
    EXPECT_EQ(col.type, rel->schema()->column(c).type);
    ASSERT_EQ(col.num_rows, rel->num_rows());
    for (size_t r = 0; r < rel->num_rows(); ++r) {
      const Value& want = rel->at(r, c);
      Value got = col.ValueAt(r);
      EXPECT_EQ(col.IsNull(r), want.is_null()) << "col " << c << " row " << r;
      if (want.is_null()) {
        EXPECT_TRUE(got.is_null());
      } else {
        EXPECT_EQ(got.type(), want.type()) << "col " << c << " row " << r;
        EXPECT_TRUE(got.Equals(want)) << "col " << c << " row " << r;
        EXPECT_EQ(got.ToString(), want.ToString());
      }
    }
  }
}

TEST(ColumnarTest, NullBitmapAcrossWordBoundaries) {
  // 130 rows spans three 64-bit bitmap words; nulls placed at both edges of
  // each word catch off-by-one errors in the bit addressing.
  std::vector<size_t> null_rows = {0, 63, 64, 127, 128, 129};
  std::vector<Tuple> rows;
  for (size_t r = 0; r < 130; ++r) {
    bool is_null =
        std::find(null_rows.begin(), null_rows.end(), r) != null_rows.end();
    rows.push_back({is_null ? Value::Null() : Value::Int(static_cast<int64_t>(r))});
  }
  RelationPtr rel = MakeRelation({Column{"v", DataType::kInt}}, rows).value();
  const ColumnVector& col = rel->columnar().column(0);
  EXPECT_TRUE(col.has_nulls());
  for (size_t r = 0; r < 130; ++r) {
    bool want_null =
        std::find(null_rows.begin(), null_rows.end(), r) != null_rows.end();
    EXPECT_EQ(col.IsNull(r), want_null) << "row " << r;
    if (!want_null) EXPECT_EQ(col.ints[r], static_cast<int64_t>(r));
  }
}

TEST(ColumnarTest, NoNullsMeansEmptyBitmap) {
  RelationPtr rel = MakeRelation({Column{"v", DataType::kInt}},
                                 {{Value::Int(1)}, {Value::Int(2)}})
                        .value();
  const ColumnVector& col = rel->columnar().column(0);
  EXPECT_FALSE(col.has_nulls());
  EXPECT_TRUE(col.null_bits.empty());
  EXPECT_FALSE(col.IsNull(0));
  EXPECT_FALSE(col.IsNull(1));
}

TEST(ColumnarTest, SelectionViewChainsComposeToTheBase) {
  // A view-of-a-view-of-a-view (Restrict over Limit over Sort, say) gathers
  // its columns once from the deepest materialized ancestor's columns — but
  // whatever the mechanics, the values must equal walking the chain row by
  // row. Duplicated and out-of-order rows are allowed at every link.
  std::vector<Tuple> rows;
  for (size_t r = 0; r < 200; ++r) {
    rows.push_back({r % 13 == 0 ? Value::Null()
                                : Value::Int(static_cast<int64_t>(r)),
                    Value::String("s" + std::to_string(r % 7))});
  }
  RelationPtr base =
      MakeRelation({Column{"v", DataType::kInt}, Column{"s", DataType::kString}},
                   rows)
          .value();

  // Link 1: reversed evens. Link 2: every third, with a duplicate run at the
  // front. Link 3: a short permuted window.
  std::vector<uint32_t> evens;
  for (uint32_t r = 200; r-- > 0;) {
    if (r % 2 == 0) evens.push_back(r);
  }
  RelationPtr v1 = Relation::MakeSelectionView(base, evens);
  std::vector<uint32_t> thirds = {5, 5, 5};
  for (uint32_t r = 0; r < v1->num_rows(); r += 3) thirds.push_back(r);
  RelationPtr v2 = Relation::MakeSelectionView(v1, thirds);
  std::vector<uint32_t> window = {7, 3, 11, 0, 2, 1};
  RelationPtr v3 = Relation::MakeSelectionView(v2, window);

  for (const RelationPtr& view : {v1, v2, v3}) {
    const ColumnarTable& table = view->columnar();
    for (size_t c = 0; c < view->num_columns(); ++c) {
      const ColumnVector& col = table.column(c);
      ASSERT_EQ(col.num_rows, view->num_rows());
      for (size_t r = 0; r < view->num_rows(); ++r) {
        const Value& want = view->at(r, c);
        EXPECT_EQ(col.IsNull(r), want.is_null()) << "col " << c << " row " << r;
        if (!want.is_null()) {
          EXPECT_TRUE(col.ValueAt(r).Equals(want)) << "col " << c << " row " << r;
        }
      }
    }
  }
}

TEST(ColumnarTest, ColumnarViewIsSharedAndStable) {
  RelationPtr rel = AllTypes();
  const ColumnarTable& a = rel->columnar();
  const ColumnarTable& b = rel->columnar();
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(&a.column(1), &b.column(1));
}

TEST(ColumnarTest, ConcurrentMaterializationIsSafe) {
  // Many threads racing on first use must all see one consistent column —
  // the per-column std::call_once in ColumnarTable is what the parallel
  // engine relies on when box firings share a base relation.
  std::vector<Tuple> rows;
  for (size_t r = 0; r < 10000; ++r) {
    rows.push_back({Value::Int(static_cast<int64_t>(r)),
                    Value::Float(static_cast<double>(r) * 0.5)});
  }
  RelationPtr rel =
      MakeRelation({Column{"i", DataType::kInt}, Column{"f", DataType::kFloat}}, rows)
          .value();
  std::vector<std::thread> threads;
  std::vector<const ColumnVector*> seen(8, nullptr);
  for (size_t t = 0; t < 8; ++t) {
    threads.emplace_back([&rel, &seen, t] { seen[t] = &rel->columnar().column(t % 2); });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(seen[0], seen[2]);
  EXPECT_EQ(seen[1], seen[3]);
  EXPECT_EQ(rel->columnar().column(0).ints.size(), 10000u);
}

// ---- Dictionary encoding ---------------------------------------------------
// kString columns additionally carry a sorted-unique dictionary plus per-row
// codes (db/columnar.h). The canonical `strings` vector stays authoritative;
// the dictionary is an accelerator, so every test here checks both that the
// encoding round-trips and that the plain string data is untouched.

/// Pins ExecPolicy::dict_encode for a scope (materialization consults the
/// process default).
class DictGuard {
 public:
  explicit DictGuard(bool dict_encode) : saved_(DefaultExecPolicy()) {
    ExecPolicy policy = saved_;
    policy.dict_encode = dict_encode;
    SetDefaultExecPolicy(policy);
  }
  ~DictGuard() { SetDefaultExecPolicy(saved_); }

 private:
  ExecPolicy saved_;
};

RelationPtr StringRelation(const std::vector<Value>& cells) {
  std::vector<Tuple> rows;
  for (const Value& v : cells) rows.push_back({v});
  return MakeRelation({Column{"s", DataType::kString}}, rows).value();
}

/// Every non-null row's code must index a dictionary entry equal to its
/// string; null rows carry code 0; the dictionary is sorted and unique.
void ExpectDictConsistent(const ColumnVector& col) {
  ASSERT_TRUE(col.has_dict());
  ASSERT_EQ(col.dict_codes.size(), col.num_rows);
  const std::vector<std::string>& dict = *col.dict_values;
  EXPECT_TRUE(std::is_sorted(dict.begin(), dict.end()));
  EXPECT_EQ(std::adjacent_find(dict.begin(), dict.end()), dict.end());
  for (size_t r = 0; r < col.num_rows; ++r) {
    if (col.IsNull(r)) {
      EXPECT_EQ(col.dict_codes[r], 0u) << "row " << r;
    } else {
      ASSERT_LT(col.dict_codes[r], dict.size()) << "row " << r;
      EXPECT_EQ(dict[col.dict_codes[r]], col.strings[r]) << "row " << r;
    }
  }
}

TEST(ColumnarDictTest, SortedUniqueValuesAndCodes) {
  // Duplicates, the empty string, UTF-8 payloads, an embedded NUL byte, and a
  // null row — everything a dictionary must keep byte-exact.
  const std::string with_nul("a\0b", 3);
  RelationPtr rel = StringRelation(
      {Value::String("pear"), Value::String("apple"), Value::String(""),
       Value::String("pear"), Value::String("\xc3\xa9clair"), Value::Null(),
       Value::String(with_nul), Value::String("apple")});
  const ColumnVector& col = rel->columnar().column(0);
  ExpectDictConsistent(col);
  EXPECT_EQ(col.dict_values->size(), 5u);  // "", a\0b, apple, pear, éclair
  EXPECT_EQ((*col.dict_values)[0], "");
  EXPECT_EQ((*col.dict_values)[1], with_nul);
  // Canonical strings stay populated alongside the codes.
  EXPECT_EQ(col.strings[0], "pear");
  EXPECT_EQ(col.strings[6], with_nul);
}

TEST(ColumnarDictTest, DegenerateShapes) {
  // All-null: an empty dictionary, but still encoded (has_dict() drives the
  // fast paths, which all handle "no distinct values").
  RelationPtr all_null =
      StringRelation({Value::Null(), Value::Null(), Value::Null()});
  const ColumnVector& nul_col = all_null->columnar().column(0);
  ExpectDictConsistent(nul_col);
  EXPECT_TRUE(nul_col.dict_values->empty());

  // One distinct value shared by every row.
  std::vector<Value> same(100, Value::String("only"));
  RelationPtr one_rel = StringRelation(same);
  const ColumnVector& one = one_rel->columnar().column(0);
  ExpectDictConsistent(one);
  EXPECT_EQ(one.dict_values->size(), 1u);

  // All rows distinct: codes are a permutation of [0, n).
  std::vector<Value> uniq;
  for (int i = 0; i < 50; ++i) uniq.push_back(Value::String("v" + std::to_string(i)));
  RelationPtr all_rel = StringRelation(uniq);
  const ColumnVector& all = all_rel->columnar().column(0);
  ExpectDictConsistent(all);
  EXPECT_EQ(all.dict_values->size(), 50u);
}

TEST(ColumnarDictTest, ViewsShareTheDictionaryAndGatherCodes) {
  std::vector<Value> cells;
  for (size_t r = 0; r < 120; ++r) {
    cells.push_back(r % 11 == 10 ? Value::Null()
                                 : Value::String("cat" + std::to_string(r % 7)));
  }
  RelationPtr base = StringRelation(cells);
  const ColumnVector& base_col = base->columnar().column(0);
  ASSERT_TRUE(base_col.has_dict());

  // A duplicated, out-of-order selection view shares the dict_values pointer
  // (same shared_ptr, no re-encode) and gathers only the codes.
  std::vector<uint32_t> sel = {9, 9, 118, 0, 42, 10, 77, 10};
  RelationPtr view = Relation::MakeSelectionView(base, sel);
  const ColumnVector& vcol = view->columnar().column(0);
  EXPECT_EQ(vcol.dict_values.get(), base_col.dict_values.get());
  ExpectDictConsistent(vcol);

  // A view of the view still points at the original dictionary.
  RelationPtr view2 = Relation::MakeSelectionView(view, {3, 1, 1, 0});
  const ColumnVector& v2col = view2->columnar().column(0);
  EXPECT_EQ(v2col.dict_values.get(), base_col.dict_values.get());
  ExpectDictConsistent(v2col);

  // SplatCell broadcasts one cell's code (and an all-null splat for null
  // cells), sharing the dictionary the same way.
  ColumnVector splat = SplatCell(base_col, 3, 5);
  EXPECT_EQ(splat.dict_values.get(), base_col.dict_values.get());
  ExpectDictConsistent(splat);
  ColumnVector null_splat = SplatCell(base_col, 10, 4);  // row 10 is null
  ExpectDictConsistent(null_splat);
  for (size_t r = 0; r < 4; ++r) EXPECT_TRUE(null_splat.IsNull(r));

  // GatherColumn is the same machinery exposed directly.
  ColumnVector gathered = GatherColumn(base_col, {5, 5, 99, 10});
  EXPECT_EQ(gathered.dict_values.get(), base_col.dict_values.get());
  ExpectDictConsistent(gathered);
}

TEST(ColumnarDictTest, PolicyKnobDisablesEncoding) {
  DictGuard guard(/*dict_encode=*/false);
  RelationPtr rel = StringRelation({Value::String("x"), Value::String("y")});
  const ColumnVector& col = rel->columnar().column(0);
  EXPECT_FALSE(col.has_dict());
  EXPECT_TRUE(col.dict_codes.empty());
  // The canonical representation is unaffected.
  EXPECT_EQ(col.strings[0], "x");
  EXPECT_EQ(col.strings[1], "y");
}

}  // namespace
}  // namespace tioga2::db
