// Columnar view of a relation: the lazily materialized typed columns must
// reconstruct every stored Value bit-identically (the row store stays
// canonical; columnar() is a pure cache).

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "db/columnar.h"
#include "db/relation.h"
#include "types/date.h"

namespace tioga2::db {
namespace {

using types::DataType;
using types::Value;

RelationPtr AllTypes() {
  return MakeRelation(
             {Column{"b", DataType::kBool}, Column{"i", DataType::kInt},
              Column{"f", DataType::kFloat}, Column{"s", DataType::kString},
              Column{"d", DataType::kDate}},
             {
                 {Value::Bool(true), Value::Int(-7), Value::Float(1.25),
                  Value::String("hat"), Value::DateVal(types::Date(1000))},
                 {Value::Null(), Value::Null(), Value::Null(), Value::Null(),
                  Value::Null()},
                 {Value::Bool(false), Value::Int(1LL << 40), Value::Float(-0.5),
                  Value::String(""), Value::DateVal(types::Date(-3))},
             })
      .value();
}

TEST(ColumnarTest, RoundTripsEveryTypeAndNull) {
  RelationPtr rel = AllTypes();
  const ColumnarTable& table = rel->columnar();
  for (size_t c = 0; c < rel->num_columns(); ++c) {
    const ColumnVector& col = table.column(c);
    EXPECT_EQ(col.type, rel->schema()->column(c).type);
    ASSERT_EQ(col.num_rows, rel->num_rows());
    for (size_t r = 0; r < rel->num_rows(); ++r) {
      const Value& want = rel->at(r, c);
      Value got = col.ValueAt(r);
      EXPECT_EQ(col.IsNull(r), want.is_null()) << "col " << c << " row " << r;
      if (want.is_null()) {
        EXPECT_TRUE(got.is_null());
      } else {
        EXPECT_EQ(got.type(), want.type()) << "col " << c << " row " << r;
        EXPECT_TRUE(got.Equals(want)) << "col " << c << " row " << r;
        EXPECT_EQ(got.ToString(), want.ToString());
      }
    }
  }
}

TEST(ColumnarTest, NullBitmapAcrossWordBoundaries) {
  // 130 rows spans three 64-bit bitmap words; nulls placed at both edges of
  // each word catch off-by-one errors in the bit addressing.
  std::vector<size_t> null_rows = {0, 63, 64, 127, 128, 129};
  std::vector<Tuple> rows;
  for (size_t r = 0; r < 130; ++r) {
    bool is_null =
        std::find(null_rows.begin(), null_rows.end(), r) != null_rows.end();
    rows.push_back({is_null ? Value::Null() : Value::Int(static_cast<int64_t>(r))});
  }
  RelationPtr rel = MakeRelation({Column{"v", DataType::kInt}}, rows).value();
  const ColumnVector& col = rel->columnar().column(0);
  EXPECT_TRUE(col.has_nulls());
  for (size_t r = 0; r < 130; ++r) {
    bool want_null =
        std::find(null_rows.begin(), null_rows.end(), r) != null_rows.end();
    EXPECT_EQ(col.IsNull(r), want_null) << "row " << r;
    if (!want_null) EXPECT_EQ(col.ints[r], static_cast<int64_t>(r));
  }
}

TEST(ColumnarTest, NoNullsMeansEmptyBitmap) {
  RelationPtr rel = MakeRelation({Column{"v", DataType::kInt}},
                                 {{Value::Int(1)}, {Value::Int(2)}})
                        .value();
  const ColumnVector& col = rel->columnar().column(0);
  EXPECT_FALSE(col.has_nulls());
  EXPECT_TRUE(col.null_bits.empty());
  EXPECT_FALSE(col.IsNull(0));
  EXPECT_FALSE(col.IsNull(1));
}

TEST(ColumnarTest, SelectionViewChainsComposeToTheBase) {
  // A view-of-a-view-of-a-view (Restrict over Limit over Sort, say) gathers
  // its columns once from the deepest materialized ancestor's columns — but
  // whatever the mechanics, the values must equal walking the chain row by
  // row. Duplicated and out-of-order rows are allowed at every link.
  std::vector<Tuple> rows;
  for (size_t r = 0; r < 200; ++r) {
    rows.push_back({r % 13 == 0 ? Value::Null()
                                : Value::Int(static_cast<int64_t>(r)),
                    Value::String("s" + std::to_string(r % 7))});
  }
  RelationPtr base =
      MakeRelation({Column{"v", DataType::kInt}, Column{"s", DataType::kString}},
                   rows)
          .value();

  // Link 1: reversed evens. Link 2: every third, with a duplicate run at the
  // front. Link 3: a short permuted window.
  std::vector<uint32_t> evens;
  for (uint32_t r = 200; r-- > 0;) {
    if (r % 2 == 0) evens.push_back(r);
  }
  RelationPtr v1 = Relation::MakeSelectionView(base, evens);
  std::vector<uint32_t> thirds = {5, 5, 5};
  for (uint32_t r = 0; r < v1->num_rows(); r += 3) thirds.push_back(r);
  RelationPtr v2 = Relation::MakeSelectionView(v1, thirds);
  std::vector<uint32_t> window = {7, 3, 11, 0, 2, 1};
  RelationPtr v3 = Relation::MakeSelectionView(v2, window);

  for (const RelationPtr& view : {v1, v2, v3}) {
    const ColumnarTable& table = view->columnar();
    for (size_t c = 0; c < view->num_columns(); ++c) {
      const ColumnVector& col = table.column(c);
      ASSERT_EQ(col.num_rows, view->num_rows());
      for (size_t r = 0; r < view->num_rows(); ++r) {
        const Value& want = view->at(r, c);
        EXPECT_EQ(col.IsNull(r), want.is_null()) << "col " << c << " row " << r;
        if (!want.is_null()) {
          EXPECT_TRUE(col.ValueAt(r).Equals(want)) << "col " << c << " row " << r;
        }
      }
    }
  }
}

TEST(ColumnarTest, ColumnarViewIsSharedAndStable) {
  RelationPtr rel = AllTypes();
  const ColumnarTable& a = rel->columnar();
  const ColumnarTable& b = rel->columnar();
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(&a.column(1), &b.column(1));
}

TEST(ColumnarTest, ConcurrentMaterializationIsSafe) {
  // Many threads racing on first use must all see one consistent column —
  // the per-column std::call_once in ColumnarTable is what the parallel
  // engine relies on when box firings share a base relation.
  std::vector<Tuple> rows;
  for (size_t r = 0; r < 10000; ++r) {
    rows.push_back({Value::Int(static_cast<int64_t>(r)),
                    Value::Float(static_cast<double>(r) * 0.5)});
  }
  RelationPtr rel =
      MakeRelation({Column{"i", DataType::kInt}, Column{"f", DataType::kFloat}}, rows)
          .value();
  std::vector<std::thread> threads;
  std::vector<const ColumnVector*> seen(8, nullptr);
  for (size_t t = 0; t < 8; ++t) {
    threads.emplace_back([&rel, &seen, t] { seen[t] = &rel->columnar().column(t % 2); });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(seen[0], seen[2]);
  EXPECT_EQ(seen[1], seen[3]);
  EXPECT_EQ(rel->columnar().column(0).ints.size(), 10000u);
}

}  // namespace
}  // namespace tioga2::db
