// Tests for the multi-session server: session lifecycle, concurrent
// sessions over one catalog, bounded admission (reject, never block),
// priority classes, deadlines, read/write catalog exclusion, request-class
// metrics, and the cross-session shared memo tier.

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <set>
#include <thread>
#include <vector>

#include "db/catalog.h"
#include "db/relation.h"
#include "runtime/epoch.h"
#include "runtime/session_server.h"
#include "testing/fig_programs.h"

namespace tioga2::runtime {
namespace {

using db::Column;
using types::DataType;
using types::Value;

class SessionServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto table = db::MakeRelation({Column{"v", DataType::kInt}},
                                  {{Value::Int(1)}, {Value::Int(2)}, {Value::Int(3)},
                                   {Value::Int(4)}})
                     .value();
    ASSERT_TRUE(catalog_.RegisterTable("T", table).ok());
  }

  /// Builds T -> Restrict(v > 1) -> viewer on canvas `canvas` inside `s`.
  static Status BuildProgram(Session& s, const std::string& canvas) {
    ui::Session& ui = s.ui();
    TIOGA2_ASSIGN_OR_RETURN(std::string table, ui.AddTable("T"));
    TIOGA2_ASSIGN_OR_RETURN(std::string restrict,
                            ui.AddBox("Restrict", {{"predicate", "v > 1"}}));
    TIOGA2_RETURN_IF_ERROR(ui.Connect(table, 0, restrict, 0));
    TIOGA2_RETURN_IF_ERROR(ui.AddViewer(restrict, 0, canvas).status());
    return Status::OK();
  }

  db::Catalog catalog_;
};

TEST_F(SessionServerTest, SessionLifecycle) {
  SessionServer server(&catalog_);
  EXPECT_EQ(server.OpenSession().value(), "s1");
  EXPECT_EQ(server.OpenSession().value(), "s2");
  EXPECT_EQ(server.OpenSession("alice").value(), "alice");
  EXPECT_TRUE(server.OpenSession("alice").status().IsAlreadyExists());
  EXPECT_EQ(server.num_sessions(), 3u);
  EXPECT_TRUE(server.CloseSession("s1").ok());
  EXPECT_TRUE(server.CloseSession("s1").IsNotFound());
  EXPECT_EQ(server.num_sessions(), 2u);
  // Submitting to a closed (or unknown) session resolves NotFound.
  auto fut = server.Submit("s1", {.handler = [](Session&) { return Status::OK(); }});
  EXPECT_TRUE(fut.get().IsNotFound());
}

TEST_F(SessionServerTest, NullHandlerIsRejectedUpFront) {
  SessionServer server(&catalog_);
  std::string id = server.OpenSession().value();
  auto fut = server.Submit(id, SessionServer::Request{});
  EXPECT_TRUE(fut.get().IsInvalidArgument());
}

TEST_F(SessionServerTest, EvaluatesCanvasThroughSession) {
  SessionServer server(&catalog_);
  std::string id = server.OpenSession().value();
  auto built = server.Submit(
      id, {.handler = [](Session& s) { return BuildProgram(s, "c"); }});
  ASSERT_TRUE(built.get().ok());
  auto displayable = server.EvaluateCanvas(id, "c");
  ASSERT_TRUE(displayable.ok());
  auto relation = display::AsRelation(displayable.value());
  ASSERT_TRUE(relation.ok());
  EXPECT_EQ(relation.value().num_rows(), 3u);
  // The session's viewer surface works too.
  auto viewed = server.Submit(id, {.handler = [](Session& s) {
    TIOGA2_ASSIGN_OR_RETURN(viewer::Viewer * v, s.GetViewer("c"));
    return v != nullptr ? Status::OK() : Status::Internal("null viewer");
  }});
  EXPECT_TRUE(viewed.get().ok());
  EXPECT_GE(server.metrics().snapshot().requests_completed, 3u);
}

TEST_F(SessionServerTest, SessionsAreIsolated) {
  SessionServer server(&catalog_);
  std::string a = server.OpenSession().value();
  std::string b = server.OpenSession().value();
  ASSERT_TRUE(
      server.Submit(a, {.handler = [](Session& s) { return BuildProgram(s, "c"); }})
          .get()
          .ok());
  // Session b never built a program: its canvas registry is empty.
  EXPECT_TRUE(server.EvaluateCanvas(b, "c").status().IsNotFound());
  EXPECT_TRUE(server.EvaluateCanvas(a, "c").ok());
}

TEST_F(SessionServerTest, SustainsEightConcurrentSessions) {
  SessionServer::Options options;
  options.num_threads = 4;
  SessionServer server(&catalog_, options);
  std::vector<std::string> ids;
  for (int i = 0; i < 8; ++i) ids.push_back(server.OpenSession().value());
  std::vector<std::future<Status>> futures;
  for (const std::string& id : ids) {
    futures.push_back(server.Submit(
        id, {.handler = [](Session& s) { return BuildProgram(s, "c"); }}));
    // Several evaluation requests per session, interleaved across sessions.
    for (int r = 0; r < 3; ++r) {
      futures.push_back(server.Submit(id, {.handler = [](Session& s) {
        return s.ui().EvaluateCanvas("c").status();
      }}));
    }
  }
  for (auto& f : futures) EXPECT_TRUE(f.get().ok());
  MetricsSnapshot snap = server.metrics().snapshot();
  EXPECT_EQ(snap.requests_completed, futures.size());
  EXPECT_EQ(snap.requests_rejected, 0u);
}

TEST_F(SessionServerTest, RejectsBeyondQueueBoundWithoutBlocking) {
  SessionServer::Options options;
  options.num_threads = 2;
  options.queue_bound = 2;
  SessionServer server(&catalog_, options);
  std::string id = server.OpenSession().value();
  // Two handlers park on a latch, filling the bound.
  std::promise<void> release;
  std::shared_future<void> latch = release.get_future().share();
  auto first = server.Submit(id, {.handler = [latch](Session&) {
    latch.wait();
    return Status::OK();
  }});
  auto second = server.Submit(id, {.handler = [latch](Session&) {
    latch.wait();
    return Status::OK();
  }});
  // The third is rejected immediately — Submit resolves without blocking.
  auto start = std::chrono::steady_clock::now();
  auto third =
      server.Submit(id, {.handler = [](Session&) { return Status::OK(); }});
  Status rejected = third.get();
  auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_TRUE(rejected.IsUnavailable()) << rejected.message();
  EXPECT_LT(elapsed, std::chrono::seconds(5));
  release.set_value();
  EXPECT_TRUE(first.get().ok());
  EXPECT_TRUE(second.get().ok());
  MetricsSnapshot snap = server.metrics().snapshot();
  EXPECT_EQ(snap.requests_rejected, 1u);
  EXPECT_EQ(snap.requests_completed, 2u);
  // Capacity freed: new requests are admitted again.
  EXPECT_TRUE(
      server.Submit(id, {.handler = [](Session&) { return Status::OK(); }})
          .get()
          .ok());
}

TEST_F(SessionServerTest, SaturationCountsMatchMetricsJson) {
  SessionServer::Options options;
  options.num_threads = 2;
  options.queue_bound = 2;
  SessionServer server(&catalog_, options);
  std::string id = server.OpenSession().value();
  std::promise<void> release;
  std::shared_future<void> latch = release.get_future().share();
  std::vector<std::future<Status>> parked;
  for (int i = 0; i < 2; ++i) {
    parked.push_back(server.Submit(id, {.handler = [latch](Session&) {
      latch.wait();
      return Status::OK();
    }}));
  }
  // Saturated: every further submit resolves Unavailable immediately.
  size_t unavailable = 0;
  for (int i = 0; i < 5; ++i) {
    Status status =
        server.Submit(id, {.handler = [](Session&) { return Status::OK(); }})
            .get();
    if (status.IsUnavailable()) ++unavailable;
  }
  EXPECT_EQ(unavailable, 5u);
  release.set_value();
  for (auto& f : parked) EXPECT_TRUE(f.get().ok());

  // A queued-but-expired request resolves DeadlineExceeded (not Unavailable):
  // it was admitted, then aged out before a worker dequeued it. Needs
  // queue_bound > num_threads so the request queues instead of rejecting.
  SessionServer::Options wide;
  wide.num_threads = 1;
  wide.queue_bound = 8;
  SessionServer narrow(&catalog_, wide);
  std::string nid = narrow.OpenSession().value();
  std::promise<void> nrelease;
  std::shared_future<void> nlatch = nrelease.get_future().share();
  auto busy = narrow.Submit(nid, {.handler = [nlatch](Session&) {
    nlatch.wait();
    return Status::OK();
  }});
  auto expired = narrow.Submit(
      nid, {.handler = [](Session&) { return Status::OK(); },
            .deadline = std::chrono::milliseconds(1)});
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  nrelease.set_value();
  EXPECT_TRUE(busy.get().ok());
  EXPECT_TRUE(expired.get().IsDeadlineExceeded());

  // The rejection counter in the JSON export matches what callers observed.
  MetricsSnapshot snap = server.metrics().snapshot();
  EXPECT_EQ(snap.requests_rejected, unavailable);
  std::string json = server.metrics().ToJson();
  EXPECT_NE(json.find("\"rejected\":" + std::to_string(unavailable)),
            std::string::npos)
      << json;
  MetricsSnapshot nsnap = narrow.metrics().snapshot();
  EXPECT_EQ(nsnap.requests_timed_out, 1u);
  EXPECT_NE(narrow.metrics().ToJson().find("\"timed_out\":1"), std::string::npos);
}

TEST_F(SessionServerTest, BatchPriorityAdmitsAgainstLowerBound) {
  SessionServer::Options options;
  options.num_threads = 3;
  options.queue_bound = 4;  // batch bound = 4 - 4/4 = 3
  SessionServer server(&catalog_, options);
  ASSERT_EQ(server.batch_admission_bound(), 3u);
  std::string id = server.OpenSession().value();
  std::promise<void> release;
  std::shared_future<void> latch = release.get_future().share();
  std::vector<std::future<Status>> parked;
  for (int i = 0; i < 3; ++i) {
    parked.push_back(server.Submit(id, {.handler = [latch](Session&) {
      latch.wait();
      return Status::OK();
    }}));
  }
  // In-flight is at the batch bound: batch traffic is turned away while the
  // reserved headroom still admits interactive traffic.
  auto batch = server.Submit(
      id, {.handler = [](Session&) { return Status::OK(); },
           .priority = SessionServer::Priority::kBatch});
  Status batch_status = batch.get();
  EXPECT_TRUE(batch_status.IsUnavailable()) << batch_status.message();
  auto interactive =
      server.Submit(id, {.handler = [](Session&) { return Status::OK(); }});
  release.set_value();
  EXPECT_TRUE(interactive.get().ok());
  for (auto& f : parked) EXPECT_TRUE(f.get().ok());
  EXPECT_EQ(server.metrics().snapshot().requests_rejected, 1u);
}

TEST_F(SessionServerTest, NotFoundBurstDoesNotConsumeAdmission) {
  // Regression: Submit resolves the session BEFORE charging admission, so a
  // burst of submits to unknown/closed sessions cannot eat queue slots and
  // spuriously reject valid traffic.
  SessionServer::Options options;
  options.num_threads = 1;
  options.queue_bound = 2;
  SessionServer server(&catalog_, options);
  std::string id = server.OpenSession().value();
  std::promise<void> release;
  std::shared_future<void> latch = release.get_future().share();
  auto busy = server.Submit(id, {.handler = [latch](Session&) {
    latch.wait();
    return Status::OK();
  }});
  // One admission slot remains. Hammer a nonexistent session...
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(
        server.Submit("ghost", {.handler = [](Session&) { return Status::OK(); }})
            .get()
            .IsNotFound());
  }
  // ...and the surviving slot still admits a real request.
  auto admitted =
      server.Submit(id, {.handler = [](Session&) { return Status::OK(); }});
  release.set_value();
  EXPECT_TRUE(busy.get().ok());
  EXPECT_TRUE(admitted.get().ok());
  EXPECT_EQ(server.metrics().snapshot().requests_rejected, 0u);
}

TEST_F(SessionServerTest, ExpiredRequestResolvesDeadlineExceeded) {
  SessionServer::Options options;
  options.num_threads = 1;
  SessionServer server(&catalog_, options);
  std::string id = server.OpenSession().value();
  // Occupy the only worker long enough for the deadline to pass.
  auto slow = server.Submit(id, {.handler = [](Session&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    return Status::OK();
  }});
  auto expired = server.Submit(
      id, {.handler = [](Session&) { return Status::OK(); },
           .deadline = std::chrono::milliseconds(1)});
  EXPECT_TRUE(slow.get().ok());
  EXPECT_TRUE(expired.get().IsDeadlineExceeded());
  EXPECT_GE(server.metrics().snapshot().requests_timed_out, 1u);
}

TEST_F(SessionServerTest, TaggedRequestsGetPerClassHistograms) {
  SessionServer server(&catalog_);
  std::string id = server.OpenSession().value();
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(server.Submit(
                          id, {.handler = [](Session&) { return Status::OK(); },
                               .tag = "panzoom"})
                    .get()
                    .ok());
  }
  ASSERT_TRUE(server.Submit(id, {.handler = [](Session&) { return Status::OK(); },
                                 .access = SessionServer::Access::kWrite,
                                 .tag = "edit"})
                  .get()
                  .ok());
  // Untagged traffic lands only in the aggregate histogram.
  ASSERT_TRUE(
      server.Submit(id, {.handler = [](Session&) { return Status::OK(); }})
          .get()
          .ok());
  std::string json = server.metrics().ToJson();
  EXPECT_NE(json.find("\"classes\":{"), std::string::npos) << json;
  EXPECT_NE(json.find("\"panzoom\":{\"count\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"edit\":{\"count\":1"), std::string::npos) << json;
  EXPECT_EQ(server.metrics().snapshot().requests_completed, 4u);
}

TEST_F(SessionServerTest, WriteHandlersUpdateSharedCatalog) {
  SessionServer server(&catalog_);
  std::string writer = server.OpenSession().value();
  std::string reader = server.OpenSession().value();
  ASSERT_TRUE(server.Submit(reader, {.handler = [](Session& s) {
                      return BuildProgram(s, "c");
                    }})
                  .get()
                  .ok());
  ASSERT_EQ(display::AsRelation(server.EvaluateCanvas(reader, "c").value())
                .value()
                .num_rows(),
            3u);
  // A kWrite handler replaces T exclusively; readers then see the new rows
  // (the table-version stamp invalidates the memoized chain).
  auto wrote = server.Submit(
      writer,
      {.handler =
           [](Session& s) {
             auto updated = db::MakeRelation({Column{"v", DataType::kInt}},
                                             {{Value::Int(7)}, {Value::Int(8)}});
             TIOGA2_RETURN_IF_ERROR(updated.status());
             return s.ui().catalog()->ReplaceTable("T", updated.value());
           },
       .access = SessionServer::Access::kWrite});
  ASSERT_TRUE(wrote.get().ok());
  EXPECT_EQ(display::AsRelation(server.EvaluateCanvas(reader, "c").value())
                .value()
                .num_rows(),
            2u);
}

TEST_F(SessionServerTest, ConcurrentReadersAndWritersStayConsistent) {
  SessionServer::Options options;
  options.num_threads = 4;
  options.queue_bound = 256;
  SessionServer server(&catalog_, options);
  std::vector<std::string> readers;
  for (int i = 0; i < 4; ++i) {
    std::string id = server.OpenSession().value();
    ASSERT_TRUE(server.Submit(id, {.handler = [](Session& s) {
                        return BuildProgram(s, "c");
                      }})
                    .get()
                    .ok());
    readers.push_back(id);
  }
  std::string writer = server.OpenSession().value();
  std::vector<std::future<Status>> futures;
  for (int round = 0; round < 5; ++round) {
    futures.push_back(server.Submit(
        writer,
        {.handler =
             [round](Session& s) {
               std::vector<std::vector<Value>> rows;
               for (int v = 0; v <= round; ++v) rows.push_back({Value::Int(v + 2)});
               auto updated =
                   db::MakeRelation({Column{"v", DataType::kInt}}, std::move(rows));
               TIOGA2_RETURN_IF_ERROR(updated.status());
               return s.ui().catalog()->ReplaceTable("T", updated.value());
             },
         .access = SessionServer::Access::kWrite,
         .tag = "edit"}));
    for (const std::string& id : readers) {
      futures.push_back(server.Submit(id, {.handler = [](Session& s) {
        // Readers overlap with writers; the rwlock keeps each evaluation
        // against one consistent table version.
        return s.ui().EvaluateCanvas("c").status();
      }, .tag = "panzoom"}));
    }
  }
  for (auto& f : futures) EXPECT_TRUE(f.get().ok());
  EXPECT_EQ(server.metrics().snapshot().requests_rejected, 0u);
}

TEST_F(SessionServerTest, SharedCacheConvergesAcrossSameCanvasSessions) {
  // §7 multi-user claim: M sessions viewing the same canvas over one catalog
  // converge to ~1x evaluation work through the stamp-keyed shared tier,
  // and every session sees byte-identical output.
  constexpr int kSessions = 8;
  SessionServer::Options options;
  options.num_threads = 1;  // serial: makes the fire counts exact
  options.shared_cache_entries = 1024;
  SessionServer server(&catalog_, options);
  ASSERT_NE(server.shared_cache(), nullptr);
  std::vector<std::string> ids;
  for (int i = 0; i < kSessions; ++i) {
    std::string id = server.OpenSession().value();
    ASSERT_TRUE(server.Submit(id, {.handler = [](Session& s) {
                        return BuildProgram(s, "c");
                      }})
                    .get()
                    .ok());
    ids.push_back(id);
  }
  std::set<std::string> fingerprints;
  for (const std::string& id : ids) {
    auto displayable = server.EvaluateCanvas(id, "c");
    ASSERT_TRUE(displayable.ok()) << displayable.status().message();
    fingerprints.insert(testing::FingerprintDisplayable(displayable.value()));
  }
  // Byte-identical across sessions: one distinct fingerprint.
  EXPECT_EQ(fingerprints.size(), 1u);

  // Total work: session 1 fires the program's boxes; sessions 2..M adopt the
  // shared entries instead of re-firing. The bound is 2x one session's fires
  // (the issue's convergence criterion), and the shared tier must have
  // served most sessions.
  uint64_t total_fired = 0;
  uint64_t first_fired = 0;
  uint64_t total_shared_hits = 0;
  for (size_t i = 0; i < ids.size(); ++i) {
    uint64_t fired = 0;
    uint64_t shared = 0;
    ASSERT_TRUE(server.Submit(ids[i], {.handler = [&fired, &shared](Session& s) {
                        fired = s.ui().engine().stats().boxes_fired;
                        shared = s.ui().engine().stats().shared_hits;
                        return Status::OK();
                      }})
                    .get()
                    .ok());
    if (i == 0) first_fired = fired;
    total_fired += fired;
    total_shared_hits += shared;
  }
  ASSERT_GT(first_fired, 0u);
  EXPECT_LE(total_fired, 2 * first_fired)
      << "shared tier failed to deduplicate evaluation work";
  EXPECT_GT(total_shared_hits, 0u);
  dataflow::SharedMemoCache::Stats stats = server.shared_cache()->stats();
  EXPECT_GE(stats.hits, static_cast<uint64_t>(kSessions - 1));
  EXPECT_EQ(stats.hits, total_shared_hits);
  // The metrics JSON surfaces the shared tier (bench_session_load reads it).
  std::string json = server.metrics().ToJson();
  EXPECT_NE(json.find("\"shared_cache\":{\"hits\":"), std::string::npos) << json;
  MetricsSnapshot snap = server.metrics().snapshot();
  EXPECT_EQ(snap.shared_cache_hits, stats.hits);
  EXPECT_EQ(snap.shared_cache_inserts, stats.inserts);
}

TEST_F(SessionServerTest, SharedCacheIsSafeUnderConcurrentSessions) {
  // The TSan target for the shared tier: many sessions race evaluation of
  // the same canvas over one SharedMemoCache on a real pool. No exact fire
  // counts here (concurrent misses may double-fire before the first insert
  // lands) — the assertions are safety ones: every request succeeds and
  // every session sees byte-identical output.
  SessionServer::Options options;
  options.num_threads = 4;
  options.queue_bound = 256;
  options.shared_cache_entries = 1024;
  SessionServer server(&catalog_, options);
  std::vector<std::string> ids;
  for (int i = 0; i < 8; ++i) {
    std::string id = server.OpenSession().value();
    ASSERT_TRUE(server.Submit(id, {.handler = [](Session& s) {
                        return BuildProgram(s, "c");
                      }})
                    .get()
                    .ok());
    ids.push_back(id);
  }
  std::vector<std::future<Status>> futures;
  for (int round = 0; round < 5; ++round) {
    for (const std::string& id : ids) {
      futures.push_back(server.Submit(id, {.handler = [](Session& s) {
        return s.ui().EvaluateCanvas("c").status();
      }, .tag = "panzoom"}));
    }
  }
  for (auto& f : futures) EXPECT_TRUE(f.get().ok());
  std::set<std::string> fingerprints;
  for (const std::string& id : ids) {
    auto displayable = server.EvaluateCanvas(id, "c");
    ASSERT_TRUE(displayable.ok());
    fingerprints.insert(testing::FingerprintDisplayable(displayable.value()));
  }
  EXPECT_EQ(fingerprints.size(), 1u);
  EXPECT_GT(server.shared_cache()->stats().hits, 0u);
}

TEST_F(SessionServerTest, SharedCacheEntriesStayValidAfterTableUpdate) {
  // Stale entries are never served: a catalog write bumps the table version,
  // which changes every downstream stamp, so post-update evaluations miss
  // the shared tier and recompute. The old entries age out via LRU.
  SessionServer::Options options;
  options.num_threads = 1;
  options.shared_cache_entries = 1024;
  SessionServer server(&catalog_, options);
  std::string a = server.OpenSession().value();
  std::string b = server.OpenSession().value();
  for (const std::string& id : {a, b}) {
    ASSERT_TRUE(server.Submit(id, {.handler = [](Session& s) {
                        return BuildProgram(s, "c");
                      }})
                    .get()
                    .ok());
    ASSERT_TRUE(server.EvaluateCanvas(id, "c").ok());
  }
  ASSERT_TRUE(server
                  .Submit(a,
                          {.handler =
                               [](Session& s) {
                                 auto updated = db::MakeRelation(
                                     {Column{"v", DataType::kInt}},
                                     {{Value::Int(7)}, {Value::Int(8)}});
                                 TIOGA2_RETURN_IF_ERROR(updated.status());
                                 return s.ui().catalog()->ReplaceTable(
                                     "T", updated.value());
                               },
                           .access = SessionServer::Access::kWrite})
                  .get()
                  .ok());
  // Both sessions see the new table, not a stale shared entry.
  for (const std::string& id : {a, b}) {
    auto displayable = server.EvaluateCanvas(id, "c");
    ASSERT_TRUE(displayable.ok());
    EXPECT_EQ(display::AsRelation(displayable.value()).value().num_rows(), 2u);
  }
}

// Regression: destroying a server with requests still queued behind a busy
// worker must resolve them — Unavailable("server shutting down") — rather
// than drop their promises (a dropped promise makes future.get() throw
// std::future_error/broken_promise) or run handlers against a server mid-
// teardown.
TEST_F(SessionServerTest, DestroyingServerResolvesQueuedRequestsUnavailable) {
  SessionServer::Options options;
  options.num_threads = 1;  // one worker: everything queues behind it
  options.queue_bound = 8;
  auto server = std::make_unique<SessionServer>(&catalog_, options);
  std::string id = server->OpenSession().value();

  std::promise<void> started_promise;
  std::future<void> started = started_promise.get_future();
  std::promise<void> release;
  std::shared_future<void> latch = release.get_future().share();
  // Occupy the only worker...
  std::future<Status> running =
      server->Submit(id, {.handler = [&started_promise, latch](Session&) {
        started_promise.set_value();
        latch.wait();
        return Status::OK();
      }});
  started.wait();
  // ...and saturate the queue behind it.
  std::vector<std::future<Status>> queued;
  for (int i = 0; i < 4; ++i) {
    queued.push_back(server->Submit(
        id, {.handler = [](Session&) { return Status::OK(); }}));
  }

  // Destroy from another thread: the destructor publishes the shutdown flag
  // immediately, then blocks draining the pool until the latch releases the
  // running handler. The sleep lets that first store land before the worker
  // is freed to drain the queue.
  std::thread destroyer([&server] { server.reset(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  release.set_value();
  destroyer.join();

  // The in-flight request finished normally; every queued one resolved
  // (no future_error) with the documented shutdown status.
  EXPECT_TRUE(running.get().ok());
  for (auto& future : queued) {
    Status status = future.get();
    EXPECT_TRUE(status.IsUnavailable()) << status.message();
    EXPECT_NE(status.message().find("shutting down"), std::string::npos)
        << status.message();
  }
}

// The epoch-torture case of DESIGN.md §13, run under the TSan/ASan passes in
// scripts/check.sh: concurrent kRead handlers evaluate through epoch-pinned
// catalog snapshots and the lock-free shared memo table while kWrite
// handlers churn table versions (retiring snapshots) and a deliberately tiny
// shared cache evicts on every insert (retiring nodes and tables). Every
// read must render byte-identically to one of the two catalog states — a
// torn read (stamp from one version, rows from another) would produce a
// third fingerprint — and the global domain must show retire/reclaim
// traffic with reclaimed never outrunning retired.
TEST_F(SessionServerTest, EpochTortureCatalogChurnWithSharedCacheEvictions) {
  SessionServer::Options options;
  options.num_threads = 3;
  options.queue_bound = 64;
  options.shared_cache_entries = 2;  // force evictions on nearly every insert
  SessionServer server(&catalog_, options);
  std::string a = server.OpenSession().value();
  std::string b = server.OpenSession().value();
  for (const std::string& id : {a, b}) {
    ASSERT_TRUE(server
                    .Submit(id, {.handler = [](Session& s) {
                      return BuildProgram(s, "c");
                    }})
                    .get()
                    .ok());
  }

  auto content_a = db::MakeRelation({Column{"v", DataType::kInt}},
                                    {{Value::Int(1)}, {Value::Int(2)},
                                     {Value::Int(3)}, {Value::Int(4)}})
                       .value();
  auto content_b = db::MakeRelation({Column{"v", DataType::kInt}},
                                    {{Value::Int(7)}, {Value::Int(8)},
                                     {Value::Int(9)}})
                       .value();
  // The two byte-exact renderings a read is allowed to observe.
  ASSERT_TRUE(catalog_.ReplaceTable("T", content_a).ok());
  std::string fp_a =
      testing::FingerprintDisplayable(server.EvaluateCanvas(a, "c").value());
  ASSERT_TRUE(catalog_.ReplaceTable("T", content_b).ok());
  std::string fp_b =
      testing::FingerprintDisplayable(server.EvaluateCanvas(a, "c").value());
  ASSERT_NE(fp_a, fp_b);

  EpochDomain::Stats before = EpochDomain::Global().stats();
  std::atomic<uint64_t> torn{0};
  std::atomic<uint64_t> renders{0};
  std::vector<std::future<Status>> futures;
  constexpr int kRounds = 30;
  for (int round = 0; round < kRounds; ++round) {
    const auto& content = (round % 2 == 0) ? content_a : content_b;
    futures.push_back(server.Submit(
        a, {.handler =
                [content](Session& s) {
                  return s.ui().catalog()->ReplaceTable("T", content);
                },
            .access = SessionServer::Access::kWrite}));
    for (const std::string& id : {a, b}) {
      futures.push_back(server.Submit(id, {.handler = [&, fp_a,
                                                       fp_b](Session& s) {
        auto displayable = s.ui().EvaluateCanvas("c");
        TIOGA2_RETURN_IF_ERROR(displayable.status());
        std::string fp = testing::FingerprintDisplayable(displayable.value());
        if (fp != fp_a && fp != fp_b) torn.fetch_add(1);
        renders.fetch_add(1);
        return Status::OK();
      }}));
    }
    // Drain periodically so admission control never rejects the torture
    // traffic (rejections would silently shrink coverage).
    if (futures.size() >= 48) {
      for (auto& f : futures) EXPECT_TRUE(f.get().ok());
      futures.clear();
    }
  }
  for (auto& f : futures) EXPECT_TRUE(f.get().ok());

  EXPECT_EQ(torn.load(), 0u);
  EXPECT_GT(renders.load(), 0u);
  EpochDomain::Stats after = EpochDomain::Global().stats();
  // The churn retired catalog snapshots and shared-cache structures through
  // the global domain, readers pinned it, and reclamation never ran ahead
  // of retirement.
  EXPECT_GT(after.retired, before.retired);
  EXPECT_GT(after.pins, before.pins);
  EXPECT_LE(after.reclaimed, after.retired);
}

}  // namespace
}  // namespace tioga2::runtime
