// Tests for the multi-session server: session lifecycle, concurrent
// sessions over one catalog, bounded admission (reject, never block),
// deadlines, and read/write catalog exclusion.

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "db/catalog.h"
#include "db/relation.h"
#include "runtime/session_server.h"

namespace tioga2::runtime {
namespace {

using db::Column;
using types::DataType;
using types::Value;

class SessionServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto table = db::MakeRelation({Column{"v", DataType::kInt}},
                                  {{Value::Int(1)}, {Value::Int(2)}, {Value::Int(3)},
                                   {Value::Int(4)}})
                     .value();
    ASSERT_TRUE(catalog_.RegisterTable("T", table).ok());
  }

  /// Builds T -> Restrict(v > 1) -> viewer on canvas `canvas` inside `s`.
  static Status BuildProgram(Session& s, const std::string& canvas) {
    ui::Session& ui = s.ui();
    TIOGA2_ASSIGN_OR_RETURN(std::string table, ui.AddTable("T"));
    TIOGA2_ASSIGN_OR_RETURN(std::string restrict,
                            ui.AddBox("Restrict", {{"predicate", "v > 1"}}));
    TIOGA2_RETURN_IF_ERROR(ui.Connect(table, 0, restrict, 0));
    TIOGA2_RETURN_IF_ERROR(ui.AddViewer(restrict, 0, canvas).status());
    return Status::OK();
  }

  db::Catalog catalog_;
};

TEST_F(SessionServerTest, SessionLifecycle) {
  SessionServer server(&catalog_);
  EXPECT_EQ(server.OpenSession().value(), "s1");
  EXPECT_EQ(server.OpenSession().value(), "s2");
  EXPECT_EQ(server.OpenSession("alice").value(), "alice");
  EXPECT_TRUE(server.OpenSession("alice").status().IsAlreadyExists());
  EXPECT_EQ(server.num_sessions(), 3u);
  EXPECT_TRUE(server.CloseSession("s1").ok());
  EXPECT_TRUE(server.CloseSession("s1").IsNotFound());
  EXPECT_EQ(server.num_sessions(), 2u);
  // Submitting to a closed (or unknown) session resolves NotFound.
  auto fut = server.Submit("s1", [](Session&) { return Status::OK(); });
  EXPECT_TRUE(fut.get().IsNotFound());
}

TEST_F(SessionServerTest, EvaluatesCanvasThroughSession) {
  SessionServer server(&catalog_);
  std::string id = server.OpenSession().value();
  auto built = server.Submit(id, [](Session& s) { return BuildProgram(s, "c"); });
  ASSERT_TRUE(built.get().ok());
  auto displayable = server.EvaluateCanvas(id, "c");
  ASSERT_TRUE(displayable.ok());
  auto relation = display::AsRelation(displayable.value());
  ASSERT_TRUE(relation.ok());
  EXPECT_EQ(relation.value().num_rows(), 3u);
  // The session's viewer surface works too.
  auto viewed = server.Submit(id, [](Session& s) {
    TIOGA2_ASSIGN_OR_RETURN(viewer::Viewer * v, s.GetViewer("c"));
    return v != nullptr ? Status::OK() : Status::Internal("null viewer");
  });
  EXPECT_TRUE(viewed.get().ok());
  EXPECT_GE(server.metrics().snapshot().requests_completed, 3u);
}

TEST_F(SessionServerTest, SessionsAreIsolated) {
  SessionServer server(&catalog_);
  std::string a = server.OpenSession().value();
  std::string b = server.OpenSession().value();
  ASSERT_TRUE(
      server.Submit(a, [](Session& s) { return BuildProgram(s, "c"); }).get().ok());
  // Session b never built a program: its canvas registry is empty.
  EXPECT_TRUE(server.EvaluateCanvas(b, "c").status().IsNotFound());
  EXPECT_TRUE(server.EvaluateCanvas(a, "c").ok());
}

TEST_F(SessionServerTest, SustainsEightConcurrentSessions) {
  SessionServer::Options options;
  options.num_threads = 4;
  SessionServer server(&catalog_, options);
  std::vector<std::string> ids;
  for (int i = 0; i < 8; ++i) ids.push_back(server.OpenSession().value());
  std::vector<std::future<Status>> futures;
  for (const std::string& id : ids) {
    futures.push_back(
        server.Submit(id, [](Session& s) { return BuildProgram(s, "c"); }));
    // Several evaluation requests per session, interleaved across sessions.
    for (int r = 0; r < 3; ++r) {
      futures.push_back(server.Submit(id, [](Session& s) {
        return s.ui().EvaluateCanvas("c").status();
      }));
    }
  }
  for (auto& f : futures) EXPECT_TRUE(f.get().ok());
  MetricsSnapshot snap = server.metrics().snapshot();
  EXPECT_EQ(snap.requests_completed, futures.size());
  EXPECT_EQ(snap.requests_rejected, 0u);
}

TEST_F(SessionServerTest, RejectsBeyondQueueBoundWithoutBlocking) {
  SessionServer::Options options;
  options.num_threads = 2;
  options.queue_bound = 2;
  SessionServer server(&catalog_, options);
  std::string id = server.OpenSession().value();
  // Two handlers park on a latch, filling the bound.
  std::promise<void> release;
  std::shared_future<void> latch = release.get_future().share();
  auto first = server.Submit(id, [latch](Session&) {
    latch.wait();
    return Status::OK();
  });
  auto second = server.Submit(id, [latch](Session&) {
    latch.wait();
    return Status::OK();
  });
  // The third is rejected immediately — Submit resolves without blocking.
  auto start = std::chrono::steady_clock::now();
  auto third = server.Submit(id, [](Session&) { return Status::OK(); });
  Status rejected = third.get();
  auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_TRUE(rejected.IsUnavailable()) << rejected.message();
  EXPECT_LT(elapsed, std::chrono::seconds(5));
  release.set_value();
  EXPECT_TRUE(first.get().ok());
  EXPECT_TRUE(second.get().ok());
  MetricsSnapshot snap = server.metrics().snapshot();
  EXPECT_EQ(snap.requests_rejected, 1u);
  EXPECT_EQ(snap.requests_completed, 2u);
  // Capacity freed: new requests are admitted again.
  EXPECT_TRUE(server.Submit(id, [](Session&) { return Status::OK(); }).get().ok());
}

TEST_F(SessionServerTest, ExpiredRequestResolvesDeadlineExceeded) {
  SessionServer::Options options;
  options.num_threads = 1;
  SessionServer server(&catalog_, options);
  std::string id = server.OpenSession().value();
  // Occupy the only worker long enough for the deadline to pass.
  auto slow = server.Submit(id, [](Session&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    return Status::OK();
  });
  auto expired = server.Submit(
      id, [](Session&) { return Status::OK(); }, SessionServer::Access::kRead,
      std::chrono::milliseconds(1));
  EXPECT_TRUE(slow.get().ok());
  EXPECT_TRUE(expired.get().IsDeadlineExceeded());
  EXPECT_GE(server.metrics().snapshot().requests_timed_out, 1u);
}

TEST_F(SessionServerTest, WriteHandlersUpdateSharedCatalog) {
  SessionServer server(&catalog_);
  std::string writer = server.OpenSession().value();
  std::string reader = server.OpenSession().value();
  ASSERT_TRUE(server.Submit(reader, [](Session& s) { return BuildProgram(s, "c"); })
                  .get()
                  .ok());
  ASSERT_EQ(display::AsRelation(server.EvaluateCanvas(reader, "c").value())
                .value()
                .num_rows(),
            3u);
  // A kWrite handler replaces T exclusively; readers then see the new rows
  // (the table-version stamp invalidates the memoized chain).
  auto wrote = server.Submit(
      writer,
      [](Session& s) {
        auto updated = db::MakeRelation({Column{"v", DataType::kInt}},
                                        {{Value::Int(7)}, {Value::Int(8)}});
        TIOGA2_RETURN_IF_ERROR(updated.status());
        return s.ui().catalog()->ReplaceTable("T", updated.value());
      },
      SessionServer::Access::kWrite);
  ASSERT_TRUE(wrote.get().ok());
  EXPECT_EQ(display::AsRelation(server.EvaluateCanvas(reader, "c").value())
                .value()
                .num_rows(),
            2u);
}

TEST_F(SessionServerTest, ConcurrentReadersAndWritersStayConsistent) {
  SessionServer::Options options;
  options.num_threads = 4;
  options.queue_bound = 256;
  SessionServer server(&catalog_, options);
  std::vector<std::string> readers;
  for (int i = 0; i < 4; ++i) {
    std::string id = server.OpenSession().value();
    ASSERT_TRUE(
        server.Submit(id, [](Session& s) { return BuildProgram(s, "c"); }).get().ok());
    readers.push_back(id);
  }
  std::string writer = server.OpenSession().value();
  std::vector<std::future<Status>> futures;
  for (int round = 0; round < 5; ++round) {
    futures.push_back(server.Submit(
        writer,
        [round](Session& s) {
          std::vector<std::vector<Value>> rows;
          for (int v = 0; v <= round; ++v) rows.push_back({Value::Int(v + 2)});
          auto updated =
              db::MakeRelation({Column{"v", DataType::kInt}}, std::move(rows));
          TIOGA2_RETURN_IF_ERROR(updated.status());
          return s.ui().catalog()->ReplaceTable("T", updated.value());
        },
        SessionServer::Access::kWrite));
    for (const std::string& id : readers) {
      futures.push_back(server.Submit(id, [](Session& s) {
        // Readers overlap with writers; the rwlock keeps each evaluation
        // against one consistent table version.
        return s.ui().EvaluateCanvas("c").status();
      }));
    }
  }
  for (auto& f : futures) EXPECT_TRUE(f.get().ok());
  EXPECT_EQ(server.metrics().snapshot().requests_rejected, 0u);
}

}  // namespace
}  // namespace tioga2::runtime
