#include <gtest/gtest.h>

#include "draw/color.h"
#include "draw/drawable.h"

namespace tioga2::draw {
namespace {

TEST(ColorTest, HexRoundTrip) {
  for (const Color& color : {kBlack, kWhite, kRed, kGreen, kBlue, Color{1, 2, 3}}) {
    Color parsed;
    ASSERT_TRUE(ColorFromHex(ColorToHex(color), &parsed));
    EXPECT_EQ(parsed, color);
  }
}

TEST(ColorTest, HexFormat) {
  EXPECT_EQ(ColorToHex(Color{255, 0, 16}), "#ff0010");
  EXPECT_EQ(ColorToHex(kBlack), "#000000");
}

TEST(ColorTest, ParseRejectsMalformed) {
  Color out;
  EXPECT_FALSE(ColorFromHex("ff0010", &out));
  EXPECT_FALSE(ColorFromHex("#ff001", &out));
  EXPECT_FALSE(ColorFromHex("#ff00100", &out));
  EXPECT_FALSE(ColorFromHex("#gg0010", &out));
  EXPECT_TRUE(ColorFromHex("#AbCdEf", &out));  // mixed case accepted
  EXPECT_EQ(out, (Color{0xAB, 0xCD, 0xEF}));
}

TEST(ColorTest, LerpEndpointsAndMidpoint) {
  EXPECT_EQ(LerpColor(kBlack, kWhite, 0.0), kBlack);
  EXPECT_EQ(LerpColor(kBlack, kWhite, 1.0), kWhite);
  Color mid = LerpColor(kBlack, kWhite, 0.5);
  EXPECT_NEAR(mid.r, 128, 1);
  // t clamps outside [0, 1].
  EXPECT_EQ(LerpColor(kBlack, kWhite, -3.0), kBlack);
  EXPECT_EQ(LerpColor(kBlack, kWhite, 7.0), kWhite);
}

TEST(BBoxTest, ExtendAndUnion) {
  BBox box{0, 0, 1, 1};
  box.Extend(5, -2);
  EXPECT_EQ(box.max_x, 5);
  EXPECT_EQ(box.min_y, -2);
  BBox other{-3, 0, 0, 4};
  box.Union(other);
  EXPECT_EQ(box.min_x, -3);
  EXPECT_EQ(box.max_y, 4);
  EXPECT_EQ(box.Width(), 8);
  EXPECT_EQ(box.Height(), 6);
}

TEST(BBoxTest, ContainsAndIntersects) {
  BBox box{0, 0, 10, 10};
  EXPECT_TRUE(box.Contains(5, 5));
  EXPECT_TRUE(box.Contains(0, 10));  // inclusive edges
  EXPECT_FALSE(box.Contains(-0.1, 5));
  EXPECT_TRUE(box.Intersects(BBox{9, 9, 20, 20}));
  EXPECT_TRUE(box.Intersects(BBox{10, 10, 20, 20}));  // touching counts
  EXPECT_FALSE(box.Intersects(BBox{11, 11, 20, 20}));
}

TEST(DrawableKindTest, NamesRoundTrip) {
  for (DrawableKind kind :
       {DrawableKind::kPoint, DrawableKind::kLine, DrawableKind::kRectangle,
        DrawableKind::kCircle, DrawableKind::kPolygon, DrawableKind::kText,
        DrawableKind::kViewer}) {
    DrawableKind parsed;
    ASSERT_TRUE(DrawableKindFromString(DrawableKindToString(kind), &parsed));
    EXPECT_EQ(parsed, kind);
  }
  DrawableKind unused;
  EXPECT_FALSE(DrawableKindFromString("splat", &unused));
}

TEST(DrawableTest, FactoriesSetGeometry) {
  Drawable circle = MakeCircle(3.0, kRed, FillMode::kFilled);
  EXPECT_EQ(circle.kind, DrawableKind::kCircle);
  EXPECT_EQ(circle.a, 3.0);
  EXPECT_EQ(circle.color, kRed);
  EXPECT_EQ(circle.style.fill, FillMode::kFilled);

  Drawable line = MakeLine(4, -2, kBlue, 3);
  EXPECT_EQ(line.kind, DrawableKind::kLine);
  EXPECT_EQ(line.style.thickness, 3);

  Drawable text = MakeText("LAX", 12.0, kGreen);
  EXPECT_EQ(text.text, "LAX");
  EXPECT_EQ(text.a, 12.0);

  WormholeSpec spec{"temps", 5, 6, 2.0};
  Drawable viewer = MakeViewer(10, 8, spec);
  EXPECT_EQ(viewer.kind, DrawableKind::kViewer);
  EXPECT_EQ(viewer.wormhole.destination_canvas, "temps");
}

TEST(DrawableTest, CircleBoundsCentered) {
  Drawable circle = MakeCircle(2.0);
  circle.offset_x = 10;
  circle.offset_y = -1;
  BBox bounds = circle.Bounds();
  EXPECT_EQ(bounds.min_x, 8);
  EXPECT_EQ(bounds.max_x, 12);
  EXPECT_EQ(bounds.min_y, -3);
  EXPECT_EQ(bounds.max_y, 1);
}

TEST(DrawableTest, PolygonBoundsCoverVertices) {
  Drawable polygon = MakePolygon({{0, 0}, {4, 1}, {-2, 5}});
  BBox bounds = polygon.Bounds();
  EXPECT_EQ(bounds.min_x, -2);
  EXPECT_EQ(bounds.max_x, 4);
  EXPECT_EQ(bounds.max_y, 5);
}

TEST(DrawableTest, TextBoundsScaleWithLength) {
  Drawable shorter = MakeText("ab", 10.0);
  Drawable longer = MakeText("abcdef", 10.0);
  EXPECT_LT(shorter.Bounds().max_x, longer.Bounds().max_x);
  EXPECT_EQ(shorter.Bounds().max_y, 10.0);
}

TEST(DrawableListTest, CombinePreservesOrderAndAppliesOffset) {
  DrawableList first = MakeDrawableList({MakeCircle(1.0)});
  DrawableList second = MakeDrawableList({MakePoint(), MakeText("x", 5)});
  DrawableList combined = CombineDrawableLists(first, second, 10, 20);
  ASSERT_EQ(combined->size(), 3u);
  EXPECT_EQ((*combined)[0].kind, DrawableKind::kCircle);
  EXPECT_EQ((*combined)[0].offset_x, 0);
  EXPECT_EQ((*combined)[1].offset_x, 10);
  EXPECT_EQ((*combined)[1].offset_y, 20);
  EXPECT_EQ((*combined)[2].offset_x, 10);
}

TEST(DrawableListTest, EqualsIsStructural) {
  DrawableList a = MakeDrawableList({MakeCircle(1.0)});
  DrawableList b = MakeDrawableList({MakeCircle(1.0)});
  DrawableList c = MakeDrawableList({MakeCircle(2.0)});
  EXPECT_TRUE(DrawableListEquals(a, b));
  EXPECT_FALSE(DrawableListEquals(a, c));
  EXPECT_TRUE(DrawableListEquals(nullptr, MakeDrawableList({})));
}

TEST(DrawableListTest, BoundsUnionMembers) {
  Drawable left = MakeCircle(1.0);
  left.offset_x = -5;
  Drawable right = MakeCircle(1.0);
  right.offset_x = 5;
  BBox bounds = DrawableListBounds(MakeDrawableList({left, right}));
  EXPECT_EQ(bounds.min_x, -6);
  EXPECT_EQ(bounds.max_x, 6);
}

TEST(DrawableListTest, ToStringMentionsKinds) {
  DrawableList list = MakeDrawableList({MakeCircle(2.0, kRed), MakeText("hi", 4)});
  std::string text = DrawableListToString(list);
  EXPECT_NE(text.find("circle"), std::string::npos);
  EXPECT_NE(text.find("text"), std::string::npos);
  EXPECT_NE(text.find("hi"), std::string::npos);
}

}  // namespace
}  // namespace tioga2::draw
