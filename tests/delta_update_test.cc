// Delta propagation equivalence: after randomized single-tuple §8 edits,
// every figure program evaluates to bit-identical outputs and stamps whether
// the engine maintained its memo cache incrementally (Invalidation::Delta)
// or recomputed from scratch — through both the serial Engine and the
// ParallelEngine. This is the guarantee that makes the delta fast path
// invisible: same fingerprints, same stamps, only less work.

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <map>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include "boxes/relational_boxes.h"
#include "render/framebuffer.h"
#include "render/raster_surface.h"
#include "runtime/parallel_engine.h"
#include "runtime/thread_pool.h"
#include "testing/fig_programs.h"
#include "tioga2/environment.h"

namespace tioga2::testing {
namespace {

/// A canvas evaluation target: the edge feeding a viewer box.
struct Target {
  std::string canvas;
  std::string from;
  size_t from_port = 0;
};

std::vector<Target> TargetsOf(const dataflow::Graph& graph) {
  std::vector<Target> targets;
  for (const std::string& id : graph.BoxIds()) {
    const auto* viewer =
        dynamic_cast<const boxes::ViewerBox*>(graph.GetBox(id).value());
    if (viewer == nullptr) continue;
    std::optional<dataflow::Edge> edge = graph.IncomingEdge(id, 0);
    if (!edge.has_value()) continue;
    targets.push_back(Target{viewer->canvas(), edge->from_box, edge->from_port});
  }
  return targets;
}

/// The base tables the program reads (sorted, unique).
std::vector<std::string> TablesOf(const dataflow::Graph& graph) {
  std::vector<std::string> tables;
  for (const std::string& id : graph.BoxIds()) {
    const auto* table =
        dynamic_cast<const boxes::TableBox*>(graph.GetBox(id).value());
    if (table == nullptr) continue;
    if (std::find(tables.begin(), tables.end(), table->table()) == tables.end()) {
      tables.push_back(table->table());
    }
  }
  std::sort(tables.begin(), tables.end());
  return tables;
}

/// Builds `program` into a fresh environment.
std::unique_ptr<Environment> BuildEnv(const FigProgram& program) {
  auto env = std::make_unique<Environment>();
  EXPECT_TRUE(env->LoadDemoData(program.extra_stations, program.num_days).ok())
      << program.name;
  Status built = program.build(env.get());
  EXPECT_TRUE(built.ok()) << program.name << ": " << built.message();
  return env;
}

/// One planned single-tuple edit, absolute (the full replacement tuple), so
/// replaying the same plan on an identically seeded environment installs
/// byte-identical tables.
struct Edit {
  std::string table;
  size_t row = 0;
  db::Tuple new_tuple;
};

/// Perturbs one numeric value of one pseudo-random row per table, two rounds.
/// Deterministic: the RNG is seeded from nothing but the program name, and
/// the plan is built against the freshly loaded (seeded) demo tables.
std::vector<Edit> PlanEdits(Environment* env, const dataflow::Graph& graph,
                            const std::string& program_name) {
  std::mt19937_64 rng(0x7109a2 ^ std::hash<std::string>{}(program_name));
  std::vector<Edit> edits;
  for (int round = 0; round < 2; ++round) {
    for (const std::string& table : TablesOf(graph)) {
      auto relation = env->catalog().GetTable(table);
      if (!relation.ok() || relation.value()->num_rows() == 0) continue;
      const db::Relation& rel = *relation.value();
      size_t row = rng() % rel.num_rows();
      std::vector<size_t> numeric;
      for (size_t c = 0; c < rel.num_columns(); ++c) {
        const types::Value& v = rel.at(row, c);
        if (v.is_int() || v.is_float()) numeric.push_back(c);
      }
      if (numeric.empty()) continue;
      size_t col = numeric[rng() % numeric.size()];
      db::Tuple tuple = rel.row(row);
      if (tuple[col].is_int()) {
        tuple[col] = types::Value::Int(tuple[col].int_value() +
                                       1 + static_cast<int64_t>(rng() % 5));
      } else {
        tuple[col] = types::Value::Float(tuple[col].float_value() +
                                         0.25 * (1.0 + static_cast<double>(rng() % 4)));
      }
      edits.push_back(Edit{table, row, std::move(tuple)});
    }
  }
  return edits;
}

/// Reference outcome: a fresh environment with the edits installed before
/// any evaluation, evaluated cold through the serial engine.
struct Reference {
  std::map<std::string, std::string> fingerprints;  // canvas -> fingerprint
  std::map<std::string, std::optional<uint64_t>> stamps;
};

Reference FullRecompute(const FigProgram& program, const std::vector<Edit>& edits) {
  Reference ref;
  auto env = BuildEnv(program);
  for (const Edit& edit : edits) {
    auto delta = env->catalog().UpdateRow(edit.table, edit.row, edit.new_tuple);
    EXPECT_TRUE(delta.ok()) << edit.table << ": " << delta.status().message();
  }
  ui::Session& session = env->session();
  for (const Target& t : TargetsOf(session.graph())) {
    auto value = session.engine().Evaluate(session.graph(), t.from, t.from_port);
    EXPECT_TRUE(value.ok()) << t.canvas << ": " << value.status().message();
    if (value.ok()) ref.fingerprints[t.canvas] = FingerprintBoxValue(value.value());
  }
  for (const std::string& id : session.graph().BoxIds()) {
    ref.stamps[id] = session.engine().cache().StampOf(id);
  }
  return ref;
}

TEST(DeltaUpdateTest, DeltaMatchesFullRecomputeOnEveryFigProgram) {
  for (const FigProgram& program : AllFigPrograms()) {
    SCOPED_TRACE(program.name);
    auto env = BuildEnv(program);
    ui::Session& session = env->session();
    std::vector<Target> targets = TargetsOf(session.graph());
    ASSERT_EQ(targets.size(), program.canvases.size());

    // Warm the cache (the delta path maintains memoized entries; with a cold
    // cache there is nothing to maintain).
    for (const Target& t : targets) {
      auto value = session.engine().Evaluate(session.graph(), t.from, t.from_port);
      ASSERT_TRUE(value.ok()) << t.canvas << ": " << value.status().message();
    }

    std::vector<Edit> edits = PlanEdits(env.get(), session.graph(), program.name);
    ASSERT_FALSE(edits.empty());
    size_t applied = 0;
    for (const Edit& edit : edits) {
      auto delta = env->catalog().UpdateRow(edit.table, edit.row, edit.new_tuple);
      ASSERT_TRUE(delta.ok()) << edit.table << ": " << delta.status().message();
      auto result = session.engine().Invalidate(
          session.graph(), dataflow::Invalidation::Delta(delta.value()));
      ASSERT_TRUE(result.ok()) << result.status().message();
      applied += result.value().deltas_applied;
    }
    // Every program reads at least one table whose source box is warm, and
    // TableBox always accepts its own table's delta.
    EXPECT_GT(applied, 0u);

    Reference ref = FullRecompute(program, edits);
    for (const Target& t : targets) {
      auto value = session.engine().Evaluate(session.graph(), t.from, t.from_port);
      ASSERT_TRUE(value.ok()) << t.canvas << ": " << value.status().message();
      ASSERT_EQ(ref.fingerprints.count(t.canvas), 1u);
      EXPECT_EQ(FingerprintBoxValue(value.value()), ref.fingerprints.at(t.canvas))
          << t.canvas;
    }
    for (const std::string& id : session.graph().BoxIds()) {
      ASSERT_EQ(ref.stamps.count(id), 1u) << id;
      EXPECT_EQ(session.engine().cache().StampOf(id), ref.stamps.at(id)) << id;
    }
  }
}

TEST(DeltaUpdateTest, ParallelDeltaMatchesFullRecomputeOnEveryFigProgram) {
  for (const FigProgram& program : AllFigPrograms()) {
    SCOPED_TRACE(program.name);
    // Plan (and reference) once per program; the plan depends only on the
    // seeded demo data, so it replays identically on every fresh env.
    std::vector<Edit> edits;
    {
      auto plan_env = BuildEnv(program);
      edits = PlanEdits(plan_env.get(), plan_env->session().graph(), program.name);
    }
    ASSERT_FALSE(edits.empty());
    Reference ref = FullRecompute(program, edits);

    for (size_t num_threads : {2u, 8u}) {
      SCOPED_TRACE("threads=" + std::to_string(num_threads));
      auto env = BuildEnv(program);
      ui::Session& session = env->session();
      runtime::ThreadPool pool(num_threads);
      runtime::ParallelEngine engine(session.catalog(), &pool);
      for (const Target& t : TargetsOf(session.graph())) {
        auto value = engine.Evaluate(session.graph(), t.from, t.from_port);
        ASSERT_TRUE(value.ok()) << t.canvas << ": " << value.status().message();
      }
      for (const Edit& edit : edits) {
        auto delta = env->catalog().UpdateRow(edit.table, edit.row, edit.new_tuple);
        ASSERT_TRUE(delta.ok()) << edit.table << ": " << delta.status().message();
        auto result = engine.Invalidate(
            session.graph(), dataflow::Invalidation::Delta(delta.value()));
        ASSERT_TRUE(result.ok()) << result.status().message();
      }
      for (const Target& t : TargetsOf(session.graph())) {
        auto value = engine.Evaluate(session.graph(), t.from, t.from_port);
        ASSERT_TRUE(value.ok()) << t.canvas << ": " << value.status().message();
        ASSERT_EQ(ref.fingerprints.count(t.canvas), 1u);
        EXPECT_EQ(FingerprintBoxValue(value.value()), ref.fingerprints.at(t.canvas))
            << t.canvas;
      }
      for (const std::string& id : session.graph().BoxIds()) {
        ASSERT_EQ(ref.stamps.count(id), 1u) << id;
        EXPECT_EQ(engine.cache().StampOf(id), ref.stamps.at(id)) << id;
      }
    }
  }
}

// Boxes without a delta fast path (fig03's Sample and Join) decline and are
// evicted; the counters say so, and the results stay correct anyway.
TEST(DeltaUpdateTest, BoxesWithoutFastPathFallBackToEviction) {
  std::vector<FigProgram> programs = AllFigPrograms();
  const FigProgram& fig03 = programs[1];
  ASSERT_EQ(fig03.name, "fig03");

  auto env = BuildEnv(fig03);
  ui::Session& session = env->session();
  std::vector<Target> targets = TargetsOf(session.graph());
  for (const Target& t : targets) {
    ASSERT_TRUE(
        session.engine().Evaluate(session.graph(), t.from, t.from_port).ok());
  }

  // Edit Observations: its delta flows into Sample, which has no fast path.
  auto relation = env->catalog().GetTable("Observations");
  ASSERT_TRUE(relation.ok());
  db::Tuple tuple = relation.value()->row(0);
  auto temp = relation.value()->schema()->ColumnIndex("temperature");
  ASSERT_TRUE(temp.ok());
  tuple[temp.value()] =
      types::Value::Float(tuple[temp.value()].float_value() + 1.0);
  std::vector<Edit> edits = {Edit{"Observations", 0, tuple}};
  auto delta = env->catalog().UpdateRow("Observations", 0, edits[0].new_tuple);
  ASSERT_TRUE(delta.ok());
  auto result = session.engine().Invalidate(
      session.graph(), dataflow::Invalidation::Delta(delta.value()));
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result.value().deltas_applied, 0u);     // the Table box accepts
  EXPECT_GT(result.value().delta_fallbacks, 0u);    // Sample declines
  EXPECT_GT(result.value().entries_evicted, 0u);    // ... and is evicted
  EXPECT_EQ(session.engine().stats().delta_fallbacks,
            result.value().delta_fallbacks);

  Reference ref = FullRecompute(fig03, edits);
  for (const Target& t : targets) {
    auto value = session.engine().Evaluate(session.graph(), t.from, t.from_port);
    ASSERT_TRUE(value.ok()) << t.canvas;
    EXPECT_EQ(FingerprintBoxValue(value.value()), ref.fingerprints.at(t.canvas))
        << t.canvas;
  }
}

// The delta renderer: after a single-tuple edit, repainting only the dirty
// rectangles produces a framebuffer byte-identical to a full Clear + render
// of the new content.
TEST(DeltaUpdateTest, RenderDeltaToIsPixelIdenticalToFullRepaint) {
  std::vector<FigProgram> programs = AllFigPrograms();
  const FigProgram& fig07 = programs[4];
  ASSERT_EQ(fig07.name, "fig07");

  auto env = BuildEnv(fig07);
  ui::Session& session = env->session();
  auto viewer = env->GetViewer("fig7");
  ASSERT_TRUE(viewer.ok()) << viewer.status().message();
  constexpr int kW = 320, kH = 240;
  ASSERT_TRUE(viewer.value()->FitContent(kW, kH).ok());

  viewer::RenderOptions options;
  options.registry = &session.registry();
  render::Framebuffer fb_delta(kW, kH);
  render::RasterSurface surface_delta(&fb_delta);
  ASSERT_TRUE(viewer.value()->RenderTo(&surface_delta, options).ok());

  // Nudge one Louisiana station: its dot and label move a little.
  auto stations = env->catalog().GetTable("Stations");
  ASSERT_TRUE(stations.ok());
  auto state_col = stations.value()->schema()->ColumnIndex("state");
  auto lat_col = stations.value()->schema()->ColumnIndex("latitude");
  ASSERT_TRUE(state_col.ok());
  ASSERT_TRUE(lat_col.ok());
  std::optional<size_t> target_row;
  for (size_t r = 0; r < stations.value()->num_rows(); ++r) {
    const types::Value& state = stations.value()->at(r, state_col.value());
    if (state.is_string() && state.string_value() == "LA") {
      target_row = r;
      break;
    }
  }
  ASSERT_TRUE(target_row.has_value());
  db::Tuple tuple = stations.value()->row(*target_row);
  tuple[lat_col.value()] =
      types::Value::Float(tuple[lat_col.value()].float_value() + 0.05);
  auto delta = env->catalog().UpdateRow("Stations", *target_row, tuple);
  ASSERT_TRUE(delta.ok());
  auto result = session.engine().Invalidate(
      session.graph(), dataflow::Invalidation::Delta(delta.value()));
  ASSERT_TRUE(result.ok());

  // The whole fig07 chain is delta-capable, so the canvas value must carry
  // an edit script — that is what the dirty-rect renderer consumes.
  const Target* fig7_target = nullptr;
  std::vector<Target> targets = TargetsOf(session.graph());
  for (const Target& t : targets) {
    if (t.canvas == "fig7") fig7_target = &t;
  }
  ASSERT_NE(fig7_target, nullptr);
  auto box_deltas = result.value().box_deltas.find(fig7_target->from);
  ASSERT_NE(box_deltas, result.value().box_deltas.end())
      << "canvas value fell back to recompute";
  ASSERT_GT(box_deltas->second.size(), fig7_target->from_port);
  const dataflow::ValueDelta& canvas_delta =
      box_deltas->second[fig7_target->from_port];
  ASSERT_FALSE(canvas_delta.unchanged());

  auto stats = viewer.value()->RenderDeltaTo(&surface_delta, canvas_delta,
                                             draw::kWhite, options);
  ASSERT_TRUE(stats.ok()) << stats.status().message();

  render::Framebuffer fb_full(kW, kH);
  render::RasterSurface surface_full(&fb_full);
  ASSERT_TRUE(viewer.value()->RenderTo(&surface_full, options).ok());

  size_t mismatches = 0;
  for (int y = 0; y < kH; ++y) {
    for (int x = 0; x < kW; ++x) {
      if (!(fb_delta.Get(x, y) == fb_full.Get(x, y))) ++mismatches;
    }
  }
  EXPECT_EQ(mismatches, 0u);
  // The render drew something at all.
  EXPECT_GT(fb_full.CountPixelsNotEqual(draw::kWhite), 0u);

  // A delta the renderer cannot bound (an insert op) falls back to a full
  // repaint — still pixel-identical.
  dataflow::ValueDelta insert_delta = canvas_delta;
  insert_delta.members[0].ops[0].kind = dataflow::RowOp::Kind::kInsert;
  render::Framebuffer fb_fallback(kW, kH);
  render::RasterSurface surface_fallback(&fb_fallback);
  ASSERT_TRUE(viewer.value()->RenderTo(&surface_fallback, options).ok());
  auto fallback = viewer.value()->RenderDeltaTo(&surface_fallback, insert_delta,
                                                draw::kWhite, options);
  ASSERT_TRUE(fallback.ok()) << fallback.status().message();
  mismatches = 0;
  for (int y = 0; y < kH; ++y) {
    for (int x = 0; x < kW; ++x) {
      if (!(fb_fallback.Get(x, y) == fb_full.Get(x, y))) ++mismatches;
    }
  }
  EXPECT_EQ(mismatches, 0u);
}

}  // namespace
}  // namespace tioga2::testing
