// Tests for the concurrent evaluation runtime: the ThreadPool, and the
// ParallelEngine's equivalence with the serial dataflow::Engine (same
// results, same stamps, same error messages — only the schedule differs).

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>

#include "boxes/relational_boxes.h"
#include "dataflow/engine.h"
#include "db/relation.h"
#include "runtime/metrics.h"
#include "runtime/parallel_engine.h"
#include "runtime/thread_pool.h"

namespace tioga2::runtime {
namespace {

using boxes::RestrictBox;
using boxes::TableBox;
using dataflow::BoxValue;
using dataflow::Engine;
using dataflow::Graph;
using db::Column;
using types::DataType;
using types::Value;

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(4);
    EXPECT_EQ(pool.num_threads(), 4u);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    }
    // Destructor drains the queue before joining.
  }
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, TasksMaySubmitFurtherTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    pool.Submit([&] {
      count.fetch_add(1);
      pool.Submit([&] { count.fetch_add(1); });
    });
  }
  EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPoolTest, AtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
}

class ParallelEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto table = db::MakeRelation({Column{"v", DataType::kInt}},
                                  {{Value::Int(1)}, {Value::Int(2)}, {Value::Int(3)},
                                   {Value::Int(4)}})
                     .value();
    ASSERT_TRUE(catalog_.RegisterTable("T", table).ok());
  }

  /// table -> restrict("v > 1"), returning the restrict's id.
  std::string BuildChain() {
    std::string table = graph_.AddBox(std::make_unique<TableBox>("T")).value();
    std::string restrict =
        graph_.AddBox(std::make_unique<RestrictBox>("v > 1")).value();
    EXPECT_TRUE(graph_.Connect(table, 0, restrict, 0).ok());
    return restrict;
  }

  static Result<size_t> RowsOf(Result<BoxValue> value) {
    TIOGA2_ASSIGN_OR_RETURN(BoxValue v, std::move(value));
    TIOGA2_ASSIGN_OR_RETURN(display::Displayable d, dataflow::AsDisplayable(v));
    TIOGA2_ASSIGN_OR_RETURN(display::DisplayRelation r, display::AsRelation(d));
    return r.num_rows();
  }

  db::Catalog catalog_;
  Graph graph_;
  ThreadPool pool_{4};
};

TEST_F(ParallelEngineTest, MatchesSerialResultsAndStamps) {
  std::string tail = BuildChain();
  Engine serial(&catalog_);
  ParallelEngine parallel(&catalog_, &pool_);
  EXPECT_EQ(RowsOf(serial.Evaluate(graph_, tail, 0)).value(), 3u);
  EXPECT_EQ(RowsOf(parallel.Evaluate(graph_, tail, 0)).value(), 3u);
  // Identical stamp algebra: both caches hold the same stamps per box.
  std::vector<std::string> order = graph_.TopologicalOrder().value();
  for (const std::string& id : order) {
    ASSERT_TRUE(serial.cache().StampOf(id).has_value()) << id;
    EXPECT_EQ(serial.cache().StampOf(id), parallel.cache().StampOf(id)) << id;
  }
}

TEST_F(ParallelEngineTest, WideFanOutMatchesSerial) {
  // One table feeding 16 restricts feeding nothing — all 16 fire
  // concurrently; results must match the serial engine box for box.
  std::string table = graph_.AddBox(std::make_unique<TableBox>("T")).value();
  std::vector<std::string> tails;
  for (int i = 0; i < 16; ++i) {
    std::string r = graph_
                        .AddBox(std::make_unique<RestrictBox>(
                            "v > " + std::to_string(i % 4)))
                        .value();
    ASSERT_TRUE(graph_.Connect(table, 0, r, 0).ok());
    tails.push_back(r);
  }
  Engine serial(&catalog_);
  ParallelEngine parallel(&catalog_, &pool_);
  for (const std::string& tail : tails) {
    EXPECT_EQ(RowsOf(serial.Evaluate(graph_, tail, 0)).value(),
              RowsOf(parallel.Evaluate(graph_, tail, 0)).value())
        << tail;
    EXPECT_EQ(serial.cache().StampOf(tail), parallel.cache().StampOf(tail));
  }
}

TEST_F(ParallelEngineTest, SharesCacheWithSerialEngine) {
  std::string tail = BuildChain();
  Engine serial(&catalog_);
  // Parallel engine memoizing into the serial engine's cache.
  ParallelEngine parallel(&catalog_, &pool_, &serial.cache());
  ASSERT_TRUE(RowsOf(parallel.Evaluate(graph_, tail, 0)).ok());
  EXPECT_EQ(parallel.stats().boxes_fired, 2u);
  // The serial engine finds everything memoized: zero fires, two hits.
  ASSERT_TRUE(RowsOf(serial.Evaluate(graph_, tail, 0)).ok());
  EXPECT_EQ(serial.stats().boxes_fired, 0u);
  EXPECT_GE(serial.stats().cache_hits, 1u);
  // And the reverse direction: serial work is visible to the parallel engine.
  serial.InvalidateAll();
  ASSERT_TRUE(RowsOf(serial.Evaluate(graph_, tail, 0)).ok());
  parallel.ResetStats();
  ASSERT_TRUE(RowsOf(parallel.Evaluate(graph_, tail, 0)).ok());
  EXPECT_EQ(parallel.stats().boxes_fired, 0u);
}

TEST_F(ParallelEngineTest, ErrorMessagesMatchSerial) {
  std::string lone =
      graph_.AddBox(std::make_unique<RestrictBox>("v > 0")).value();
  Engine serial(&catalog_);
  ParallelEngine parallel(&catalog_, &pool_);
  Status serial_status = serial.Evaluate(graph_, lone, 0).status();
  Status parallel_status = parallel.Evaluate(graph_, lone, 0).status();
  EXPECT_TRUE(serial_status.IsFailedPrecondition());
  EXPECT_TRUE(parallel_status.IsFailedPrecondition());
  EXPECT_EQ(serial_status.message(), parallel_status.message());

  // Missing table, bad output port, unknown box: same codes as serial.
  std::string bad = graph_.AddBox(std::make_unique<TableBox>("Nope")).value();
  EXPECT_TRUE(parallel.Evaluate(graph_, bad, 0).status().IsNotFound());
  std::string table = graph_.AddBox(std::make_unique<TableBox>("T")).value();
  Status oor = parallel.Evaluate(graph_, table, 3).status();
  EXPECT_TRUE(oor.IsOutOfRange());
  EXPECT_EQ(oor.message(),
            serial.Evaluate(graph_, table, 3).status().message());
  EXPECT_TRUE(parallel.Evaluate(graph_, "missing", 0).status().IsNotFound());
}

TEST_F(ParallelEngineTest, EvaluateAllSkipsDanglingLikeSerial) {
  std::string table = graph_.AddBox(std::make_unique<TableBox>("T")).value();
  std::string a = graph_.AddBox(std::make_unique<RestrictBox>("v > 1")).value();
  std::string dangling =
      graph_.AddBox(std::make_unique<RestrictBox>("v > 3")).value();
  std::string downstream =
      graph_.AddBox(std::make_unique<RestrictBox>("v > 4")).value();
  ASSERT_TRUE(graph_.Connect(table, 0, a, 0).ok());
  ASSERT_TRUE(graph_.Connect(dangling, 0, downstream, 0).ok());
  Engine serial(&catalog_);
  ASSERT_TRUE(serial.EvaluateAll(graph_).ok());
  ParallelEngine parallel(&catalog_, &pool_);
  ASSERT_TRUE(parallel.EvaluateAll(graph_).ok());
  EXPECT_EQ(parallel.stats().boxes_fired, serial.stats().boxes_fired);
  EXPECT_EQ(parallel.stats().boxes_skipped, serial.stats().boxes_skipped);
  EXPECT_EQ(parallel.stats().boxes_skipped, 2u);
  EXPECT_EQ(parallel.warnings(), serial.warnings());
}

TEST_F(ParallelEngineTest, MemoizesAcrossEvaluations) {
  std::string tail = BuildChain();
  ParallelEngine engine(&catalog_, &pool_);
  ASSERT_TRUE(RowsOf(engine.Evaluate(graph_, tail, 0)).ok());
  EXPECT_EQ(engine.stats().boxes_fired, 2u);
  ASSERT_TRUE(RowsOf(engine.Evaluate(graph_, tail, 0)).ok());
  EXPECT_EQ(engine.stats().boxes_fired, 2u);
  EXPECT_GE(engine.stats().cache_hits, 1u);
}

TEST_F(ParallelEngineTest, InvalidateDownstreamOfEvictsOnlyAffectedBoxes) {
  auto other = db::MakeRelation({Column{"w", DataType::kInt}},
                                {{Value::Int(10)}, {Value::Int(20)}})
                   .value();
  ASSERT_TRUE(catalog_.RegisterTable("U", other).ok());
  std::string t_tail = BuildChain();
  std::string u = graph_.AddBox(std::make_unique<TableBox>("U")).value();
  std::string u_tail =
      graph_.AddBox(std::make_unique<RestrictBox>("w > 5")).value();
  ASSERT_TRUE(graph_.Connect(u, 0, u_tail, 0).ok());
  ParallelEngine engine(&catalog_, &pool_);
  ASSERT_TRUE(RowsOf(engine.Evaluate(graph_, t_tail, 0)).ok());
  ASSERT_TRUE(RowsOf(engine.Evaluate(graph_, u_tail, 0)).ok());
  EXPECT_EQ(engine.stats().boxes_fired, 4u);
  EXPECT_EQ(engine.InvalidateDownstreamOf(graph_, "U"), 2u);
  ASSERT_TRUE(RowsOf(engine.Evaluate(graph_, u_tail, 0)).ok());
  EXPECT_EQ(engine.stats().boxes_fired, 6u);  // U's chain re-fired
  ASSERT_TRUE(RowsOf(engine.Evaluate(graph_, t_tail, 0)).ok());
  EXPECT_EQ(engine.stats().boxes_fired, 6u);  // T's chain stayed memoized
}

TEST_F(ParallelEngineTest, RecordsMetrics) {
  std::string tail = BuildChain();
  Metrics metrics;
  ParallelEngine engine(&catalog_, &pool_, nullptr, &metrics);
  ASSERT_TRUE(RowsOf(engine.Evaluate(graph_, tail, 0)).ok());
  ASSERT_TRUE(RowsOf(engine.Evaluate(graph_, tail, 0)).ok());
  MetricsSnapshot snap = metrics.snapshot();
  EXPECT_EQ(snap.boxes_fired, 2u);
  EXPECT_EQ(snap.cache_misses, 2u);
  EXPECT_GE(snap.cache_hits, 1u);
  // JSON export contains every section and the fired box types.
  std::string json = metrics.ToJson();
  EXPECT_NE(json.find("\"cache\""), std::string::npos);
  EXPECT_NE(json.find("\"requests\""), std::string::npos);
  EXPECT_NE(json.find("\"queue\""), std::string::npos);
  EXPECT_NE(json.find("\"box_fires\""), std::string::npos);
  EXPECT_NE(json.find("\"Table\""), std::string::npos);
  EXPECT_NE(json.find("\"Restrict\""), std::string::npos);
  // The batch_eval section reports the SIMD dispatch tier and the
  // simd-vs-scalar kernel counts (present — if zero — even when the tiers
  // are compiled out or the CPU lacks them).
  EXPECT_NE(json.find("\"batch_eval\""), std::string::npos);
  EXPECT_NE(json.find("\"simd_level\""), std::string::npos);
  EXPECT_NE(json.find("\"simd_batches_sse2\""), std::string::npos);
  EXPECT_NE(json.find("\"simd_batches_avx2\""), std::string::npos);
  EXPECT_NE(json.find("\"simd_rows\""), std::string::npos);
  EXPECT_NE(json.find("\"simd_scalar_fallbacks\""), std::string::npos);
  // Dictionary-encoded string execution counters (likewise always present).
  EXPECT_NE(json.find("\"dict_columns_built\""), std::string::npos);
  EXPECT_NE(json.find("\"dict_simd_batches\""), std::string::npos);
  EXPECT_NE(json.find("\"dict_remap_fallbacks\""), std::string::npos);
  EXPECT_NE(json.find("\"sparse_gathers\""), std::string::npos);
}

TEST(LatencyHistogramTest, QuantilesAndCounts) {
  LatencyHistogram h;
  for (int i = 0; i < 100; ++i) h.Record(10);  // 10 µs
  h.Record(100000);                            // one 100 ms outlier
  EXPECT_EQ(h.count(), 101u);
  EXPECT_EQ(h.max_micros(), 100000u);
  // p50 lands in the 10 µs bucket; its upper bound is well under the outlier.
  EXPECT_LE(h.QuantileUpperBoundMicros(0.5), 64u);
  EXPECT_GE(h.QuantileUpperBoundMicros(0.999), 65536u);
}

// Regression: the raw log2-bucket upper bound can exceed the largest
// observation (1100 µs sits in the [1024, 2048) bucket, bound 2048), which
// used to let metrics JSON report p99_us > max_us. Quantiles must clamp.
TEST(LatencyHistogramTest, QuantilesNeverExceedMax) {
  LatencyHistogram h;
  for (int i = 0; i < 99; ++i) h.Record(1100);
  h.Record(1500);
  double p50 = h.QuantileUpperBoundMicros(0.5);
  double p99 = h.QuantileUpperBoundMicros(0.99);
  EXPECT_LE(p50, p99);
  EXPECT_LE(p99, h.max_micros());
  EXPECT_EQ(p99, 1500.0);  // clamped from the 2048 bucket bound

  // Degenerate single-observation histogram: every quantile is the value's
  // bucket bound clamped to the value itself.
  LatencyHistogram one;
  one.Record(3.0);
  EXPECT_LE(one.QuantileUpperBoundMicros(0.5), one.max_micros());
  EXPECT_LE(one.QuantileUpperBoundMicros(0.99), one.max_micros());
}

TEST(MetricsJsonTest, EscapeJsonStringHandlesHostileInput) {
  EXPECT_EQ(EscapeJsonString("plain"), "plain");
  EXPECT_EQ(EscapeJsonString("a\"b"), "a\\\"b");
  EXPECT_EQ(EscapeJsonString("a\\b"), "a\\\\b");
  EXPECT_EQ(EscapeJsonString("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(EscapeJsonString(std::string("a\x01z", 3)), "a\\u0001z");
}

// Regression: request tags and box-type names are interpolated into JSON
// keys; a tag containing a quote or backslash used to split the key and
// corrupt the whole document.
TEST(MetricsJsonTest, HostileTagsAndBoxTypesAreEscaped) {
  Metrics metrics;
  metrics.RecordRequestComplete(10.0, "pan\"zoom\\deep");
  metrics.RecordBoxFire("Evil\"Box", 5.0);
  std::string json = metrics.ToJson();
  // The raw quote must never appear unescaped inside the keys.
  EXPECT_EQ(json.find("\"pan\"zoom"), std::string::npos);
  EXPECT_NE(json.find("\"pan\\\"zoom\\\\deep\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"Evil\\\"Box\":"), std::string::npos) << json;
  // Every quote in the document is either a delimiter or escaped: strip
  // escaped pairs, then the remaining quote count must be even.
  std::string without_escapes;
  for (size_t i = 0; i < json.size(); ++i) {
    if (json[i] == '\\' && i + 1 < json.size()) {
      ++i;  // drop the escape and the escaped character
      continue;
    }
    without_escapes += json[i];
  }
  size_t quotes = 0;
  for (char c : without_escapes) {
    if (c == '"') ++quotes;
  }
  EXPECT_EQ(quotes % 2, 0u) << json;
}

TEST(MetricsJsonTest, EpochSectionSurfacesGlobalDomainCounters) {
  Metrics metrics;
  std::string json = metrics.ToJson();
  EXPECT_NE(json.find("\"epoch\":{"), std::string::npos);
  EXPECT_NE(json.find("\"advances\":"), std::string::npos);
  EXPECT_NE(json.find("\"retired\":"), std::string::npos);
  EXPECT_NE(json.find("\"reclaimed\":"), std::string::npos);
  MetricsSnapshot snap = metrics.snapshot();
  EXPECT_GE(snap.epoch_current, 2u);  // kFirstEpoch
  EXPECT_GE(snap.epoch_retired, snap.epoch_reclaimed);
}

}  // namespace
}  // namespace tioga2::runtime
