#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "render/font.h"
#include "render/framebuffer.h"
#include "render/raster_surface.h"
#include "render/svg_surface.h"

namespace tioga2::render {
namespace {

using draw::Color;
using draw::FillMode;
using draw::kBlack;
using draw::kRed;
using draw::kWhite;
using draw::Style;

TEST(FramebufferTest, ClearAndPixelAccess) {
  Framebuffer fb(4, 3, kWhite);
  EXPECT_EQ(fb.width(), 4);
  EXPECT_EQ(fb.height(), 3);
  EXPECT_EQ(fb.CountPixels(kWhite), 12u);
  fb.Set(1, 2, kRed);
  EXPECT_EQ(fb.Get(1, 2), kRed);
  EXPECT_EQ(fb.CountPixels(kRed), 1u);
  EXPECT_EQ(fb.CountPixelsNotEqual(kWhite), 1u);
  // Out-of-bounds accesses are safe.
  fb.Set(-1, 0, kRed);
  fb.Set(4, 0, kRed);
  EXPECT_EQ(fb.Get(-1, 0), kBlack);
  EXPECT_EQ(fb.CountPixels(kRed), 1u);
  fb.Clear(kBlack);
  EXPECT_EQ(fb.CountPixels(kBlack), 12u);
}

TEST(FramebufferTest, PpmEncoding) {
  Framebuffer fb(2, 1, kWhite);
  fb.Set(0, 0, Color{1, 2, 3});
  std::string ppm = fb.ToPpm();
  EXPECT_EQ(ppm.substr(0, 11), "P6\n2 1\n255\n");
  EXPECT_EQ(static_cast<unsigned char>(ppm[11]), 1);
  EXPECT_EQ(static_cast<unsigned char>(ppm[12]), 2);
  EXPECT_EQ(static_cast<unsigned char>(ppm[13]), 3);
  EXPECT_EQ(ppm.size(), 11u + 6u);
}

TEST(FramebufferTest, WritePpmFile) {
  Framebuffer fb(2, 2);
  std::string path = ::testing::TempDir() + "/tioga2_fb_test.ppm";
  ASSERT_TRUE(fb.WritePpm(path).ok());
  std::remove(path.c_str());
  EXPECT_TRUE(fb.WritePpm("/nonexistent_dir_zz/x.ppm").IsIOError());
}

TEST(FontTest, GlyphCoverage) {
  // Every printable ASCII character has a real glyph.
  for (char c = ' '; c <= '~'; ++c) {
    EXPECT_TRUE(HasGlyph(c)) << "missing glyph for '" << c << "'";
  }
  EXPECT_FALSE(HasGlyph('\t'));
  EXPECT_FALSE(HasGlyph(static_cast<char>(200)));
}

TEST(FontTest, SpaceIsEmptyAndLettersAreNot) {
  const auto& space = GlyphFor(' ');
  for (uint8_t row : space) EXPECT_EQ(row, 0);
  const auto& letter = GlyphFor('A');
  int on = 0;
  for (uint8_t row : letter) {
    for (int bit = 0; bit < 5; ++bit) on += (row >> bit) & 1;
  }
  EXPECT_GT(on, 8);
}

TEST(FontTest, FallbackBoxForUnknown) {
  const auto& fallback = GlyphFor('\t');
  EXPECT_EQ(fallback[0], 0x1F);
  EXPECT_EQ(fallback[6], 0x1F);
}

class RasterTest : public ::testing::Test {
 protected:
  RasterTest() : fb_(100, 100, kWhite), surface_(&fb_) {}
  Framebuffer fb_;
  RasterSurface surface_;
};

TEST_F(RasterTest, PointAndThickness) {
  surface_.DrawPoint(50, 50, 1, kBlack);
  EXPECT_EQ(fb_.CountPixels(kBlack), 1u);
  surface_.DrawPoint(20, 20, 3, kRed);
  EXPECT_EQ(fb_.CountPixels(kRed), 9u);  // 3x3 block
}

TEST_F(RasterTest, HorizontalAndDiagonalLines) {
  Style style;
  surface_.DrawLine(10, 50, 20, 50, style, kBlack);
  EXPECT_EQ(fb_.CountPixels(kBlack), 11u);  // inclusive endpoints
  fb_.Clear(kWhite);
  surface_.DrawLine(0, 0, 9, 9, style, kBlack);
  EXPECT_EQ(fb_.CountPixels(kBlack), 10u);  // perfect diagonal
  EXPECT_EQ(fb_.Get(5, 5), kBlack);
}

TEST_F(RasterTest, DashedLineHasGaps) {
  Style solid;
  Style dashed;
  dashed.line = draw::LineStyle::kDashed;
  surface_.DrawLine(0, 10, 99, 10, solid, kBlack);
  size_t solid_count = fb_.CountPixels(kBlack);
  fb_.Clear(kWhite);
  surface_.DrawLine(0, 10, 99, 10, dashed, kBlack);
  size_t dashed_count = fb_.CountPixels(kBlack);
  EXPECT_LT(dashed_count, solid_count);
  EXPECT_GT(dashed_count, solid_count / 3);
}

TEST_F(RasterTest, RectOutlineVsFilled) {
  Style outline;
  surface_.DrawRect(10, 10, 20, 10, outline, kBlack);
  size_t outline_pixels = fb_.CountPixels(kBlack);
  fb_.Clear(kWhite);
  Style filled;
  filled.fill = FillMode::kFilled;
  surface_.DrawRect(10, 10, 20, 10, filled, kBlack);
  size_t filled_pixels = fb_.CountPixels(kBlack);
  EXPECT_EQ(filled_pixels, 21u * 11u);
  EXPECT_LT(outline_pixels, filled_pixels);
  // Interior untouched by outline.
  fb_.Clear(kWhite);
  surface_.DrawRect(10, 10, 20, 10, outline, kBlack);
  EXPECT_EQ(fb_.Get(20, 15), kWhite);
  EXPECT_EQ(fb_.Get(10, 10), kBlack);
}

TEST_F(RasterTest, CircleFilledAreaApproximatesPiR2) {
  Style filled;
  filled.fill = FillMode::kFilled;
  surface_.DrawCircle(50, 50, 20, filled, kBlack);
  double area = static_cast<double>(fb_.CountPixels(kBlack));
  EXPECT_NEAR(area, M_PI * 20 * 20, 90);
  EXPECT_EQ(fb_.Get(50, 50), kBlack);
  EXPECT_EQ(fb_.Get(50, 29), kWhite);  // just outside
}

TEST_F(RasterTest, CircleOutlineLeavesInteriorEmpty) {
  Style outline;
  surface_.DrawCircle(50, 50, 20, outline, kBlack);
  EXPECT_EQ(fb_.Get(50, 50), kWhite);
  EXPECT_EQ(fb_.Get(70, 50), kBlack);
  EXPECT_EQ(fb_.Get(30, 50), kBlack);
  EXPECT_EQ(fb_.Get(50, 70), kBlack);
}

TEST_F(RasterTest, ZeroRadiusCircleIsPoint) {
  Style style;
  surface_.DrawCircle(10, 10, 0.2, style, kBlack);
  EXPECT_GE(fb_.CountPixels(kBlack), 1u);
}

TEST_F(RasterTest, FilledTriangleCoversHalfSquare) {
  Style filled;
  filled.fill = FillMode::kFilled;
  surface_.DrawPolygon({{10, 10}, {50, 10}, {10, 50}}, filled, kBlack);
  double area = static_cast<double>(fb_.CountPixels(kBlack));
  EXPECT_NEAR(area, 40 * 40 / 2.0, 60);
}

TEST_F(RasterTest, PolygonOutlineClosesShape) {
  Style outline;
  surface_.DrawPolygon({{10, 10}, {30, 10}, {30, 30}}, outline, kBlack);
  // The closing edge from (30,30) back to (10,10) must be drawn.
  EXPECT_EQ(fb_.Get(20, 20), kBlack);
}

TEST_F(RasterTest, TextRendersInkProportionalToLength) {
  surface_.DrawText("III", 10, 50, 7, kBlack);
  size_t narrow = fb_.CountPixels(kBlack);
  fb_.Clear(kWhite);
  surface_.DrawText("WWWWWW", 10, 50, 7, kBlack);
  size_t wide = fb_.CountPixels(kBlack);
  EXPECT_GT(narrow, 0u);
  EXPECT_GT(wide, narrow);
}

TEST_F(RasterTest, TextScalesWithHeight) {
  surface_.DrawText("A", 10, 90, 7, kBlack);
  size_t small = fb_.CountPixels(kBlack);
  fb_.Clear(kWhite);
  surface_.DrawText("A", 10, 90, 21, kBlack);
  size_t big = fb_.CountPixels(kBlack);
  EXPECT_NEAR(static_cast<double>(big) / small, 9.0, 1.0);  // 3x scale = 9x ink
}

TEST_F(RasterTest, ViewportTransformsAndClips) {
  // A nested viewport mapping a 100x100 source into a 20x20 target at (40, 40).
  surface_.PushViewport(DeviceRect{40, 40, 20, 20}, 100, 100);
  Style filled;
  filled.fill = FillMode::kFilled;
  // Fills the whole source space; must land inside the 20x20 target only.
  surface_.DrawRect(0, 0, 99, 99, filled, kBlack);
  surface_.PopViewport();
  size_t black = fb_.CountPixels(kBlack);
  EXPECT_NEAR(static_cast<double>(black), 21 * 21, 60);
  EXPECT_EQ(fb_.Get(50, 50), kBlack);
  EXPECT_EQ(fb_.Get(30, 30), kWhite);
  EXPECT_EQ(fb_.Get(70, 70), kWhite);
}

TEST_F(RasterTest, NestedViewportsCompose) {
  surface_.PushViewport(DeviceRect{0, 0, 50, 50}, 100, 100);  // scale 0.5
  surface_.PushViewport(DeviceRect{0, 0, 50, 50}, 100, 100);  // total 0.25
  surface_.DrawPoint(100, 100, 1, kBlack);                    // -> (25, 25)
  surface_.PopViewport();
  surface_.PopViewport();
  EXPECT_EQ(fb_.Get(25, 25), kBlack);
}

TEST(SvgTest, DocumentStructure) {
  SvgSurface svg(320, 240);
  svg.Clear(kWhite);
  Style style;
  svg.DrawCircle(10, 10, 5, style, kRed);
  svg.DrawText("hi <&>", 5, 20, 12, kBlack);
  svg.DrawLine(0, 0, 10, 10, style, kBlack);
  svg.DrawRect(1, 2, 3, 4, style, kBlack);
  svg.DrawPolygon({{0, 0}, {1, 0}, {0, 1}}, style, kBlack);
  svg.DrawPoint(7, 7, 2, kBlack);
  std::string doc = svg.ToSvg();
  EXPECT_NE(doc.find("<svg"), std::string::npos);
  EXPECT_NE(doc.find("width=\"320\""), std::string::npos);
  EXPECT_NE(doc.find("<circle"), std::string::npos);
  EXPECT_NE(doc.find("hi &lt;&amp;&gt;"), std::string::npos);
  EXPECT_NE(doc.find("<polygon"), std::string::npos);
  EXPECT_NE(doc.find("</svg>"), std::string::npos);
  EXPECT_NE(doc.find("#c81e1e"), std::string::npos);  // kRed
}

TEST(SvgTest, FilledVsOutlineStyle) {
  SvgSurface svg(100, 100);
  Style filled;
  filled.fill = FillMode::kFilled;
  svg.DrawRect(0, 0, 10, 10, filled, kRed);
  Style outline;
  outline.thickness = 2;
  svg.DrawRect(0, 0, 10, 10, outline, kBlack);
  std::string doc = svg.ToSvg();
  EXPECT_NE(doc.find("fill=\"#c81e1e\" stroke=\"none\""), std::string::npos);
  EXPECT_NE(doc.find("fill=\"none\" stroke=\"#000000\" stroke-width=\"2\""),
            std::string::npos);
}

TEST(SvgTest, DashedStrokeAttribute) {
  SvgSurface svg(100, 100);
  Style dashed;
  dashed.line = draw::LineStyle::kDashed;
  svg.DrawLine(0, 0, 10, 10, dashed, kBlack);
  EXPECT_NE(svg.ToSvg().find("stroke-dasharray"), std::string::npos);
}

TEST(SvgTest, ViewportNestingBalanced) {
  SvgSurface svg(100, 100);
  svg.PushViewport(DeviceRect{10, 10, 50, 50}, 100, 100);
  svg.DrawPoint(1, 1, 1, kBlack);
  std::string open = svg.ToSvg();  // viewport still open -> auto-closed
  EXPECT_NE(open.find("<g clip-path"), std::string::npos);
  EXPECT_NE(open.find("</g>"), std::string::npos);
  svg.PopViewport();
  std::string closed = svg.ToSvg();
  EXPECT_NE(closed.find("</g>"), std::string::npos);
}

TEST(SvgTest, NegativeRectNormalized) {
  SvgSurface svg(100, 100);
  Style style;
  svg.DrawRect(10, 10, -5, -6, style, kBlack);
  std::string doc = svg.ToSvg();
  EXPECT_NE(doc.find("x=\"5\""), std::string::npos);
  EXPECT_NE(doc.find("width=\"5\""), std::string::npos);
  EXPECT_NE(doc.find("height=\"6\""), std::string::npos);
}

}  // namespace
}  // namespace tioga2::render
