// Tests for composites, groups, and the R = C(R), C = G(C) equivalences (§2).

#include <gtest/gtest.h>

#include "display/displayable.h"

namespace tioga2::display {
namespace {

using db::Column;
using db::MakeRelation;
using types::DataType;
using types::Value;

DisplayRelation NamedRelation(const std::string& name, size_t dims = 2) {
  auto base = MakeRelation({Column{"v", DataType::kFloat}},
                           {{Value::Float(1)}, {Value::Float(2)}})
                  .value();
  DisplayRelation rel = DisplayRelation::WithDefaults(name, base).value();
  for (size_t d = 2; d < dims; ++d) {
    rel = rel.AddLocationDimension("v").value();
  }
  return rel;
}

TEST(CompositeTest, SingletonFromRelation) {
  Composite composite(NamedRelation("A"));
  EXPECT_EQ(composite.size(), 1u);
  EXPECT_EQ(composite.Dimension(), 2u);
  EXPECT_TRUE(composite.DimensionsMatch());
}

TEST(CompositeTest, OverlayConcatsInDrawingOrder) {
  Composite below(NamedRelation("A"));
  Composite above(NamedRelation("B"));
  bool mismatch = true;
  Composite combined = below.Overlay(above, {}, &mismatch);
  EXPECT_FALSE(mismatch);
  ASSERT_EQ(combined.size(), 2u);
  EXPECT_EQ(combined.entries()[0].relation.name(), "A");
  EXPECT_EQ(combined.entries()[1].relation.name(), "B");  // drawn on top
}

TEST(CompositeTest, OverlayOffsetAccumulates) {
  Composite base(NamedRelation("A"));
  Composite other(NamedRelation("B"));
  Composite once = base.Overlay(other, {1.0, 2.0});
  Composite twice = Composite(NamedRelation("C")).Overlay(once, {10.0, 20.0});
  // B's offset is now (11, 22); A's is (10, 20).
  EXPECT_DOUBLE_EQ(twice.entries()[1].OffsetAt(0), 10.0);
  EXPECT_DOUBLE_EQ(twice.entries()[2].OffsetAt(0), 11.0);
  EXPECT_DOUBLE_EQ(twice.entries()[2].OffsetAt(1), 22.0);
  EXPECT_DOUBLE_EQ(twice.entries()[2].OffsetAt(5), 0.0);  // missing dims are 0
}

TEST(CompositeTest, DimensionMismatchFlagged) {
  Composite flat(NamedRelation("Map", 2));
  Composite deep(NamedRelation("Stations", 3));
  bool mismatch = false;
  Composite combined = flat.Overlay(deep, {}, &mismatch);
  EXPECT_TRUE(mismatch);
  EXPECT_EQ(combined.Dimension(), 3u);  // max of members (§6.1)
  EXPECT_FALSE(combined.DimensionsMatch());
}

TEST(CompositeTest, ShuffleMovesToTop) {
  Composite composite =
      Composite(NamedRelation("A")).Overlay(Composite(NamedRelation("B")), {});
  composite = composite.Overlay(Composite(NamedRelation("C")), {});
  Composite shuffled = composite.Shuffle(0).value();
  EXPECT_EQ(shuffled.entries()[0].relation.name(), "B");
  EXPECT_EQ(shuffled.entries()[2].relation.name(), "A");  // A now on top
  EXPECT_TRUE(composite.Shuffle(9).status().IsOutOfRange());
}

TEST(CompositeTest, FindMemberByName) {
  Composite composite =
      Composite(NamedRelation("A")).Overlay(Composite(NamedRelation("B")), {});
  EXPECT_EQ(composite.FindMember("B").value(), 1u);
  EXPECT_TRUE(composite.FindMember("Z").status().IsNotFound());
  Composite dup = composite.Overlay(Composite(NamedRelation("A")), {});
  EXPECT_TRUE(dup.FindMember("A").status().IsFailedPrecondition());
}

TEST(GroupTest, LayoutCells) {
  std::vector<Composite> members;
  for (int i = 0; i < 6; ++i) members.emplace_back(NamedRelation("m"));
  Group horizontal(members, GroupLayout::kHorizontal);
  EXPECT_EQ(horizontal.GridShape(), (std::pair<size_t, size_t>{1, 6}));
  EXPECT_EQ(horizontal.CellOf(4), (std::pair<size_t, size_t>{0, 4}));

  Group vertical(members, GroupLayout::kVertical);
  EXPECT_EQ(vertical.GridShape(), (std::pair<size_t, size_t>{6, 1}));
  EXPECT_EQ(vertical.CellOf(4), (std::pair<size_t, size_t>{4, 0}));

  Group tabular(members, GroupLayout::kTabular, 3);
  EXPECT_EQ(tabular.GridShape(), (std::pair<size_t, size_t>{2, 3}));
  EXPECT_EQ(tabular.CellOf(4), (std::pair<size_t, size_t>{1, 1}));
}

TEST(GroupTest, TabularPartialLastRow) {
  std::vector<Composite> members;
  for (int i = 0; i < 5; ++i) members.emplace_back(NamedRelation("m"));
  Group tabular(members, GroupLayout::kTabular, 2);
  EXPECT_EQ(tabular.GridShape(), (std::pair<size_t, size_t>{3, 2}));
  EXPECT_EQ(tabular.CellOf(4), (std::pair<size_t, size_t>{2, 0}));
}

TEST(GroupTest, ZeroColumnsClampedToOne) {
  Group group({Composite(NamedRelation("a"))}, GroupLayout::kTabular, 0);
  EXPECT_EQ(group.tabular_columns(), 1u);
  group.set_tabular_columns(0);
  EXPECT_EQ(group.tabular_columns(), 1u);
}

TEST(CoercionTest, RelationWidens) {
  Displayable relation = NamedRelation("A");
  Composite as_composite = AsComposite(relation).value();
  EXPECT_EQ(as_composite.size(), 1u);
  Group as_group = AsGroup(relation);
  EXPECT_EQ(as_group.size(), 1u);
  EXPECT_EQ(DisplayableKindName(relation), "relation");
}

TEST(CoercionTest, SingletonGroupNarrows) {
  Displayable group = Group(Composite(NamedRelation("A")));
  EXPECT_TRUE(AsComposite(group).ok());
  EXPECT_TRUE(AsRelation(group).ok());
  EXPECT_EQ(AsRelation(group)->name(), "A");
  EXPECT_EQ(DisplayableKindName(group), "group");
}

TEST(CoercionTest, MultiMemberNarrowingFails) {
  Composite two =
      Composite(NamedRelation("A")).Overlay(Composite(NamedRelation("B")), {});
  Displayable composite = two;
  EXPECT_TRUE(AsRelation(composite).status().IsFailedPrecondition());
  std::vector<Composite> members{two, two};
  Displayable group = Group(members, GroupLayout::kHorizontal);
  EXPECT_TRUE(AsComposite(group).status().IsFailedPrecondition());
}

}  // namespace
}  // namespace tioga2::display
