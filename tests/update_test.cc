// Tests for the §8 update machinery: default and custom update functions,
// the generic update procedure, and the click-to-update path through a
// canvas hit.

#include <gtest/gtest.h>

#include "data/generators.h"
#include "render/framebuffer.h"
#include "render/raster_surface.h"
#include "ui/session.h"
#include "update/update.h"
#include "viewer/viewer.h"

namespace tioga2::update {
namespace {

using db::Column;
using db::MakeRelation;
using types::DataType;
using types::Value;

class UpdateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto inventory =
        MakeRelation({Column{"item", DataType::kString},
                      Column{"on_hand", DataType::kInt},
                      Column{"price", DataType::kFloat}},
                     {{Value::String("hat"), Value::Int(12), Value::Float(9.5)},
                      {Value::String("bag"), Value::Int(3), Value::Float(20.0)}})
            .value();
    ASSERT_TRUE(catalog_.RegisterTable("Inventory", inventory).ok());
  }

  db::Catalog catalog_;
};

TEST_F(UpdateTest, DefaultUpdateParsesFieldType) {
  UpdateManager updates(&catalog_);
  ASSERT_TRUE(updates.ApplyUpdate("Inventory", 0, {{"on_hand", "10"}}).ok());
  auto table = catalog_.GetTable("Inventory").value();
  EXPECT_EQ(table->at(0, 1).int_value(), 10);
  // Untouched fields keep their values.
  EXPECT_EQ(table->at(0, 0).string_value(), "hat");
  EXPECT_DOUBLE_EQ(table->at(0, 2).float_value(), 9.5);
}

TEST_F(UpdateTest, MultipleFieldsInOneDialog) {
  UpdateManager updates(&catalog_);
  ASSERT_TRUE(
      updates.ApplyUpdate("Inventory", 1, {{"on_hand", "7"}, {"price", "18.25"}}).ok());
  auto table = catalog_.GetTable("Inventory").value();
  EXPECT_EQ(table->at(1, 1).int_value(), 7);
  EXPECT_DOUBLE_EQ(table->at(1, 2).float_value(), 18.25);
}

TEST_F(UpdateTest, UpdateBumpsTableVersion) {
  UpdateManager updates(&catalog_);
  uint64_t before = catalog_.TableVersion("Inventory").value();
  ASSERT_TRUE(updates.ApplyUpdate("Inventory", 0, {{"on_hand", "1"}}).ok());
  EXPECT_EQ(catalog_.TableVersion("Inventory").value(), before + 1);
}

TEST_F(UpdateTest, ValidationErrors) {
  UpdateManager updates(&catalog_);
  EXPECT_TRUE(updates.ApplyUpdate("Nope", 0, {{"x", "1"}}).status().IsNotFound());
  EXPECT_TRUE(
      updates.ApplyUpdate("Inventory", 99, {{"on_hand", "1"}}).status().IsOutOfRange());
  EXPECT_TRUE(
      updates.ApplyUpdate("Inventory", 0, {{"missing_col", "1"}}).status().IsNotFound());
  EXPECT_TRUE(updates.ApplyUpdate("Inventory", 0, {{"on_hand", "not a number"}})
                  .status()
                  .IsParseError());
  // Failed updates leave the table untouched.
  EXPECT_EQ(catalog_.GetTable("Inventory").value()->at(0, 1).int_value(), 12);
}

TEST_F(UpdateTest, CustomTypeUpdateFunction) {
  UpdateManager updates(&catalog_);
  // An int update function with a "delta" look and feel: "+n" adds.
  updates.SetTypeUpdateFunction(
      DataType::kInt,
      [](const Value& old_value, const std::string& input) -> Result<Value> {
        if (!input.empty() && input[0] == '+') {
          TIOGA2_ASSIGN_OR_RETURN(Value delta,
                                  Value::Parse(DataType::kInt, input.substr(1)));
          return Value::Int(old_value.int_value() + delta.int_value());
        }
        return Value::Parse(DataType::kInt, input);
      });
  ASSERT_TRUE(updates.ApplyUpdate("Inventory", 0, {{"on_hand", "+5"}}).ok());
  EXPECT_EQ(catalog_.GetTable("Inventory").value()->at(0, 1).int_value(), 17);
}

TEST_F(UpdateTest, ColumnFunctionOverridesTypeFunction) {
  UpdateManager updates(&catalog_);
  updates.SetColumnUpdateFunction(
      "Inventory", "price",
      [](const Value& old_value, const std::string& input) -> Result<Value> {
        (void)input;  // "freeze price" policy
        return old_value;
      });
  ASSERT_TRUE(updates.ApplyUpdate("Inventory", 0, {{"price", "999"}}).ok());
  EXPECT_DOUBLE_EQ(catalog_.GetTable("Inventory").value()->at(0, 2).float_value(), 9.5);
  // Other columns still use the defaults.
  ASSERT_TRUE(updates.ApplyUpdate("Inventory", 0, {{"on_hand", "4"}}).ok());
  EXPECT_EQ(catalog_.GetTable("Inventory").value()->at(0, 1).int_value(), 4);
}

TEST_F(UpdateTest, ApplyUpdateByMatchFindsTuple) {
  UpdateManager updates(&catalog_);
  db::Tuple bag = catalog_.GetTable("Inventory").value()->row(1);
  auto delta = updates.ApplyUpdateByMatch("Inventory", bag, {{"on_hand", "0"}});
  ASSERT_TRUE(delta.ok()) << delta.status().ToString();
  // The typed delta records exactly what changed.
  EXPECT_EQ(delta->table, "Inventory");
  EXPECT_EQ(delta->row, 1u);
  EXPECT_EQ(delta->old_tuple[1].int_value(), 3);
  EXPECT_EQ(delta->new_tuple[1].int_value(), 0);
  EXPECT_EQ(delta->new_version, delta->old_version + 1);
  EXPECT_EQ(catalog_.GetTable("Inventory").value()->at(1, 1).int_value(), 0);
  // A tuple that no longer exists cannot be matched.
  EXPECT_TRUE(updates.ApplyUpdateByMatch("Inventory", bag, {{"on_hand", "5"}})
                  .status()
                  .IsNotFound());
}

TEST_F(UpdateTest, ApplyUpdateByMatchRejectsAmbiguousMatch) {
  // Two identical tuples: a by-value match cannot tell which one the user
  // clicked, so the update must be refused rather than applied arbitrarily.
  auto dup =
      MakeRelation({Column{"item", DataType::kString},
                    Column{"on_hand", DataType::kInt}},
                   {{Value::String("hat"), Value::Int(12)},
                    {Value::String("hat"), Value::Int(12)}})
          .value();
  ASSERT_TRUE(catalog_.RegisterTable("Dup", dup).ok());
  UpdateManager updates(&catalog_);
  db::Tuple hat = catalog_.GetTable("Dup").value()->row(0);
  auto result = updates.ApplyUpdateByMatch("Dup", hat, {{"on_hand", "1"}});
  EXPECT_TRUE(result.status().IsFailedPrecondition()) << result.status().ToString();
  // Neither duplicate was touched.
  EXPECT_EQ(catalog_.GetTable("Dup").value()->at(0, 1).int_value(), 12);
  EXPECT_EQ(catalog_.GetTable("Dup").value()->at(1, 1).int_value(), 12);
}

TEST_F(UpdateTest, DescribeTupleShowsDialogContents) {
  UpdateManager updates(&catalog_);
  auto fields = updates.DescribeTuple("Inventory", 1);
  ASSERT_TRUE(fields.ok()) << fields.status().ToString();
  ASSERT_EQ(fields->size(), 3u);
  EXPECT_EQ((*fields)[0].column, "item");
  EXPECT_EQ((*fields)[0].current_value, "\"bag\"");
  EXPECT_TRUE((*fields)[0].updatable);
  EXPECT_EQ((*fields)[1].column, "on_hand");
  EXPECT_EQ((*fields)[1].current_value, "3");
  EXPECT_EQ((*fields)[1].type, DataType::kInt);
  EXPECT_TRUE(updates.DescribeTuple("Inventory", 99).status().IsOutOfRange());
  EXPECT_TRUE(updates.DescribeTuple("Nope", 0).status().IsNotFound());
}

TEST_F(UpdateTest, DisplayFieldsNotUpdatable) {
  UpdateManager updates(&catalog_);
  const FieldUpdateFn& fn =
      updates.ResolveUpdateFunction("Inventory", "whatever", DataType::kDisplay);
  EXPECT_TRUE(fn(Value::Null(), "x").status().IsFailedPrecondition());
}

TEST(ClickUpdateTest, HitToUpdateToRecomputedCanvas) {
  // End-to-end §8: click a station dot, decrease a value, observe every
  // downstream canvas recompute.
  db::Catalog catalog;
  ASSERT_TRUE(data::LoadDemoData(&catalog, /*extra_stations=*/0, /*num_days=*/5, 3).ok());
  ui::Session session(&catalog);
  std::string stations = session.AddTable("Stations").value();
  std::string set_x =
      session.AddBox("SetLocation", {{"dim", "0"}, {"attr", "longitude"}}).value();
  std::string set_y =
      session.AddBox("SetLocation", {{"dim", "1"}, {"attr", "latitude"}}).value();
  std::string dots =
      session.AddBox("AddAttribute",
                     {{"name", "dot"}, {"definition", "circle(0.2, \"#ff0000\", true)"}})
          .value();
  std::string set_display = session.AddBox("SetDisplay", {{"attr", "dot"}}).value();
  ASSERT_TRUE(session.Connect(stations, 0, set_x, 0).ok());
  ASSERT_TRUE(session.Connect(set_x, 0, set_y, 0).ok());
  ASSERT_TRUE(session.Connect(set_y, 0, dots, 0).ok());
  ASSERT_TRUE(session.Connect(dots, 0, set_display, 0).ok());
  ASSERT_TRUE(session.AddViewer(set_display, 0, "map").ok());

  viewer::Viewer viewer("v", "map", &session.registry());
  ASSERT_TRUE(viewer.FitContent(400, 400).ok());
  render::Framebuffer fb(400, 400, draw::kWhite);
  render::RasterSurface surface(&fb);
  ASSERT_TRUE(viewer.RenderTo(&surface).ok());

  // Click on New Orleans: project its world location to the device.
  double dx = 0;
  double dy = 0;
  viewer.camera().WorldToDevice(-90.08, 29.95, &dx, &dy);
  auto hit = viewer.HitTestAt(&surface, dx, dy).value();
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->relation_name, "Stations");

  // The §8 dialog: change the altitude of the clicked station.
  ASSERT_TRUE(session.ClickUpdate("map", *hit, "Stations", {{"altitude", "123"}}).ok());
  auto table = catalog.GetTable("Stations").value();
  size_t alt = table->schema()->ColumnIndex("altitude").value();
  bool found = false;
  for (size_t r = 0; r < table->num_rows(); ++r) {
    if (table->at(r, 0).int_value() == 1) {  // New Orleans is station_id 1
      EXPECT_DOUBLE_EQ(table->at(r, alt).float_value(), 123.0);
      found = true;
    }
  }
  EXPECT_TRUE(found);

  // The canvas recomputes against the updated table (version bump).
  auto content = session.EvaluateCanvas("map");
  ASSERT_TRUE(content.ok());
  auto relation = display::AsRelation(*content).value();
  EXPECT_DOUBLE_EQ(relation.AttributeValue(0, "altitude")->AsDouble(), 123.0);
}

}  // namespace
}  // namespace tioga2::update
