// Tests for the §1.2 guiding principles, exercised as a user narrative:
// after *every* incremental operation the canvas must evaluate and render —
// "every result of a user action has a valid visual representation".

#include <gtest/gtest.h>

#include "boxes/program_io.h"
#include "tioga2/environment.h"

namespace tioga2 {
namespace {

class PrinciplesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(env_.LoadDemoData(/*extra_stations=*/30, /*num_days=*/20).ok());
  }

  /// Asserts the canvas is evaluable and renderable right now.
  void ExpectValidVisualization(const std::string& canvas) {
    auto content = env_.session().EvaluateCanvas(canvas);
    ASSERT_TRUE(content.ok()) << content.status().ToString();
    auto viewer = env_.GetViewer(canvas);
    ASSERT_TRUE(viewer.ok()) << viewer.status().ToString();
    ASSERT_TRUE((*viewer)->Refresh().ok());
    ASSERT_TRUE((*viewer)->FitContent(160, 120).ok());
    render::Framebuffer fb(160, 120, draw::kWhite);
    render::RasterSurface surface(&fb);
    auto stats = (*viewer)->RenderTo(&surface);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  }

  Environment env_;
};

TEST_F(PrinciplesTest, EveryIncrementalStepStaysVisualizable) {
  ui::Session& session = env_.session();
  // Step 0: a bare table with the §5.2 defaults is already visualizable.
  std::string previous = session.AddTable("Stations").value();
  ASSERT_TRUE(session.AddViewer(previous, 0, "steps").ok());
  ExpectValidVisualization("steps");

  // Each subsequent §4/§5/§6 operation re-routes the viewer one box later
  // and must keep the canvas valid.
  const std::vector<std::pair<std::string, std::map<std::string, std::string>>>
      kSteps = {
          {"Restrict", {{"predicate", "state = \"LA\""}}},
          {"Project", {{"columns", "name,longitude,latitude,altitude"}}},
          {"SetLocation", {{"dim", "0"}, {"attr", "longitude"}}},
          {"SetLocation", {{"dim", "1"}, {"attr", "latitude"}}},
          {"AddLocationDimension", {{"attr", "altitude"}}},
          {"AddAttribute",
           {{"name", "dot"}, {"definition", "circle(0.05, \"#c81e1e\", true)"}}},
          {"AddAttribute",
           {{"name", "label"}, {"definition", "offset(text(name, 0.1), -0.2, -0.2)"}}},
          {"CombineDisplays",
           {{"name", "both"}, {"first", "dot"}, {"second", "label"}, {"dx", "0"},
            {"dy", "0"}}},
          {"SetDisplay", {{"attr", "both"}}},
          {"ScaleAttribute", {{"name", "altitude"}, {"factor", "0.3048"}}},
          {"SetRange", {{"min", "0"}, {"max", "100"}}},
          {"SetName", {{"name", "LA stations"}}},
          {"Sample", {{"probability", "0.9"}, {"seed", "4"}}},
          {"Sort", {{"column", "name"}, {"ascending", "true"}}},
          {"Limit", {{"n", "12"}}},
      };
  int step = 0;
  for (const auto& [type, params] : kSteps) {
    SCOPED_TRACE("step " + std::to_string(step++) + ": " + type);
    auto box = session.ApplyBox(type, params, {{previous, 0}});
    ASSERT_TRUE(box.ok()) << box.status().ToString();
    previous = *box;
    // Move the viewer onto the new frontier, as the incremental user does.
    std::string viewer_box = session.AddViewer(previous, 0, "steps").value();
    ExpectValidVisualization("steps");
    ASSERT_TRUE(session.RemoveViewer(viewer_box).ok());
    ASSERT_TRUE(session.AddViewer(previous, 0, "steps").ok());
  }
}

TEST_F(PrinciplesTest, UndoAfterEveryStepAlsoStaysVisualizable) {
  ui::Session& session = env_.session();
  std::string stations = session.AddTable("Stations").value();
  ASSERT_TRUE(session.AddViewer(stations, 0, "undoable").ok());
  ExpectValidVisualization("undoable");
  size_t depth = session.UndoDepth();
  auto restrict = session.ApplyBox("Restrict", {{"predicate", "altitude > 100"}},
                                   {{stations, 0}});
  ASSERT_TRUE(restrict.ok());
  ExpectValidVisualization("undoable");
  // Undo the apply; the canvas still points at the table and stays valid.
  while (session.UndoDepth() > depth) {
    ASSERT_TRUE(session.Undo().ok());
  }
  ExpectValidVisualization("undoable");
}

TEST_F(PrinciplesTest, NoInferenceEveryOperationIsDeterministic) {
  // Principle 4: "no complex inference procedure" — the same operation
  // sequence always produces the same program text and the same pixels.
  auto build = [this](int which) {
    (void)which;
    ui::Session session(&env_.catalog());
    std::string stations = session.AddTable("Stations").value();
    auto restrict = session.ApplyBox("Restrict", {{"predicate", "state = \"LA\""}},
                                     {{stations, 0}});
    EXPECT_TRUE(restrict.ok());
    return boxes::SerializeProgram(session.graph()).value();
  };
  EXPECT_EQ(build(1), build(2));
}

}  // namespace
}  // namespace tioga2
