// Tests for the lazy, memoizing dataflow engine (§2: "execution is lazy,
// evaluating only what is required to produce the demanded visualization").

#include <gtest/gtest.h>

#include "boxes/relational_boxes.h"
#include "dataflow/engine.h"
#include "dataflow/t_box.h"
#include "db/relation.h"

namespace tioga2::dataflow {
namespace {

using boxes::RestrictBox;
using boxes::SampleBox;
using boxes::SwitchBox;
using boxes::TableBox;
using db::Column;
using types::DataType;
using types::Value;

class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto table = db::MakeRelation({Column{"v", DataType::kInt}},
                                  {{Value::Int(1)}, {Value::Int(2)}, {Value::Int(3)},
                                   {Value::Int(4)}})
                     .value();
    ASSERT_TRUE(catalog_.RegisterTable("T", table).ok());
  }

  Result<size_t> RowsOf(Engine* engine, const std::string& box, size_t port = 0) {
    TIOGA2_ASSIGN_OR_RETURN(BoxValue value, engine->Evaluate(graph_, box, port));
    TIOGA2_ASSIGN_OR_RETURN(display::Displayable displayable, AsDisplayable(value));
    TIOGA2_ASSIGN_OR_RETURN(display::DisplayRelation relation,
                            display::AsRelation(displayable));
    return relation.num_rows();
  }

  db::Catalog catalog_;
  Graph graph_;
};

TEST_F(EngineTest, EvaluatesChain) {
  std::string table = graph_.AddBox(std::make_unique<TableBox>("T")).value();
  std::string restrict = graph_.AddBox(std::make_unique<RestrictBox>("v > 1")).value();
  ASSERT_TRUE(graph_.Connect(table, 0, restrict, 0).ok());
  Engine engine(&catalog_);
  EXPECT_EQ(RowsOf(&engine, restrict).value(), 3u);
  EXPECT_EQ(engine.stats().boxes_fired, 2u);
}

TEST_F(EngineTest, LazyEvaluatesOnlyDemandedBranch) {
  // table -> restrictA, table -> restrictB; demanding A must not fire B.
  std::string table = graph_.AddBox(std::make_unique<TableBox>("T")).value();
  std::string a = graph_.AddBox(std::make_unique<RestrictBox>("v > 1")).value();
  std::string b = graph_.AddBox(std::make_unique<RestrictBox>("v > 2")).value();
  ASSERT_TRUE(graph_.Connect(table, 0, a, 0).ok());
  ASSERT_TRUE(graph_.Connect(table, 0, b, 0).ok());
  Engine engine(&catalog_);
  ASSERT_TRUE(RowsOf(&engine, a).ok());
  EXPECT_EQ(engine.stats().boxes_fired, 2u);  // table + a, not b
}

TEST_F(EngineTest, MemoizationAcrossEvaluations) {
  std::string table = graph_.AddBox(std::make_unique<TableBox>("T")).value();
  std::string restrict = graph_.AddBox(std::make_unique<RestrictBox>("v > 1")).value();
  ASSERT_TRUE(graph_.Connect(table, 0, restrict, 0).ok());
  Engine engine(&catalog_);
  ASSERT_TRUE(RowsOf(&engine, restrict).ok());
  uint64_t fired = engine.stats().boxes_fired;
  ASSERT_TRUE(RowsOf(&engine, restrict).ok());
  EXPECT_EQ(engine.stats().boxes_fired, fired);
  EXPECT_GE(engine.stats().cache_hits, 1u);
}

TEST_F(EngineTest, EditRefiresOnlyDownstream) {
  std::string table = graph_.AddBox(std::make_unique<TableBox>("T")).value();
  std::string mid = graph_.AddBox(std::make_unique<RestrictBox>("v > 0")).value();
  std::string tail = graph_.AddBox(std::make_unique<RestrictBox>("v > 1")).value();
  ASSERT_TRUE(graph_.Connect(table, 0, mid, 0).ok());
  ASSERT_TRUE(graph_.Connect(mid, 0, tail, 0).ok());
  Engine engine(&catalog_);
  ASSERT_TRUE(RowsOf(&engine, tail).ok());
  EXPECT_EQ(engine.stats().boxes_fired, 3u);
  // Edit the tail box: only the tail re-fires.
  ASSERT_TRUE(graph_.ReplaceBox(tail, std::make_unique<RestrictBox>("v > 2")).ok());
  EXPECT_EQ(RowsOf(&engine, tail).value(), 2u);  // {3, 4}
  EXPECT_EQ(engine.stats().boxes_fired, 4u);
  // Edit the mid box: mid and tail re-fire, the table does not.
  ASSERT_TRUE(graph_.ReplaceBox(mid, std::make_unique<RestrictBox>("v >= 0")).ok());
  ASSERT_TRUE(RowsOf(&engine, tail).ok());
  EXPECT_EQ(engine.stats().boxes_fired, 6u);
}

TEST_F(EngineTest, TableVersionInvalidatesCache) {
  std::string table = graph_.AddBox(std::make_unique<TableBox>("T")).value();
  Engine engine(&catalog_);
  EXPECT_EQ(RowsOf(&engine, table).value(), 4u);
  // A §8 update replaces the table contents and bumps the version.
  auto updated = db::MakeRelation({Column{"v", DataType::kInt}}, {{Value::Int(9)}})
                     .value();
  ASSERT_TRUE(catalog_.ReplaceTable("T", updated).ok());
  EXPECT_EQ(RowsOf(&engine, table).value(), 1u);
}

TEST_F(EngineTest, MultiOutputSwitchPartitions) {
  std::string table = graph_.AddBox(std::make_unique<TableBox>("T")).value();
  std::string sw = graph_.AddBox(std::make_unique<SwitchBox>("v % 2 = 0")).value();
  ASSERT_TRUE(graph_.Connect(table, 0, sw, 0).ok());
  Engine engine(&catalog_);
  EXPECT_EQ(RowsOf(&engine, sw, 0).value(), 2u);  // even
  EXPECT_EQ(RowsOf(&engine, sw, 1).value(), 2u);  // odd
  // Both outputs come from one firing.
  EXPECT_EQ(engine.stats().boxes_fired, 2u);
}

TEST_F(EngineTest, TBoxDuplicates) {
  std::string table = graph_.AddBox(std::make_unique<TableBox>("T")).value();
  std::string t = graph_.AddBox(std::make_unique<TBox>(PortType::Relation())).value();
  ASSERT_TRUE(graph_.Connect(table, 0, t, 0).ok());
  Engine engine(&catalog_);
  EXPECT_EQ(RowsOf(&engine, t, 0).value(), 4u);
  EXPECT_EQ(RowsOf(&engine, t, 1).value(), 4u);
}

TEST_F(EngineTest, DanglingInputFailsCleanly) {
  std::string restrict = graph_.AddBox(std::make_unique<RestrictBox>("v > 0")).value();
  Engine engine(&catalog_);
  EXPECT_TRUE(engine.Evaluate(graph_, restrict, 0).status().IsFailedPrecondition());
}

TEST_F(EngineTest, MissingTableSurfacesError) {
  std::string table = graph_.AddBox(std::make_unique<TableBox>("Nope")).value();
  Engine engine(&catalog_);
  EXPECT_TRUE(engine.Evaluate(graph_, table, 0).status().IsNotFound());
}

TEST_F(EngineTest, BadOutputPort) {
  std::string table = graph_.AddBox(std::make_unique<TableBox>("T")).value();
  Engine engine(&catalog_);
  EXPECT_TRUE(engine.Evaluate(graph_, table, 3).status().IsOutOfRange());
  EXPECT_TRUE(engine.Evaluate(graph_, "missing", 0).status().IsNotFound());
}

TEST_F(EngineTest, EagerEvaluatesAllAndSkipsDangling) {
  std::string table = graph_.AddBox(std::make_unique<TableBox>("T")).value();
  std::string a = graph_.AddBox(std::make_unique<RestrictBox>("v > 1")).value();
  std::string b = graph_.AddBox(std::make_unique<RestrictBox>("v > 2")).value();
  std::string dangling = graph_.AddBox(std::make_unique<RestrictBox>("v > 3")).value();
  std::string downstream = graph_.AddBox(std::make_unique<RestrictBox>("v > 4")).value();
  ASSERT_TRUE(graph_.Connect(table, 0, a, 0).ok());
  ASSERT_TRUE(graph_.Connect(table, 0, b, 0).ok());
  ASSERT_TRUE(graph_.Connect(dangling, 0, downstream, 0).ok());
  Engine engine(&catalog_);
  ASSERT_TRUE(engine.EvaluateAll(graph_).ok());
  // table, a, b fired; dangling and its downstream skipped.
  EXPECT_EQ(engine.stats().boxes_fired, 3u);
  EXPECT_EQ(engine.stats().boxes_skipped, 2u);
  // Each skipped box is reported so the GUI can flag it (§3).
  EXPECT_EQ(engine.warnings().size(), 2u);
}

TEST_F(EngineTest, InvalidateDownstreamOfEvictsOnlyAffectedBoxes) {
  // Two independent chains over two tables; editing U must leave T's chain
  // memoized (§8: other canvases stay warm after a single-table update).
  auto other = db::MakeRelation({Column{"w", DataType::kInt}},
                                {{Value::Int(10)}, {Value::Int(20)}})
                   .value();
  ASSERT_TRUE(catalog_.RegisterTable("U", other).ok());
  std::string t = graph_.AddBox(std::make_unique<TableBox>("T")).value();
  std::string t_tail = graph_.AddBox(std::make_unique<RestrictBox>("v > 1")).value();
  std::string u = graph_.AddBox(std::make_unique<TableBox>("U")).value();
  std::string u_tail = graph_.AddBox(std::make_unique<RestrictBox>("w > 5")).value();
  ASSERT_TRUE(graph_.Connect(t, 0, t_tail, 0).ok());
  ASSERT_TRUE(graph_.Connect(u, 0, u_tail, 0).ok());
  Engine engine(&catalog_);
  ASSERT_TRUE(RowsOf(&engine, t_tail).ok());
  ASSERT_TRUE(RowsOf(&engine, u_tail).ok());
  EXPECT_EQ(engine.stats().boxes_fired, 4u);
  // Evicts exactly U's chain: the table box and its downstream restrict.
  EXPECT_EQ(engine.InvalidateDownstreamOf(graph_, "U"), 2u);
  ASSERT_TRUE(RowsOf(&engine, u_tail).ok());
  EXPECT_EQ(engine.stats().boxes_fired, 6u);  // u + u_tail re-fired
  ASSERT_TRUE(RowsOf(&engine, t_tail).ok());
  EXPECT_EQ(engine.stats().boxes_fired, 6u);  // T's chain stayed memoized
}

TEST_F(EngineTest, InvalidateAllForcesRecompute) {
  std::string table = graph_.AddBox(std::make_unique<TableBox>("T")).value();
  Engine engine(&catalog_);
  ASSERT_TRUE(RowsOf(&engine, table).ok());
  engine.InvalidateAll();
  ASSERT_TRUE(RowsOf(&engine, table).ok());
  EXPECT_EQ(engine.stats().boxes_fired, 2u);
  EXPECT_EQ(engine.stats().cache_hits, 0u);
}

TEST_F(EngineTest, SampleSeedChangesStamp) {
  std::string table = graph_.AddBox(std::make_unique<TableBox>("T")).value();
  std::string sample = graph_.AddBox(std::make_unique<SampleBox>(0.5, 1)).value();
  ASSERT_TRUE(graph_.Connect(table, 0, sample, 0).ok());
  Engine engine(&catalog_);
  ASSERT_TRUE(RowsOf(&engine, sample).ok());
  uint64_t fired = engine.stats().boxes_fired;
  ASSERT_TRUE(graph_.ReplaceBox(sample, std::make_unique<SampleBox>(0.5, 2)).ok());
  ASSERT_TRUE(RowsOf(&engine, sample).ok());
  EXPECT_EQ(engine.stats().boxes_fired, fired + 1);  // only the sample re-fired
}

}  // namespace
}  // namespace tioga2::dataflow
