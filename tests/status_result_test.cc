#include <gtest/gtest.h>

#include "common/result.h"
#include "common/status.h"

namespace tioga2 {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.message(), "");
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = Status::NotFound("no table named 'Foo'");
  EXPECT_FALSE(status.ok());
  EXPECT_TRUE(status.IsNotFound());
  EXPECT_FALSE(status.IsTypeError());
  EXPECT_EQ(status.message(), "no table named 'Foo'");
  EXPECT_EQ(status.ToString(), "NotFound: no table named 'Foo'");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::TypeError("x").IsTypeError());
  EXPECT_TRUE(Status::ParseError("x").IsParseError());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::Unimplemented("x").IsUnimplemented());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
}

TEST(StatusTest, CopySemantics) {
  Status original = Status::TypeError("mismatch");
  Status copy = original;
  EXPECT_EQ(copy, original);
  Status assigned;
  assigned = original;
  EXPECT_EQ(assigned, original);
  EXPECT_FALSE(assigned.ok());
  // The original survives modifications of the copy.
  assigned = Status::OK();
  EXPECT_TRUE(assigned.ok());
  EXPECT_TRUE(original.IsTypeError());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::TypeError("a"));
}

TEST(StatusTest, CodeNames) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kTypeError), "TypeError");
  EXPECT_EQ(StatusCodeToString(StatusCode::kParseError), "ParseError");
}

TEST(ResultTest, HoldsValue) {
  Result<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> result = Status::NotFound("missing");
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsNotFound());
  EXPECT_EQ(result.value_or(-1), -1);
}

TEST(ResultTest, ValueOrReturnsValueWhenOk) {
  Result<std::string> result = std::string("hello");
  EXPECT_EQ(result.value_or("fallback"), "hello");
}

TEST(ResultTest, MoveOutValue) {
  Result<std::unique_ptr<int>> result = std::make_unique<int>(7);
  std::unique_ptr<int> owned = std::move(result).value();
  ASSERT_NE(owned, nullptr);
  EXPECT_EQ(*owned, 7);
}

Result<int> Half(int v) {
  if (v % 2 != 0) return Status::InvalidArgument("odd");
  return v / 2;
}

Result<int> Quarter(int v) {
  TIOGA2_ASSIGN_OR_RETURN(int half, Half(v));
  TIOGA2_ASSIGN_OR_RETURN(int quarter, Half(half));
  return quarter;
}

TEST(ResultTest, AssignOrReturnMacroPropagates) {
  EXPECT_EQ(Quarter(8).value(), 2);
  EXPECT_TRUE(Quarter(6).status().IsInvalidArgument());  // 6/2 = 3 is odd
  EXPECT_TRUE(Quarter(7).status().IsInvalidArgument());
}

Status FailIfNegative(int v) {
  if (v < 0) return Status::OutOfRange("negative");
  return Status::OK();
}

Status CheckAll(int a, int b) {
  TIOGA2_RETURN_IF_ERROR(FailIfNegative(a));
  TIOGA2_RETURN_IF_ERROR(FailIfNegative(b));
  return Status::OK();
}

TEST(ResultTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(CheckAll(1, 2).ok());
  EXPECT_TRUE(CheckAll(-1, 2).IsOutOfRange());
  EXPECT_TRUE(CheckAll(1, -2).IsOutOfRange());
}

}  // namespace
}  // namespace tioga2
