// Tests for the UI widget models: the elevation map (§6.1/§3) and the
// program-window renderer (§3, the other half of Figure 1).

#include <gtest/gtest.h>

#include "boxes/program_io.h"
#include "render/framebuffer.h"
#include "render/raster_surface.h"
#include "ui/program_renderer.h"
#include "ui/session.h"
#include "viewer/elevation_map.h"

#include "data/generators.h"

namespace tioga2 {
namespace {

std::vector<viewer::ElevationBar> SampleBars() {
  return {
      viewer::ElevationBar{"Map", 0, 100, 0},
      viewer::ElevationBar{"Dots", 2, 100, 1},
      viewer::ElevationBar{"Labels", 0, 2, 2},
  };
}

TEST(ElevationMapWidgetTest, RendersBarsAndControl) {
  render::Framebuffer fb(200, 100, draw::kWhite);
  render::RasterSurface surface(&fb);
  render::DeviceRect rect{10, 10, 180, 80};
  ASSERT_TRUE(
      viewer::RenderElevationMap(SampleBars(), /*current_elevation=*/5.0, rect,
                                 &surface)
          .ok());
  // Gray bars and the red dashed control line rendered some ink.
  EXPECT_GT(fb.CountPixels(draw::kGray), 100u);
  EXPECT_GT(fb.CountPixels(draw::kRed), 5u);
  EXPECT_GT(fb.CountPixels(draw::kBlack), 50u);  // frame + labels
}

TEST(ElevationMapWidgetTest, EmptyBarsJustFrame) {
  render::Framebuffer fb(100, 50, draw::kWhite);
  render::RasterSurface surface(&fb);
  ASSERT_TRUE(viewer::RenderElevationMap({}, 1.0, render::DeviceRect{0, 0, 99, 49},
                                         &surface)
                  .ok());
  EXPECT_EQ(fb.CountPixels(draw::kRed), 0u);
  EXPECT_GT(fb.CountPixels(draw::kBlack), 0u);
}

TEST(ElevationMapWidgetTest, NullSurfaceRejected) {
  EXPECT_TRUE(viewer::RenderElevationMap(SampleBars(), 1.0,
                                         render::DeviceRect{0, 0, 10, 10}, nullptr)
                  .IsInvalidArgument());
}

TEST(ElevationMapWidgetTest, HitTestMapsRowsBottomUp) {
  render::DeviceRect rect{0, 0, 100, 90};
  double elevation = 0;
  // Top third of the widget = last bar (highest drawing order).
  auto top = viewer::HitTestElevationMap(SampleBars(), rect, 50, 10, &elevation);
  ASSERT_TRUE(top.has_value());
  EXPECT_EQ(*top, 2u);
  // Bottom third = drawing order 0.
  auto bottom = viewer::HitTestElevationMap(SampleBars(), rect, 50, 85, &elevation);
  ASSERT_TRUE(bottom.has_value());
  EXPECT_EQ(*bottom, 0u);
  // Clicks outside return nothing.
  EXPECT_FALSE(
      viewer::HitTestElevationMap(SampleBars(), rect, 150, 10, &elevation).has_value());
  // The x coordinate maps to an elevation on the widget scale.
  viewer::HitTestElevationMap(SampleBars(), rect, 0, 10, &elevation);
  EXPECT_NEAR(elevation, 0.0, 1e-9);
  viewer::HitTestElevationMap(SampleBars(), rect, 100, 10, &elevation);
  EXPECT_GT(elevation, 99.0);
}

class ProgramRendererTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(data::LoadDemoData(&catalog_, 10, 5, 3).ok());
    session_ = std::make_unique<ui::Session>(&catalog_);
    stations_ = session_->AddTable("Stations").value();
    restrict_ =
        session_->AddBox("Restrict", {{"predicate", "state = \"LA\""}}).value();
    ASSERT_TRUE(session_->Connect(stations_, 0, restrict_, 0).ok());
    viewer_ = session_->AddViewer(restrict_, 0, "main").value();
  }

  db::Catalog catalog_;
  std::unique_ptr<ui::Session> session_;
  std::string stations_;
  std::string restrict_;
  std::string viewer_;
};

TEST_F(ProgramRendererTest, AutoLayoutOrdersByDepth) {
  render::Framebuffer fb(640, 200, draw::kWhite);
  render::RasterSurface surface(&fb);
  auto layout = ui::RenderProgram(session_->graph(), &surface);
  ASSERT_TRUE(layout.ok()) << layout.status().ToString();
  ASSERT_EQ(layout->box_rects.size(), 3u);
  EXPECT_LT(layout->box_rects.at(stations_).x, layout->box_rects.at(restrict_).x);
  EXPECT_LT(layout->box_rects.at(restrict_).x, layout->box_rects.at(viewer_).x);
  // Something rendered.
  EXPECT_GT(fb.CountPixels(draw::kBlack), 100u);
}

TEST_F(ProgramRendererTest, ExplicitPositionsHonored) {
  ASSERT_TRUE(session_->graph().BoxPosition(stations_) == std::nullopt);
  dataflow::Graph graph = session_->graph().Clone();
  ASSERT_TRUE(graph.SetBoxPosition(stations_, 300, 150).ok());
  render::Framebuffer fb(640, 300, draw::kWhite);
  render::RasterSurface surface(&fb);
  auto layout = ui::RenderProgram(graph, &surface);
  ASSERT_TRUE(layout.ok());
  EXPECT_DOUBLE_EQ(layout->box_rects.at(stations_).x, 300);
  EXPECT_DOUBLE_EQ(layout->box_rects.at(stations_).y, 150);
  EXPECT_TRUE(graph.SetBoxPosition("missing", 0, 0).IsNotFound());
}

TEST_F(ProgramRendererTest, PositionsSurviveSaveLoad) {
  dataflow::Graph graph = session_->graph().Clone();
  ASSERT_TRUE(graph.SetBoxPosition(restrict_, 42.5, 77).ok());
  std::string serialized = boxes::SerializeProgram(graph).value();
  EXPECT_NE(serialized.find("pos " + restrict_ + " 42.5 77"), std::string::npos);
  dataflow::Graph loaded = boxes::DeserializeProgram(serialized).value();
  auto position = loaded.BoxPosition(restrict_);
  ASSERT_TRUE(position.has_value());
  EXPECT_DOUBLE_EQ(position->first, 42.5);
  EXPECT_DOUBLE_EQ(position->second, 77);
}

TEST_F(ProgramRendererTest, PositionsClonedAndErased) {
  dataflow::Graph graph = session_->graph().Clone();
  ASSERT_TRUE(graph.SetBoxPosition(viewer_, 5, 5).ok());
  dataflow::Graph copy = graph.Clone();
  EXPECT_TRUE(copy.BoxPosition(viewer_).has_value());
  ASSERT_TRUE(copy.DeleteBox(viewer_).ok());
  EXPECT_FALSE(copy.BoxPosition(viewer_).has_value());
  EXPECT_TRUE(graph.BoxPosition(viewer_).has_value());  // original untouched
}

TEST_F(ProgramRendererTest, HitTestFindsBox) {
  render::Framebuffer fb(640, 200, draw::kWhite);
  render::RasterSurface surface(&fb);
  auto layout = ui::RenderProgram(session_->graph(), &surface).value();
  const render::DeviceRect& rect = layout.box_rects.at(restrict_);
  auto hit = ui::HitTestProgram(layout, rect.x + rect.width / 2,
                                rect.y + rect.height / 2);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, restrict_);
  EXPECT_FALSE(ui::HitTestProgram(layout, 639, 199).has_value());
}

}  // namespace
}  // namespace tioga2
