#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <limits>

#include "data/generators.h"
#include "db/catalog.h"
#include "db/csv.h"
#include "storage/format.h"

namespace tioga2::db {
namespace {

using types::DataType;
using types::Value;

RelationPtr SmallTable() {
  return MakeRelation({Column{"id", DataType::kInt}, Column{"name", DataType::kString}},
                      {{Value::Int(1), Value::String("a")},
                       {Value::Int(2), Value::String("b")}})
      .value();
}

TEST(CatalogTest, RegisterAndGet) {
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterTable("T", SmallTable()).ok());
  EXPECT_TRUE(catalog.HasTable("T"));
  EXPECT_FALSE(catalog.HasTable("U"));
  EXPECT_EQ(catalog.GetTable("T").value()->num_rows(), 2u);
  EXPECT_TRUE(catalog.GetTable("U").status().IsNotFound());
  EXPECT_TRUE(catalog.RegisterTable("T", SmallTable()).IsAlreadyExists());
  EXPECT_TRUE(catalog.RegisterTable("", SmallTable()).IsInvalidArgument());
}

TEST(CatalogTest, VersionBumpsOnReplace) {
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterTable("T", SmallTable()).ok());
  EXPECT_EQ(catalog.TableVersion("T").value(), 1u);
  ASSERT_TRUE(catalog.ReplaceTable("T", SmallTable()).ok());
  EXPECT_EQ(catalog.TableVersion("T").value(), 2u);
  EXPECT_TRUE(catalog.TableVersion("missing").status().IsNotFound());
}

TEST(CatalogTest, ReplaceRejectsSchemaChange) {
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterTable("T", SmallTable()).ok());
  auto different =
      MakeRelation({Column{"other", DataType::kFloat}}, {{Value::Float(1)}}).value();
  EXPECT_TRUE(catalog.ReplaceTable("T", different).IsTypeError());
  EXPECT_TRUE(catalog.ReplaceTable("missing", SmallTable()).IsNotFound());
}

TEST(CatalogTest, DropTable) {
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterTable("T", SmallTable()).ok());
  ASSERT_TRUE(catalog.DropTable("T").ok());
  EXPECT_FALSE(catalog.HasTable("T"));
  EXPECT_TRUE(catalog.DropTable("T").IsNotFound());
}

TEST(CatalogTest, ListTablesSorted) {
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterTable("zeta", SmallTable()).ok());
  ASSERT_TRUE(catalog.RegisterTable("alpha", SmallTable()).ok());
  EXPECT_EQ(catalog.ListTables(), (std::vector<std::string>{"alpha", "zeta"}));
}

TEST(CatalogTest, ProgramsStoreAndOverwrite) {
  Catalog catalog;
  catalog.SaveProgram("p", "v1");
  catalog.SaveProgram("p", "v2");
  EXPECT_EQ(catalog.GetProgram("p").value(), "v2");
  EXPECT_TRUE(catalog.GetProgram("q").status().IsNotFound());
  catalog.SaveProgram("a", "x");
  EXPECT_EQ(catalog.ListPrograms(), (std::vector<std::string>{"a", "p"}));
}

// Regression: versions must be monotonic per *name*, not per table object.
// Before the version-floor fix, a drop/recreate restarted the counter at 1
// and a memo entry stamped against the old table's version 1 was wrongly
// considered fresh.
TEST(CatalogTest, VersionsStayMonotonicAcrossDropAndRecreate) {
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterTable("T", SmallTable()).ok());
  ASSERT_TRUE(catalog.ReplaceTable("T", SmallTable()).ok());
  ASSERT_TRUE(catalog.ReplaceTable("T", SmallTable()).ok());
  EXPECT_EQ(catalog.TableVersion("T").value(), 3u);
  ASSERT_TRUE(catalog.DropTable("T").ok());
  EXPECT_EQ(catalog.version_floors().at("T"), 3u);

  ASSERT_TRUE(catalog.RegisterTable("T", SmallTable()).ok());
  EXPECT_GT(catalog.TableVersion("T").value(), 3u);  // never reuses a version
  EXPECT_EQ(catalog.TableVersion("T").value(), 4u);

  // A second cycle keeps climbing; the floor tracks the highest death.
  ASSERT_TRUE(catalog.DropTable("T").ok());
  EXPECT_EQ(catalog.version_floors().at("T"), 4u);
  ASSERT_TRUE(catalog.RegisterTable("T", SmallTable()).ok());
  EXPECT_EQ(catalog.TableVersion("T").value(), 5u);

  // Unrelated names are unaffected.
  ASSERT_TRUE(catalog.RegisterTable("U", SmallTable()).ok());
  EXPECT_EQ(catalog.TableVersion("U").value(), 1u);
}

TEST(CsvTest, RoundTripAllTypes) {
  auto relation =
      MakeRelation({Column{"flag", DataType::kBool}, Column{"n", DataType::kInt},
                    Column{"x", DataType::kFloat}, Column{"s", DataType::kString},
                    Column{"d", DataType::kDate}},
                   {{Value::Bool(true), Value::Int(-3), Value::Float(2.25),
                     Value::String("with, comma"),
                     Value::DateVal(types::Date::FromYmd(1995, 7, 14))},
                    {Value::Null(), Value::Null(), Value::Null(), Value::Null(),
                     Value::Null()}})
          .value();
  std::string csv = RelationToCsv(*relation).value();
  auto parsed = RelationFromCsv(csv);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << csv;
  EXPECT_TRUE(RelationEquals(*relation, **parsed));
}

TEST(CsvTest, QuotedStringsSurviveCommasAndQuotes) {
  auto relation = MakeRelation({Column{"s", DataType::kString}},
                               {{Value::String("a,b")}, {Value::String("say \"hi\"")}})
                      .value();
  auto parsed = RelationFromCsv(RelationToCsv(*relation).value());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(RelationEquals(*relation, **parsed));
}

// Bit-level float round trip: NaN, ±inf, -0.0, and full-precision doubles
// must survive write→read. RelationEquals can't check this (NaN != NaN and
// -0.0 == 0.0 numerically), so compare the canonical binary encodings.
TEST(CsvTest, FloatEdgeCasesRoundTripBitExactly) {
  const double inf = std::numeric_limits<double>::infinity();
  auto relation =
      MakeRelation({Column{"x", DataType::kFloat}},
                   {{Value::Float(std::nan(""))},
                    {Value::Float(inf)},
                    {Value::Float(-inf)},
                    {Value::Float(-0.0)},
                    {Value::Float(0.1)},
                    {Value::Float(1.0 / 3.0)},
                    {Value::Float(1e-300)},
                    {Value::Float(-123456789.123456789)},
                    {Value::Null()}})
          .value();
  auto parsed = RelationFromCsv(RelationToCsv(*relation).value());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  storage::Encoder a, b;
  ASSERT_TRUE(storage::EncodeRelation(*relation, &a).ok());
  ASSERT_TRUE(storage::EncodeRelation(**parsed, &b).ok());
  EXPECT_EQ(a.data(), b.data());
  // And specifically: -0.0 keeps its sign bit.
  EXPECT_TRUE(std::signbit((*parsed)->at(3, 0).float_value()));
}

// The satellite acceptance test: load the full demo dataset, export every
// table to CSV, load it back, and require value identity table by table.
TEST(CsvTest, DemoDataLoadWriteLoadIsValueIdentical) {
  Catalog catalog;
  ASSERT_TRUE(data::LoadDemoData(&catalog, 50, 10, /*seed=*/0x7109a2).ok());
  ASSERT_FALSE(catalog.ListTables().empty());
  for (const std::string& name : catalog.ListTables()) {
    SCOPED_TRACE(name);
    RelationPtr original = catalog.GetTable(name).value();
    std::string path = ::testing::TempDir() + "/tioga2_csv_" + name + ".csv";
    ASSERT_TRUE(WriteCsvFile(*original, path).ok());
    auto loaded = ReadCsvFile(path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_TRUE(RelationEquals(*original, **loaded));
    storage::Encoder a, b;
    ASSERT_TRUE(storage::EncodeRelation(*original, &a).ok());
    ASSERT_TRUE(storage::EncodeRelation(**loaded, &b).ok());
    EXPECT_EQ(a.data(), b.data()) << "CSV round trip is not bit-identical";
    std::remove(path.c_str());
  }
}

TEST(CsvTest, DisplayColumnsRejected) {
  auto relation =
      MakeRelation({Column{"d", DataType::kDisplay}},
                   {{Value::Display(draw::MakeDrawableList({}))}})
          .value();
  EXPECT_TRUE(RelationToCsv(*relation).status().IsInvalidArgument());
}

TEST(CsvTest, MalformedInputsRejected) {
  EXPECT_TRUE(RelationFromCsv("").status().IsParseError());
  EXPECT_TRUE(RelationFromCsv("id\n1\n").status().IsParseError());        // no type
  EXPECT_TRUE(RelationFromCsv("id:blob\n1\n").status().IsParseError());   // bad type
  EXPECT_TRUE(RelationFromCsv("id:int\n1,2\n").status().IsParseError());  // arity
  EXPECT_TRUE(RelationFromCsv("id:int\nabc\n").status().IsParseError());  // bad value
}

TEST(CsvTest, SkipsBlankLines) {
  auto parsed = RelationFromCsv("id:int\n1\n\n2\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ((*parsed)->num_rows(), 2u);
}

TEST(CsvTest, FileRoundTrip) {
  std::string path = ::testing::TempDir() + "/tioga2_csv_test.csv";
  ASSERT_TRUE(WriteCsvFile(*SmallTable(), path).ok());
  auto loaded = ReadCsvFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(RelationEquals(*SmallTable(), **loaded));
  std::remove(path.c_str());
  EXPECT_TRUE(ReadCsvFile(path).status().IsIOError());
}

}  // namespace
}  // namespace tioga2::db
