#include <gtest/gtest.h>

#include <cstdio>

#include "db/catalog.h"
#include "db/csv.h"

namespace tioga2::db {
namespace {

using types::DataType;
using types::Value;

RelationPtr SmallTable() {
  return MakeRelation({Column{"id", DataType::kInt}, Column{"name", DataType::kString}},
                      {{Value::Int(1), Value::String("a")},
                       {Value::Int(2), Value::String("b")}})
      .value();
}

TEST(CatalogTest, RegisterAndGet) {
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterTable("T", SmallTable()).ok());
  EXPECT_TRUE(catalog.HasTable("T"));
  EXPECT_FALSE(catalog.HasTable("U"));
  EXPECT_EQ(catalog.GetTable("T").value()->num_rows(), 2u);
  EXPECT_TRUE(catalog.GetTable("U").status().IsNotFound());
  EXPECT_TRUE(catalog.RegisterTable("T", SmallTable()).IsAlreadyExists());
  EXPECT_TRUE(catalog.RegisterTable("", SmallTable()).IsInvalidArgument());
}

TEST(CatalogTest, VersionBumpsOnReplace) {
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterTable("T", SmallTable()).ok());
  EXPECT_EQ(catalog.TableVersion("T").value(), 1u);
  ASSERT_TRUE(catalog.ReplaceTable("T", SmallTable()).ok());
  EXPECT_EQ(catalog.TableVersion("T").value(), 2u);
  EXPECT_TRUE(catalog.TableVersion("missing").status().IsNotFound());
}

TEST(CatalogTest, ReplaceRejectsSchemaChange) {
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterTable("T", SmallTable()).ok());
  auto different =
      MakeRelation({Column{"other", DataType::kFloat}}, {{Value::Float(1)}}).value();
  EXPECT_TRUE(catalog.ReplaceTable("T", different).IsTypeError());
  EXPECT_TRUE(catalog.ReplaceTable("missing", SmallTable()).IsNotFound());
}

TEST(CatalogTest, DropTable) {
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterTable("T", SmallTable()).ok());
  ASSERT_TRUE(catalog.DropTable("T").ok());
  EXPECT_FALSE(catalog.HasTable("T"));
  EXPECT_TRUE(catalog.DropTable("T").IsNotFound());
}

TEST(CatalogTest, ListTablesSorted) {
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterTable("zeta", SmallTable()).ok());
  ASSERT_TRUE(catalog.RegisterTable("alpha", SmallTable()).ok());
  EXPECT_EQ(catalog.ListTables(), (std::vector<std::string>{"alpha", "zeta"}));
}

TEST(CatalogTest, ProgramsStoreAndOverwrite) {
  Catalog catalog;
  catalog.SaveProgram("p", "v1");
  catalog.SaveProgram("p", "v2");
  EXPECT_EQ(catalog.GetProgram("p").value(), "v2");
  EXPECT_TRUE(catalog.GetProgram("q").status().IsNotFound());
  catalog.SaveProgram("a", "x");
  EXPECT_EQ(catalog.ListPrograms(), (std::vector<std::string>{"a", "p"}));
}

TEST(CsvTest, RoundTripAllTypes) {
  auto relation =
      MakeRelation({Column{"flag", DataType::kBool}, Column{"n", DataType::kInt},
                    Column{"x", DataType::kFloat}, Column{"s", DataType::kString},
                    Column{"d", DataType::kDate}},
                   {{Value::Bool(true), Value::Int(-3), Value::Float(2.25),
                     Value::String("with, comma"),
                     Value::DateVal(types::Date::FromYmd(1995, 7, 14))},
                    {Value::Null(), Value::Null(), Value::Null(), Value::Null(),
                     Value::Null()}})
          .value();
  std::string csv = RelationToCsv(*relation).value();
  auto parsed = RelationFromCsv(csv);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << csv;
  EXPECT_TRUE(RelationEquals(*relation, **parsed));
}

TEST(CsvTest, QuotedStringsSurviveCommasAndQuotes) {
  auto relation = MakeRelation({Column{"s", DataType::kString}},
                               {{Value::String("a,b")}, {Value::String("say \"hi\"")}})
                      .value();
  auto parsed = RelationFromCsv(RelationToCsv(*relation).value());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(RelationEquals(*relation, **parsed));
}

TEST(CsvTest, DisplayColumnsRejected) {
  auto relation =
      MakeRelation({Column{"d", DataType::kDisplay}},
                   {{Value::Display(draw::MakeDrawableList({}))}})
          .value();
  EXPECT_TRUE(RelationToCsv(*relation).status().IsInvalidArgument());
}

TEST(CsvTest, MalformedInputsRejected) {
  EXPECT_TRUE(RelationFromCsv("").status().IsParseError());
  EXPECT_TRUE(RelationFromCsv("id\n1\n").status().IsParseError());        // no type
  EXPECT_TRUE(RelationFromCsv("id:blob\n1\n").status().IsParseError());   // bad type
  EXPECT_TRUE(RelationFromCsv("id:int\n1,2\n").status().IsParseError());  // arity
  EXPECT_TRUE(RelationFromCsv("id:int\nabc\n").status().IsParseError());  // bad value
}

TEST(CsvTest, SkipsBlankLines) {
  auto parsed = RelationFromCsv("id:int\n1\n\n2\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ((*parsed)->num_rows(), 2u);
}

TEST(CsvTest, FileRoundTrip) {
  std::string path = ::testing::TempDir() + "/tioga2_csv_test.csv";
  ASSERT_TRUE(WriteCsvFile(*SmallTable(), path).ok());
  auto loaded = ReadCsvFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(RelationEquals(*SmallTable(), **loaded));
  std::remove(path.c_str());
  EXPECT_TRUE(ReadCsvFile(path).status().IsIOError());
}

}  // namespace
}  // namespace tioga2::db
