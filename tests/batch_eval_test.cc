// Vectorized-vs-scalar equivalence. The BatchEvaluator must be
// observationally identical to the scalar EvalExpr — same runtime types,
// same textual values, same null pattern, same accept/reject decisions —
// so that flipping vectorized execution on can never change a memoized
// fingerprint. Three layers of evidence:
//   1. targeted Restrict/RestrictScalar comparisons over tricky operators,
//   2. a randomized property test over generated relations and expressions,
//   3. a full figure-program regression: fingerprints and stamps with
//      vectorization on equal those with it off (the memoization oracle).

#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "boxes/relational_boxes.h"
#include "common/rng.h"
#include "db/operators.h"
#include "display/display_relation.h"
#include "expr/batch.h"
#include "expr/evaluator.h"
#include "testing/fig_programs.h"
#include "tioga2/environment.h"

namespace tioga2 {
namespace {

using db::Column;
using db::MakeRelation;
using db::RelationPtr;
using db::Tuple;
using types::DataType;
using types::Value;

/// Restores the vectorized-execution toggle on scope exit.
class VectorizedGuard {
 public:
  explicit VectorizedGuard(bool enabled) : saved_(db::VectorizedExecutionEnabled()) {
    db::SetVectorizedExecutionEnabled(enabled);
  }
  ~VectorizedGuard() { db::SetVectorizedExecutionEnabled(saved_); }

 private:
  bool saved_;
};

RelationPtr Mixed() {
  return MakeRelation(
             {Column{"i", DataType::kInt}, Column{"f", DataType::kFloat},
              Column{"s", DataType::kString}, Column{"b", DataType::kBool}},
             {
                 {Value::Int(1), Value::Float(0.5), Value::String("ann"),
                  Value::Bool(true)},
                 {Value::Int(-3), Value::Null(), Value::String("bob"),
                  Value::Bool(false)},
                 {Value::Null(), Value::Float(2.0), Value::Null(), Value::Null()},
                 {Value::Int(0), Value::Float(-1.5), Value::String(""),
                  Value::Bool(true)},
                 {Value::Int(7), Value::Float(7.0), Value::String("ann"),
                  Value::Null()},
             })
      .value();
}

void ExpectSameRestrict(const RelationPtr& rel, const std::string& predicate) {
  SCOPED_TRACE(predicate);
  auto compiled = db::CompilePredicate(rel->schema(), predicate);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  auto scalar = db::RestrictScalar(rel, compiled.value());
  VectorizedGuard guard(true);
  auto vectorized = db::Restrict(rel, compiled.value());
  ASSERT_EQ(scalar.ok(), vectorized.ok());
  if (!scalar.ok()) return;
  EXPECT_TRUE(db::RelationEquals(**scalar, **vectorized))
      << "scalar:\n"
      << (*scalar)->ToString() << "vectorized:\n"
      << (*vectorized)->ToString();
}

TEST(BatchRestrictTest, MatchesScalarOnOperatorZoo) {
  RelationPtr rel = Mixed();
  for (const char* predicate : {
           "i > 0",
           "f >= 0.5",
           "i = 1",
           "i != 1",
           "i <= f",
           "i + 1 > 0",
           "i * 2 = i + i",
           "i / 0 = 1",        // div by zero -> null -> reject
           "i % 2 = 1",
           "i % 0 = 0",        // mod by zero -> null -> reject
           "-i < 0",
           "not b",
           "b and i > 0",
           "b or i > 0",
           "b and (i > 0 or f < 1.0)",
           "s = \"ann\"",
           "s != \"ann\"",
           "s < \"b\"",
           "s + \"x\" = \"annx\"",
           "b = (i > 0)",
           "if(b, i, 0 - i) > 0",
           "coalesce(f, 0.0) > 0.0",
           "abs(i) > 2",
           "min(i, 2) = 2",
       }) {
    ExpectSameRestrict(rel, predicate);
  }
}

TEST(BatchRestrictTest, EmptyRelation) {
  RelationPtr empty =
      MakeRelation({Column{"i", DataType::kInt}}, std::vector<Tuple>{}).value();
  ExpectSameRestrict(empty, "i > 0");
}

TEST(BatchRestrictTest, BatchBoundary) {
  // More rows than one kBatchSize chunk, with the keep/reject decision
  // changing right at the boundary.
  std::vector<Tuple> rows;
  const size_t n = expr::kBatchSize * 2 + 17;
  for (size_t r = 0; r < n; ++r) {
    rows.push_back({r % 97 == 0 ? Value::Null() : Value::Int(static_cast<int64_t>(r))});
  }
  RelationPtr rel = MakeRelation({Column{"v", DataType::kInt}}, rows).value();
  ExpectSameRestrict(rel, "v % 3 = 1 and v > 4000");
}

// ---- Randomized property test --------------------------------------------

std::string RandomBoolExpr(Rng* rng, int depth);

/// Random numeric leaf over columns i, j (int) and f (float), plus literals
/// that include the div/mod-by-zero hazards.
std::string RandomNumericLeaf(Rng* rng) {
  switch (rng->NextUint64() % 5) {
    case 0: return "i";
    case 1: return "f";
    case 2: return std::to_string(static_cast<int64_t>(rng->NextUint64() % 7) - 3);
    case 3: return std::to_string(static_cast<int64_t>(rng->NextUint64() % 5)) + ".5";
    default: return "j";
  }
}

std::string RandomNumericExpr(Rng* rng, int depth) {
  if (depth <= 0 || rng->NextUint64() % 3 == 0) return RandomNumericLeaf(rng);
  const char* ops[] = {"+", "-", "*", "/"};
  std::string lhs = RandomNumericExpr(rng, depth - 1);
  std::string rhs = RandomNumericExpr(rng, depth - 1);
  switch (rng->NextUint64() % 6) {
    case 0:
      return "if(" + RandomBoolExpr(rng, 0) + ", " + lhs + ", " + rhs + ")";
    case 1:
      return "coalesce(" + lhs + ", " + rhs + ")";
    default:
      return "(" + lhs + " " + ops[rng->NextUint64() % 4] + " " + rhs + ")";
  }
}

std::string RandomBoolExpr(Rng* rng, int depth) {
  if (depth <= 0) {
    const char* cmps[] = {"<", "<=", ">", ">=", "=", "!="};
    return "(" + RandomNumericLeaf(rng) + " " + cmps[rng->NextUint64() % 6] + " " +
           RandomNumericLeaf(rng) + ")";
  }
  const char* cmps[] = {"<", "<=", ">", ">=", "=", "!="};
  switch (rng->NextUint64() % 4) {
    case 0:
      return "(" + RandomBoolExpr(rng, depth - 1) + " and " +
             RandomBoolExpr(rng, depth - 1) + ")";
    case 1:
      return "(" + RandomBoolExpr(rng, depth - 1) + " or " +
             RandomBoolExpr(rng, depth - 1) + ")";
    case 2:
      return "(not " + RandomBoolExpr(rng, depth - 1) + ")";
    default:
      return "(" + RandomNumericExpr(rng, depth - 1) + " " +
             cmps[rng->NextUint64() % 6] + " " + RandomNumericExpr(rng, depth - 1) +
             ")";
  }
}

RelationPtr RandomRelation(Rng* rng) {
  std::vector<Tuple> rows;
  size_t n = 1 + rng->NextUint64() % 200;
  for (size_t r = 0; r < n; ++r) {
    Tuple row;
    row.push_back(rng->NextUint64() % 8 == 0
                      ? Value::Null()
                      : Value::Int(static_cast<int64_t>(rng->NextUint64() % 21) - 10));
    row.push_back(rng->NextUint64() % 8 == 0
                      ? Value::Null()
                      : Value::Float((static_cast<double>(rng->NextUint64() % 41) - 20) / 4.0));
    row.push_back(rng->NextUint64() % 8 == 0
                      ? Value::Null()
                      : Value::Int(static_cast<int64_t>(rng->NextUint64() % 5) - 2));
    rows.push_back(std::move(row));
  }
  return MakeRelation({Column{"i", DataType::kInt}, Column{"f", DataType::kFloat},
                       Column{"j", DataType::kInt}},
                      rows)
      .value();
}

/// One textual form capturing runtime type + value + nullness.
std::string Describe(const Value& v) {
  if (v.is_null()) return "null";
  return types::DataTypeToString(v.type()) + ":" + v.ToString();
}

TEST(BatchEvalPropertyTest, BatchEqualsScalarOnRandomExpressions) {
  Rng rng(20260806);
  size_t compared = 0;
  for (int iter = 0; iter < 120; ++iter) {
    RelationPtr rel = RandomRelation(&rng);
    std::string source = (iter % 2 == 0) ? RandomBoolExpr(&rng, 3)
                                         : RandomNumericExpr(&rng, 3);
    SCOPED_TRACE(source);
    auto compiled = expr::CompiledExpr::Compile(source, db::SchemaEnv(rel->schema()));
    ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();

    expr::RelationBatchSource batch_source(*rel);
    expr::BatchEvaluator evaluator(batch_source);
    expr::Selection sel;
    expr::IdentitySelection(0, rel->num_rows(), &sel);
    auto vec = evaluator.Eval(compiled->root(), sel);

    // Scalar reference, row by row.
    bool scalar_failed = false;
    std::vector<Value> scalar_values;
    for (size_t r = 0; r < rel->num_rows(); ++r) {
      expr::TupleAccessor accessor(rel->row(r));
      auto v = compiled->Eval(accessor);
      if (!v.ok()) {
        scalar_failed = true;
        break;
      }
      scalar_values.push_back(std::move(v).value());
    }

    ASSERT_EQ(vec.ok(), !scalar_failed) << (vec.ok() ? "batch ok, scalar failed"
                                                     : vec.status().ToString());
    if (!vec.ok()) continue;
    for (size_t r = 0; r < rel->num_rows(); ++r) {
      EXPECT_EQ(Describe(vec->ValueAt(r)), Describe(scalar_values[r]))
          << "row " << r;
      ++compared;
    }
  }
  EXPECT_GT(compared, 1000u);  // the test actually exercised something
}

// ---- Figure-program memo/stamp regression --------------------------------

struct Target {
  std::string canvas;
  std::string from;
  size_t from_port = 0;
};

std::vector<Target> TargetsOf(const dataflow::Graph& graph) {
  std::vector<Target> targets;
  for (const std::string& id : graph.BoxIds()) {
    const auto* viewer =
        dynamic_cast<const boxes::ViewerBox*>(graph.GetBox(id).value());
    if (viewer == nullptr) continue;
    std::optional<dataflow::Edge> edge = graph.IncomingEdge(id, 0);
    if (!edge.has_value()) continue;
    targets.push_back(Target{viewer->canvas(), edge->from_box, edge->from_port});
  }
  return targets;
}

TEST(BatchEvalStampRegressionTest, VectorizationCannotChangeFingerprintsOrStamps) {
  for (const testing::FigProgram& program : testing::AllFigPrograms()) {
    SCOPED_TRACE(program.name);

    std::map<std::string, std::string> fingerprints[2];
    std::map<std::string, std::optional<uint64_t>> stamps[2];
    for (int pass = 0; pass < 2; ++pass) {
      VectorizedGuard guard(pass == 1);
      Environment env;
      ASSERT_TRUE(env.LoadDemoData(program.extra_stations, program.num_days).ok());
      Status built = program.build(&env);
      ASSERT_TRUE(built.ok()) << built.message();
      ui::Session& session = env.session();
      for (const Target& t : TargetsOf(session.graph())) {
        auto value =
            session.engine().Evaluate(session.graph(), t.from, t.from_port);
        ASSERT_TRUE(value.ok()) << t.canvas << ": " << value.status().message();
        fingerprints[pass][t.canvas] = testing::FingerprintBoxValue(value.value());
      }
      for (const std::string& id : session.graph().BoxIds()) {
        stamps[pass][id] = session.engine().cache().StampOf(id);
      }
    }
    EXPECT_EQ(fingerprints[0], fingerprints[1]);
    EXPECT_EQ(stamps[0], stamps[1]);
  }
}

// ---- DisplayRelation batch paths ------------------------------------------

TEST(DisplayBatchTest, AttributeValuesMatchesAttributeValue) {
  RelationPtr rel = Mixed();
  auto dr = display::DisplayRelation::WithDefaults("mixed", rel);
  ASSERT_TRUE(dr.ok());
  auto with_attr = dr->AddAttribute("score", "i * 2 + coalesce(f, 0.0)");
  ASSERT_TRUE(with_attr.ok()) << with_attr.status().ToString();
  auto scaled = with_attr->ScaleAttribute("i", 2.0);
  ASSERT_TRUE(scaled.ok());
  const display::DisplayRelation& relation = scaled.value();
  for (const char* name : {"i", "f", "s", "score", "_x", "_y"}) {
    SCOPED_TRACE(name);
    VectorizedGuard guard(true);
    auto batch = relation.AttributeValues(name);
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();
    ASSERT_EQ(batch->size(), relation.num_rows());
    for (size_t r = 0; r < relation.num_rows(); ++r) {
      auto scalar = relation.AttributeValue(r, name);
      ASSERT_TRUE(scalar.ok());
      EXPECT_EQ(Describe((*batch)[r]), Describe(scalar.value())) << "row " << r;
    }
  }
}

TEST(DisplayBatchTest, RestrictMatchesScalarOverComputedAttributes) {
  RelationPtr rel = Mixed();
  auto dr = display::DisplayRelation::WithDefaults("mixed", rel);
  ASSERT_TRUE(dr.ok());
  auto with_attr = dr->AddAttribute("double_i", "i * 2");
  ASSERT_TRUE(with_attr.ok());
  const display::DisplayRelation& relation = with_attr.value();

  std::optional<display::DisplayRelation> on;
  std::optional<display::DisplayRelation> off;
  {
    VectorizedGuard guard(true);
    auto result = relation.Restrict("double_i > 0 and b");
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    on = std::move(result).value();
  }
  {
    VectorizedGuard guard(false);
    auto result = relation.Restrict("double_i > 0 and b");
    ASSERT_TRUE(result.ok());
    off = std::move(result).value();
  }
  EXPECT_TRUE(db::RelationEquals(*on->base(), *off->base()));
}

TEST(SortTest, VectorizedMatchesScalarIncludingNulls) {
  RelationPtr rel = Mixed();
  for (const char* column : {"i", "f", "s", "b"}) {
    for (bool ascending : {true, false}) {
      SCOPED_TRACE(std::string(column) + (ascending ? " asc" : " desc"));
      std::optional<RelationPtr> on;
      std::optional<RelationPtr> off;
      {
        VectorizedGuard guard(true);
        auto result = db::Sort(rel, column, ascending);
        ASSERT_TRUE(result.ok());
        on = std::move(result).value();
      }
      {
        VectorizedGuard guard(false);
        auto result = db::Sort(rel, column, ascending);
        ASSERT_TRUE(result.ok());
        off = std::move(result).value();
      }
      EXPECT_TRUE(db::RelationEquals(**on, **off))
          << "vectorized:\n"
          << (*on)->ToString() << "scalar:\n"
          << (*off)->ToString();
    }
  }
}

}  // namespace
}  // namespace tioga2
