// Vectorized-vs-scalar equivalence. The BatchEvaluator must be
// observationally identical to the scalar EvalExpr — same runtime types,
// same textual values, same null pattern, same accept/reject decisions —
// so that flipping vectorized execution on can never change a memoized
// fingerprint. Three layers of evidence:
//   1. targeted Restrict/RestrictScalar comparisons over tricky operators,
//   2. a randomized property test over generated relations and expressions,
//   3. a full figure-program regression: fingerprints and stamps with
//      vectorization on equal those with it off (the memoization oracle).
// The SIMD kernel tiers (expr/simd/) are held to the same contract at every
// dispatch level — see the "SIMD kernel tiers" section below.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "boxes/relational_boxes.h"
#include "common/rng.h"
#include "db/morsel.h"
#include "db/operators.h"
#include "display/display_relation.h"
#include "expr/batch.h"
#include "expr/evaluator.h"
#include "expr/simd/simd.h"
#include "runtime/thread_pool.h"
#include "testing/fig_programs.h"
#include "tioga2/environment.h"

namespace tioga2 {
namespace {

using db::Column;
using db::MakeRelation;
using db::RelationPtr;
using db::Tuple;
using types::DataType;
using types::Value;

/// Restores the process-default execution policy on scope exit.
class VectorizedGuard {
 public:
  explicit VectorizedGuard(bool enabled) : saved_(db::DefaultExecPolicy()) {
    db::ExecPolicy policy = saved_;
    policy.vectorized = enabled;
    db::SetDefaultExecPolicy(policy);
  }
  ~VectorizedGuard() { db::SetDefaultExecPolicy(saved_); }

 private:
  db::ExecPolicy saved_;
};

/// Pins ExecPolicy::dict_encode for a scope. Dictionaries are built when a
/// relation first materializes its columnar image, so the guard must be in
/// scope before the relation under test is created.
class DictGuard {
 public:
  explicit DictGuard(bool dict_encode) : saved_(db::DefaultExecPolicy()) {
    db::ExecPolicy policy = saved_;
    policy.dict_encode = dict_encode;
    db::SetDefaultExecPolicy(policy);
  }
  ~DictGuard() { db::SetDefaultExecPolicy(saved_); }

 private:
  db::ExecPolicy saved_;
};

RelationPtr Mixed() {
  return MakeRelation(
             {Column{"i", DataType::kInt}, Column{"f", DataType::kFloat},
              Column{"s", DataType::kString}, Column{"b", DataType::kBool}},
             {
                 {Value::Int(1), Value::Float(0.5), Value::String("ann"),
                  Value::Bool(true)},
                 {Value::Int(-3), Value::Null(), Value::String("bob"),
                  Value::Bool(false)},
                 {Value::Null(), Value::Float(2.0), Value::Null(), Value::Null()},
                 {Value::Int(0), Value::Float(-1.5), Value::String(""),
                  Value::Bool(true)},
                 {Value::Int(7), Value::Float(7.0), Value::String("ann"),
                  Value::Null()},
             })
      .value();
}

void ExpectSameRestrict(const RelationPtr& rel, const std::string& predicate) {
  SCOPED_TRACE(predicate);
  auto compiled = db::CompilePredicate(rel->schema(), predicate);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  auto scalar = db::RestrictScalar(rel, compiled.value());
  VectorizedGuard guard(true);
  auto vectorized = db::Restrict(rel, compiled.value());
  ASSERT_EQ(scalar.ok(), vectorized.ok());
  if (!scalar.ok()) return;
  EXPECT_TRUE(db::RelationEquals(**scalar, **vectorized))
      << "scalar:\n"
      << (*scalar)->ToString() << "vectorized:\n"
      << (*vectorized)->ToString();
}

TEST(BatchRestrictTest, MatchesScalarOnOperatorZoo) {
  RelationPtr rel = Mixed();
  for (const char* predicate : {
           "i > 0",
           "f >= 0.5",
           "i = 1",
           "i != 1",
           "i <= f",
           "i + 1 > 0",
           "i * 2 = i + i",
           "i / 0 = 1",        // div by zero -> null -> reject
           "i % 2 = 1",
           "i % 0 = 0",        // mod by zero -> null -> reject
           "-i < 0",
           "not b",
           "b and i > 0",
           "b or i > 0",
           "b and (i > 0 or f < 1.0)",
           "s = \"ann\"",
           "s != \"ann\"",
           "s < \"b\"",
           "s + \"x\" = \"annx\"",
           "b = (i > 0)",
           "if(b, i, 0 - i) > 0",
           "coalesce(f, 0.0) > 0.0",
           "abs(i) > 2",
           "min(i, 2) = 2",
       }) {
    ExpectSameRestrict(rel, predicate);
  }
}

TEST(BatchRestrictTest, EmptyRelation) {
  RelationPtr empty =
      MakeRelation({Column{"i", DataType::kInt}}, std::vector<Tuple>{}).value();
  ExpectSameRestrict(empty, "i > 0");
}

TEST(BatchRestrictTest, BatchBoundary) {
  // More rows than one kBatchSize chunk, with the keep/reject decision
  // changing right at the boundary.
  std::vector<Tuple> rows;
  const size_t n = expr::kBatchSize * 2 + 17;
  for (size_t r = 0; r < n; ++r) {
    rows.push_back({r % 97 == 0 ? Value::Null() : Value::Int(static_cast<int64_t>(r))});
  }
  RelationPtr rel = MakeRelation({Column{"v", DataType::kInt}}, rows).value();
  ExpectSameRestrict(rel, "v % 3 = 1 and v > 4000");
}

// ---- Randomized property test --------------------------------------------

std::string RandomBoolExpr(Rng* rng, int depth);

/// Random numeric leaf over columns i, j (int) and f (float), plus literals
/// that include the div/mod-by-zero hazards.
std::string RandomNumericLeaf(Rng* rng) {
  switch (rng->NextUint64() % 5) {
    case 0: return "i";
    case 1: return "f";
    case 2: return std::to_string(static_cast<int64_t>(rng->NextUint64() % 7) - 3);
    case 3: return std::to_string(static_cast<int64_t>(rng->NextUint64() % 5)) + ".5";
    default: return "j";
  }
}

std::string RandomNumericExpr(Rng* rng, int depth) {
  if (depth <= 0 || rng->NextUint64() % 3 == 0) return RandomNumericLeaf(rng);
  const char* ops[] = {"+", "-", "*", "/"};
  std::string lhs = RandomNumericExpr(rng, depth - 1);
  std::string rhs = RandomNumericExpr(rng, depth - 1);
  switch (rng->NextUint64() % 6) {
    case 0:
      return "if(" + RandomBoolExpr(rng, 0) + ", " + lhs + ", " + rhs + ")";
    case 1:
      return "coalesce(" + lhs + ", " + rhs + ")";
    default:
      return "(" + lhs + " " + ops[rng->NextUint64() % 4] + " " + rhs + ")";
  }
}

std::string RandomBoolExpr(Rng* rng, int depth) {
  if (depth <= 0) {
    const char* cmps[] = {"<", "<=", ">", ">=", "=", "!="};
    return "(" + RandomNumericLeaf(rng) + " " + cmps[rng->NextUint64() % 6] + " " +
           RandomNumericLeaf(rng) + ")";
  }
  const char* cmps[] = {"<", "<=", ">", ">=", "=", "!="};
  switch (rng->NextUint64() % 4) {
    case 0:
      return "(" + RandomBoolExpr(rng, depth - 1) + " and " +
             RandomBoolExpr(rng, depth - 1) + ")";
    case 1:
      return "(" + RandomBoolExpr(rng, depth - 1) + " or " +
             RandomBoolExpr(rng, depth - 1) + ")";
    case 2:
      return "(not " + RandomBoolExpr(rng, depth - 1) + ")";
    default:
      return "(" + RandomNumericExpr(rng, depth - 1) + " " +
             cmps[rng->NextUint64() % 6] + " " + RandomNumericExpr(rng, depth - 1) +
             ")";
  }
}

RelationPtr RandomRelation(Rng* rng) {
  std::vector<Tuple> rows;
  size_t n = 1 + rng->NextUint64() % 200;
  for (size_t r = 0; r < n; ++r) {
    Tuple row;
    row.push_back(rng->NextUint64() % 8 == 0
                      ? Value::Null()
                      : Value::Int(static_cast<int64_t>(rng->NextUint64() % 21) - 10));
    row.push_back(rng->NextUint64() % 8 == 0
                      ? Value::Null()
                      : Value::Float((static_cast<double>(rng->NextUint64() % 41) - 20) / 4.0));
    row.push_back(rng->NextUint64() % 8 == 0
                      ? Value::Null()
                      : Value::Int(static_cast<int64_t>(rng->NextUint64() % 5) - 2));
    rows.push_back(std::move(row));
  }
  return MakeRelation({Column{"i", DataType::kInt}, Column{"f", DataType::kFloat},
                       Column{"j", DataType::kInt}},
                      rows)
      .value();
}

/// One textual form capturing runtime type + value + nullness.
std::string Describe(const Value& v) {
  if (v.is_null()) return "null";
  return types::DataTypeToString(v.type()) + ":" + v.ToString();
}

TEST(BatchEvalPropertyTest, BatchEqualsScalarOnRandomExpressions) {
  Rng rng(20260806);
  size_t compared = 0;
  for (int iter = 0; iter < 120; ++iter) {
    RelationPtr rel = RandomRelation(&rng);
    std::string source = (iter % 2 == 0) ? RandomBoolExpr(&rng, 3)
                                         : RandomNumericExpr(&rng, 3);
    SCOPED_TRACE(source);
    auto compiled = expr::CompiledExpr::Compile(source, db::SchemaEnv(rel->schema()));
    ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();

    expr::RelationBatchSource batch_source(*rel);
    expr::BatchEvaluator evaluator(batch_source);
    expr::Selection sel;
    expr::IdentitySelection(0, rel->num_rows(), &sel);
    auto vec = evaluator.Eval(compiled->root(), sel);

    // Scalar reference, row by row.
    bool scalar_failed = false;
    std::vector<Value> scalar_values;
    for (size_t r = 0; r < rel->num_rows(); ++r) {
      expr::TupleAccessor accessor(rel->row(r));
      auto v = compiled->Eval(accessor);
      if (!v.ok()) {
        scalar_failed = true;
        break;
      }
      scalar_values.push_back(std::move(v).value());
    }

    ASSERT_EQ(vec.ok(), !scalar_failed) << (vec.ok() ? "batch ok, scalar failed"
                                                     : vec.status().ToString());
    if (!vec.ok()) continue;
    for (size_t r = 0; r < rel->num_rows(); ++r) {
      EXPECT_EQ(Describe(vec->ValueAt(r)), Describe(scalar_values[r]))
          << "row " << r;
      ++compared;
    }
  }
  EXPECT_GT(compared, 1000u);  // the test actually exercised something
}

// ---- SIMD kernel tiers ----------------------------------------------------
// The explicit SIMD layer (expr/simd/) must be invisible in results at every
// dispatch level. Evidence: the randomized sweep pinned per level, targeted
// payloads the kernels could plausibly get wrong (NaN, ±0.0, infinities,
// INT64_MIN/MAX), lengths straddling the lane width and the 64-row
// null-bitmap words, and selection shapes (dense, dense-with-offset, sparse).

/// Pins the process-default SIMD tier for a scope. Requested levels clamp to
/// what the build and CPU support (simd::Resolve), so pinning kAVX2 on an
/// SSE2-only machine degrades to kSSE2 rather than faulting.
class SimdGuard {
 public:
  explicit SimdGuard(db::SimdLevel level) : saved_(db::DefaultExecPolicy()) {
    db::ExecPolicy policy = saved_;
    policy.simd = level;
    db::SetDefaultExecPolicy(policy);
  }
  ~SimdGuard() { db::SetDefaultExecPolicy(saved_); }

 private:
  db::ExecPolicy saved_;
};

/// The dispatch levels that resolve to distinct code paths on this machine:
/// always kScalar, plus each kernel tier the build + CPU actually provide.
std::vector<db::SimdLevel> DistinctLevels() {
  std::vector<db::SimdLevel> levels = {db::SimdLevel::kScalar};
  expr::simd::Level best = expr::simd::BestLevel();
  if (best >= expr::simd::Level::kSSE2) levels.push_back(db::SimdLevel::kSSE2);
  if (best >= expr::simd::Level::kAVX2) levels.push_back(db::SimdLevel::kAVX2);
  return levels;
}

/// Evaluates `compiled` over `sel` rows of `rel` at the given SIMD level and
/// checks Describe-identity (runtime type + text + nullness) against the
/// row-at-a-time scalar evaluator. Returns how many node-batches the SIMD
/// kernels served, so callers can assert dispatch did/did not happen.
/// `sparse_gather_density` overrides ExecPolicy::sparse_gather_density when
/// non-negative (pass 0 to disable the sparse gather).
uint64_t ExpectSimdMatchesScalar(const expr::CompiledExpr& compiled,
                                 const RelationPtr& rel, db::SimdLevel level,
                                 const expr::Selection& sel,
                                 double sparse_gather_density = -1.0) {
  db::ExecPolicy policy = db::DefaultExecPolicy();
  policy.simd = level;
  if (sparse_gather_density >= 0.0) {
    policy.sparse_gather_density = sparse_gather_density;
  }
  expr::RelationBatchSource batch_source(*rel);
  expr::BatchEvaluator evaluator(batch_source, policy);
  auto vec = evaluator.Eval(compiled.root(), sel);

  bool scalar_failed = false;
  std::vector<Value> scalar_values;
  for (uint32_t r : sel) {
    expr::TupleAccessor accessor(rel->row(r));
    auto v = compiled.Eval(accessor);
    if (!v.ok()) {
      scalar_failed = true;
      break;
    }
    scalar_values.push_back(std::move(v).value());
  }
  EXPECT_EQ(vec.ok(), !scalar_failed)
      << (vec.ok() ? "batch ok, scalar failed" : vec.status().ToString());
  if (!vec.ok() || scalar_failed) return 0;
  for (size_t k = 0; k < sel.size(); ++k) {
    EXPECT_EQ(Describe(vec->ValueAt(k)), Describe(scalar_values[k]))
        << "element " << k << " (row " << sel[k] << ")";
  }
  return evaluator.stats().simd_nodes;
}

/// Rows cycling through every payload the kernels must not normalize: NaN,
/// +0.0 vs -0.0, ±infinity, INT64_MIN/MAX (the doubles they round to), with
/// nulls at mutually prime periods so null words fill differently per column.
/// `big`/`big2` only ever appear under comparisons and division — never
/// +,-,*,% — so the scalar reference stays free of signed overflow (this test
/// also runs under UBSan via scripts/check.sh).
RelationPtr SpecialRelation(size_t n) {
  const double kInf = std::numeric_limits<double>::infinity();
  const double kNaN = std::numeric_limits<double>::quiet_NaN();
  const double f_cycle[] = {kNaN, 0.0, -0.0, 1.5, -2.25, kInf, -kInf, 3.0};
  const int64_t big_cycle[] = {std::numeric_limits<int64_t>::min(),
                               std::numeric_limits<int64_t>::max(), 0, -1, 1};
  std::vector<Tuple> rows;
  rows.reserve(n);
  for (size_t r = 0; r < n; ++r) {
    Tuple row;
    row.push_back(r % 7 == 6 ? Value::Null()
                             : Value::Int(static_cast<int64_t>(r % 11) - 5));
    row.push_back(r % 5 == 4 ? Value::Null()
                             : Value::Int(static_cast<int64_t>(r % 9) - 4));
    row.push_back(r % 9 == 8 ? Value::Null() : Value::Int(big_cycle[r % 5]));
    row.push_back(r % 6 == 5 ? Value::Null()
                             : Value::Int(big_cycle[(r + 2) % 5]));
    row.push_back(r % 11 == 10 ? Value::Null() : Value::Float(f_cycle[r % 8]));
    row.push_back(r % 13 == 12 ? Value::Null()
                               : Value::Float(f_cycle[(r + 3) % 8]));
    row.push_back(r % 4 == 3 ? Value::Null() : Value::Bool(r % 2 == 0));
    row.push_back(r % 10 == 9 ? Value::Null() : Value::Bool((r / 2) % 2 == 0));
    rows.push_back(std::move(row));
  }
  return MakeRelation(
             {Column{"i", DataType::kInt}, Column{"j", DataType::kInt},
              Column{"big", DataType::kInt}, Column{"big2", DataType::kInt},
              Column{"f", DataType::kFloat}, Column{"g", DataType::kFloat},
              Column{"b", DataType::kBool}, Column{"c", DataType::kBool}},
             rows)
      .value();
}

TEST(SimdEquivalenceTest, BoundaryLengthsAndSpecialPayloads) {
  // Lengths straddle the SSE2 (2) and AVX2 (4) lane widths and the 64-row
  // null-bitmap word boundary.
  const size_t lengths[] = {1, 2, 3, 4, 5, 7, 63, 64, 65, 127, 129, 200};
  std::vector<RelationPtr> rels;
  for (size_t n : lengths) rels.push_back(SpecialRelation(n));
  uint64_t dispatched = 0;
  for (const char* source : {
           // Float comparisons: NaN unordered, +0.0 = -0.0.
           "f < g", "f <= g", "f > g", "f >= g", "f = g", "f != g",
           "f = f", "f != f", "f < f",
           // Float arithmetic: NaN/inf propagation, -0.0 products, div→null.
           "f + g", "f - g", "f * g", "f / g", "f / 0.0", "0.0 / f",
           // Int arithmetic and comparisons (moderate values only).
           "i + j", "i - j", "i * j", "i / j", "i % j", "i < j", "i = j",
           "i != j",
           // Mixed int/float promotes through the cvt kernel.
           "i < f", "i + f", "i * f",
           // INT64 extremes: comparisons and division compare/convert as
           // double exactly like the scalar path.
           "big < big2", "big <= big2", "big = big2", "big != big2",
           "big >= big2", "big > big2", "big / j",
           // 3VL merges.
           "b and c", "b or c", "(f < g) and (i < j)", "(f = g) or (b and c)",
       }) {
    SCOPED_TRACE(source);
    auto compiled =
        expr::CompiledExpr::Compile(source, db::SchemaEnv(rels[0]->schema()));
    ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
    for (size_t li = 0; li < std::size(lengths); ++li) {
      SCOPED_TRACE("n=" + std::to_string(lengths[li]));
      expr::Selection sel;
      expr::IdentitySelection(0, lengths[li], &sel);
      for (db::SimdLevel level : DistinctLevels()) {
        dispatched += ExpectSimdMatchesScalar(*compiled, rels[li], level, sel);
      }
    }
  }
#if defined(TIOGA2_SIMD_ENABLED)
  EXPECT_GT(dispatched, 0u);  // the kernels actually ran
#endif
}

TEST(SimdEquivalenceTest, SelectionShapesDispatchOrFallBack) {
  RelationPtr rel = SpecialRelation(200);
  // Expected SIMD node-batches under dense and sparse selections. The and/or
  // merge kernel only runs when the left branch decided no rows (every row
  // still needs the right branch), so those cases build a true-or-null /
  // false-or-null lhs deliberately: dense 3 = two comparisons + the merge.
  //
  // Sparse selections dispatch two ways, keyed off
  // ExecPolicy::sparse_gather_density. At the default (0.5), an every-3rd-row
  // selection (density 1/3 <= 0.5) gathers its column operands into dense
  // scratch first, so the kernels dispatch exactly as they do for the dense
  // window. With the knob at 0 the gather is disabled and the comparisons
  // fall back to the typed loops (their operands are per-row gathers), but
  // the and/or merge still runs — it consumes the typed bool vectors the
  // fallback loops materialized, which are contiguous whatever the selection
  // shape.
  const struct {
    const char* source;
    uint64_t dense_nodes;
    uint64_t no_gather_nodes;  // sparse selection, sparse_gather_density = 0
  } cases[] = {
      {"f + g", 1, 0},
      {"f < g", 1, 0},
      {"f / g", 1, 0},
      {"i + j", 1, 0},
      {"(i = i) and (j = j)", 3, 1},
      {"(i != i) or (j != j)", 3, 1},
  };
  for (const auto& c : cases) {
    SCOPED_TRACE(c.source);
    auto compiled =
        expr::CompiledExpr::Compile(c.source, db::SchemaEnv(rel->schema()));
    ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();

    // Sparse selection under the default policy: the gather densifies the
    // operands, so dispatch matches the dense window.
    expr::Selection sparse;
    for (uint32_t r = 0; r < 200; r += 3) sparse.push_back(r);
    uint64_t sparse_dispatched =
        ExpectSimdMatchesScalar(*compiled, rel, db::SimdLevel::kAVX2, sparse);
#if defined(TIOGA2_SIMD_ENABLED)
    EXPECT_EQ(sparse_dispatched, c.dense_nodes);
#else
    EXPECT_EQ(sparse_dispatched, 0u);
#endif

    // Same selection with the gather disabled: column reads take the typed
    // loops (no contiguous window to hand a kernel) and still match the
    // oracle.
    uint64_t no_gather_dispatched = ExpectSimdMatchesScalar(
        *compiled, rel, db::SimdLevel::kAVX2, sparse, /*sparse_gather_density=*/0.0);
#if defined(TIOGA2_SIMD_ENABLED)
    EXPECT_EQ(no_gather_dispatched, c.no_gather_nodes);
#else
    EXPECT_EQ(no_gather_dispatched, 0u);
#endif

    // A dense suffix window starts mid-word, exercising the shifted
    // null-bitmap extraction.
    expr::Selection suffix;
    expr::IdentitySelection(37, 200, &suffix);
    ExpectSimdMatchesScalar(*compiled, rel, db::SimdLevel::kAVX2, suffix);

    expr::Selection dense;
    expr::IdentitySelection(0, 200, &dense);
    uint64_t dispatched =
        ExpectSimdMatchesScalar(*compiled, rel, db::SimdLevel::kAVX2, dense);
#if defined(TIOGA2_SIMD_ENABLED)
    EXPECT_EQ(dispatched, c.dense_nodes);
#else
    EXPECT_EQ(dispatched, 0u);
#endif
  }
}

TEST(SimdEquivalenceTest, PropertySweepPinnedAtEachLevel) {
  for (db::SimdLevel level : DistinctLevels()) {
    Rng rng(918273u + static_cast<uint64_t>(static_cast<int>(level)));
    for (int iter = 0; iter < 40; ++iter) {
      RelationPtr rel = RandomRelation(&rng);
      std::string source = (iter % 2 == 0) ? RandomBoolExpr(&rng, 3)
                                           : RandomNumericExpr(&rng, 3);
      SCOPED_TRACE(source);
      auto compiled =
          expr::CompiledExpr::Compile(source, db::SchemaEnv(rel->schema()));
      ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
      expr::Selection sel;
      expr::IdentitySelection(0, rel->num_rows(), &sel);
      ExpectSimdMatchesScalar(*compiled, rel, level, sel);
    }
  }
}

/// Like ExpectSameRestrict, but compares rendered text: RelationEquals goes
/// through Value::Equals, for which NaN equals nothing — so two *identical*
/// NaN-carrying survivor sets would compare unequal.
void ExpectSameRestrictByText(const RelationPtr& rel,
                              const std::string& predicate) {
  SCOPED_TRACE(predicate);
  auto compiled = db::CompilePredicate(rel->schema(), predicate);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  auto scalar = db::RestrictScalar(rel, compiled.value());
  VectorizedGuard guard(true);
  auto vectorized = db::Restrict(rel, compiled.value());
  ASSERT_EQ(scalar.ok(), vectorized.ok());
  if (!scalar.ok()) return;
  EXPECT_EQ((*scalar)->ToString(1000), (*vectorized)->ToString(1000));
}

TEST(SimdEquivalenceTest, RestrictZooAtEachDispatchLevel) {
  RelationPtr rel = SpecialRelation(129);
  for (db::SimdLevel level : DistinctLevels()) {
    SCOPED_TRACE(expr::simd::LevelName(expr::simd::Resolve(level)));
    SimdGuard guard(level);
    for (const char* predicate : {
             "f * 2.0 + g >= 1.0",
             "f = g",
             "f != f",
             "big < big2 and i + j > 0",
             "f / g > 0.5 or b and c",
             "i * j - 3 <= f",
         }) {
      ExpectSameRestrictByText(rel, predicate);
    }
  }
}

// ---- Figure-program memo/stamp regression --------------------------------

struct Target {
  std::string canvas;
  std::string from;
  size_t from_port = 0;
};

std::vector<Target> TargetsOf(const dataflow::Graph& graph) {
  std::vector<Target> targets;
  for (const std::string& id : graph.BoxIds()) {
    const auto* viewer =
        dynamic_cast<const boxes::ViewerBox*>(graph.GetBox(id).value());
    if (viewer == nullptr) continue;
    std::optional<dataflow::Edge> edge = graph.IncomingEdge(id, 0);
    if (!edge.has_value()) continue;
    targets.push_back(Target{viewer->canvas(), edge->from_box, edge->from_port});
  }
  return targets;
}

TEST(BatchEvalStampRegressionTest, VectorizationCannotChangeFingerprintsOrStamps) {
  for (const testing::FigProgram& program : testing::AllFigPrograms()) {
    SCOPED_TRACE(program.name);

    // Pass 0: scalar row-at-a-time. Pass 1: vectorized typed loops with the
    // SIMD tiers pinned off. Pass 2: vectorized with the best SIMD tier the
    // host supports forced on (kAVX2 clamps down on lesser machines) and
    // dictionary encoding at its default (on) — the dict-SIMD paths run here.
    // Pass 3: like pass 2 but with dictionary encoding disabled, so the
    // string comparisons/joins/group-bys take their generic paths. All four
    // must agree bit-for-bit or memoization would churn on a policy flip.
    std::map<std::string, std::string> fingerprints[4];
    std::map<std::string, std::optional<uint64_t>> stamps[4];
    for (int pass = 0; pass < 4; ++pass) {
      VectorizedGuard guard(pass >= 1);
      SimdGuard simd_guard(pass >= 2 ? db::SimdLevel::kAVX2
                                     : db::SimdLevel::kScalar);
      DictGuard dict_guard(pass != 3);
      Environment env;
      ASSERT_TRUE(env.LoadDemoData(program.extra_stations, program.num_days).ok());
      Status built = program.build(&env);
      ASSERT_TRUE(built.ok()) << built.message();
      ui::Session& session = env.session();
      for (const Target& t : TargetsOf(session.graph())) {
        auto value =
            session.engine().Evaluate(session.graph(), t.from, t.from_port);
        ASSERT_TRUE(value.ok()) << t.canvas << ": " << value.status().message();
        fingerprints[pass][t.canvas] = testing::FingerprintBoxValue(value.value());
      }
      for (const std::string& id : session.graph().BoxIds()) {
        stamps[pass][id] = session.engine().cache().StampOf(id);
      }
    }
    for (int pass = 1; pass < 4; ++pass) {
      EXPECT_EQ(fingerprints[0], fingerprints[pass]) << "pass " << pass;
      EXPECT_EQ(stamps[0], stamps[pass]) << "pass " << pass;
    }
  }
}

// ---- Dictionary-encoded string execution -----------------------------------
// String comparisons against constants lower onto integer dictionary codes
// (db/columnar.h dictionaries, the lowering table in expr/batch.cc). The
// dictionary is sorted in Value::Compare's string order, so code-space
// thresholds reproduce the string loop's bits exactly. These tests hold the
// dict paths to the same Describe-identity standard as the SIMD tiers, plus
// dispatch-counter evidence that the lowering actually ran.

/// Categories exercising every ordering edge the lowering must respect: the
/// empty string (sorts first), an embedded NUL byte, plain ASCII, and a
/// multi-byte UTF-8 value; nulls on a period coprime with the category cycle.
RelationPtr CategoricalRelation(size_t n) {
  const std::string cats[] = {"",     std::string("a\0b", 3), "alpha",
                              "beta", "\xc3\xa9clair",        "omega"};
  std::vector<Tuple> rows;
  rows.reserve(n);
  for (size_t r = 0; r < n; ++r) {
    rows.push_back({r % 7 == 6 ? Value::Null() : Value::String(cats[r % 6]),
                    Value::Int(static_cast<int64_t>(r % 13) - 6)});
  }
  return MakeRelation(
             {Column{"s", DataType::kString}, Column{"i", DataType::kInt}}, rows)
      .value();
}

TEST(DictExecutionTest, CompareLoweringMatchesScalarAcrossOpsAndConstants) {
  RelationPtr rel = CategoricalRelation(200);
  uint64_t before = expr::BatchMetrics::Global().dict_simd_batches.load();
  // Constants cover: present values (middle, lowest = the empty string),
  // absent values that fall between, below, and above every dictionary
  // entry — each against every comparison op, in both operand orders.
  for (const char* source : {
           "s = \"beta\"", "s != \"beta\"", "s < \"beta\"", "s <= \"beta\"",
           "s > \"beta\"", "s >= \"beta\"",
           "s = \"\"", "s != \"\"", "s <= \"\"", "s > \"\"",
           // Absent: between "alpha" and "beta" / below all / above all.
           "s = \"b\"", "s != \"b\"", "s < \"b\"", "s >= \"b\"",
           "s = \"zzz\"", "s <= \"zzz\"", "s > \"zzz\"",
           // Constant on the left flips the comparison before lowering.
           "\"beta\" = s", "\"beta\" < s", "\"beta\" <= s", "\"beta\" >= s",
           // Inside compound predicates the lowered node feeds the 3VL merge.
           "s >= \"beta\" and i > 0", "s = \"omega\" or s = \"alpha\"",
       }) {
    SCOPED_TRACE(source);
    ExpectSameRestrict(rel, source);
    auto compiled =
        expr::CompiledExpr::Compile(source, db::SchemaEnv(rel->schema()));
    ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
    // Describe-identity at every dispatch level, dense and sparse (the code
    // gather makes sparse selections dense for free).
    expr::Selection dense;
    expr::IdentitySelection(0, rel->num_rows(), &dense);
    expr::Selection sparse;
    for (uint32_t r = 1; r < rel->num_rows(); r += 3) sparse.push_back(r);
    for (db::SimdLevel level : DistinctLevels()) {
      ExpectSimdMatchesScalar(*compiled, rel, level, dense);
      ExpectSimdMatchesScalar(*compiled, rel, level, sparse);
    }
  }
  EXPECT_GT(expr::BatchMetrics::Global().dict_simd_batches.load(), before)
      << "the dictionary lowering never dispatched";
}

TEST(DictExecutionTest, DictOnAndOffProduceIdenticalRestricts) {
  // Dictionaries are built at materialization, so each policy needs its own
  // freshly built relation. Every pairing — dict on/off × vectorized
  // on/off — must produce the same relation bytes.
  const char* predicates[] = {"s >= \"beta\"", "s != \"alpha\" and i <= 2",
                              "s < \"b\" or s > \"omeg\""};
  for (const char* predicate : predicates) {
    SCOPED_TRACE(predicate);
    std::vector<RelationPtr> results;
    for (bool dict_on : {true, false}) {
      for (bool vec_on : {true, false}) {
        DictGuard dict_guard(dict_on);
        VectorizedGuard vec_guard(vec_on);
        RelationPtr rel = CategoricalRelation(150);
        auto compiled = db::CompilePredicate(rel->schema(), predicate);
        ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
        auto restricted = db::Restrict(rel, compiled.value());
        ASSERT_TRUE(restricted.ok()) << restricted.status().ToString();
        results.push_back(restricted.value());
      }
    }
    for (size_t k = 1; k < results.size(); ++k) {
      EXPECT_TRUE(db::RelationEquals(*results[0], *results[k]))
          << "variant " << k << " diverged:\n"
          << results[0]->ToString() << "vs\n"
          << results[k]->ToString();
    }
  }
}

TEST(DictExecutionTest, RandomizedCategoricalSweep) {
  // Random category alphabets (including adversarial near-misses of each
  // other: prefixes, shared stems), random null rates, random comparison
  // predicates — batch output must Describe-match the scalar oracle at every
  // dispatch level.
  Rng rng(20260809);
  const std::string alphabet[] = {"a",  "ab",  "abc", "b",    "ba",
                                  "bb", "cat", "ca",  "c\x7f", ""};
  size_t compared = 0;
  for (int iter = 0; iter < 60; ++iter) {
    const size_t n = 1 + rng.NextUint64() % 180;
    const size_t num_cats = 1 + rng.NextUint64() % std::size(alphabet);
    std::vector<Tuple> rows;
    for (size_t r = 0; r < n; ++r) {
      rows.push_back({rng.NextUint64() % 6 == 0
                          ? Value::Null()
                          : Value::String(alphabet[rng.NextUint64() % num_cats]),
                      Value::Int(static_cast<int64_t>(r))});
    }
    RelationPtr rel =
        MakeRelation(
            {Column{"s", DataType::kString}, Column{"i", DataType::kInt}}, rows)
            .value();
    const char* cmps[] = {"=", "!=", "<", "<=", ">", ">="};
    // Compare against a constant drawn from the same alphabet — roughly half
    // the draws are present in this relation, half absent.
    std::string constant = alphabet[rng.NextUint64() % std::size(alphabet)];
    std::string source = "s " + std::string(cmps[rng.NextUint64() % 6]) +
                         " \"" + constant + "\"";
    SCOPED_TRACE(source);
    auto compiled =
        expr::CompiledExpr::Compile(source, db::SchemaEnv(rel->schema()));
    ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
    expr::Selection sel;
    expr::IdentitySelection(0, n, &sel);
    for (db::SimdLevel level : DistinctLevels()) {
      ExpectSimdMatchesScalar(*compiled, rel, level, sel);
    }
    compared += n;
  }
  EXPECT_GT(compared, 1000u);
}

TEST(DictExecutionTest, TextBuiltinSplatsDistinctCodes) {
  // text(s, const_size) over an encoded column formats each distinct value
  // once and splats the shared drawables by code — results must Describe-match
  // the per-row builtin eval, and the splat must actually dispatch.
  RelationPtr rel = CategoricalRelation(80);
  rel->columnar();
  for (const char* source : {"text(s, 2.0)", "text(s, 3.0, \"#112233\")"}) {
    SCOPED_TRACE(source);
    auto compiled =
        expr::CompiledExpr::Compile(source, db::SchemaEnv(rel->schema()));
    ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
    uint64_t before = expr::BatchMetrics::Global().dict_simd_batches.load();
    expr::RelationBatchSource batch_source(*rel);
    expr::BatchEvaluator evaluator(batch_source);
    expr::Selection sel;
    expr::IdentitySelection(0, rel->num_rows(), &sel);
    auto vec = evaluator.Eval(compiled->root(), sel);
    ASSERT_TRUE(vec.ok()) << vec.status().ToString();
    EXPECT_GT(expr::BatchMetrics::Global().dict_simd_batches.load(), before);
    for (size_t r = 0; r < rel->num_rows(); ++r) {
      expr::TupleAccessor accessor(rel->row(r));
      auto scalar = compiled->Eval(accessor);
      ASSERT_TRUE(scalar.ok());
      EXPECT_EQ(Describe(vec->ValueAt(r)), Describe(scalar.value()))
          << "row " << r;
    }
  }
}

// ---- DisplayRelation batch paths ------------------------------------------

TEST(DisplayBatchTest, AttributeValuesMatchesAttributeValue) {
  RelationPtr rel = Mixed();
  auto dr = display::DisplayRelation::WithDefaults("mixed", rel);
  ASSERT_TRUE(dr.ok());
  auto with_attr = dr->AddAttribute("score", "i * 2 + coalesce(f, 0.0)");
  ASSERT_TRUE(with_attr.ok()) << with_attr.status().ToString();
  auto scaled = with_attr->ScaleAttribute("i", 2.0);
  ASSERT_TRUE(scaled.ok());
  const display::DisplayRelation& relation = scaled.value();
  for (const char* name : {"i", "f", "s", "score", "_x", "_y"}) {
    SCOPED_TRACE(name);
    VectorizedGuard guard(true);
    auto batch = relation.AttributeValues(name);
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();
    ASSERT_EQ(batch->size(), relation.num_rows());
    for (size_t r = 0; r < relation.num_rows(); ++r) {
      auto scalar = relation.AttributeValue(r, name);
      ASSERT_TRUE(scalar.ok());
      EXPECT_EQ(Describe((*batch)[r]), Describe(scalar.value())) << "row " << r;
    }
  }
}

TEST(DisplayBatchTest, DrawableBuiltinsVectorize) {
  // The drawable-constructor builtins (the bulk of nodes_fallback on display
  // programs) run as batch kernels when their styling args are constants.
  // fallback_nodes must stay 0 — only the constructors' argument subtrees
  // may use other paths — and results must match the scalar builtin eval.
  RelationPtr rel = Mixed();
  for (const char* source : {
           "point()",
           "point(\"#aabbcc\")",
           "circle(i + 1.0)",
           "circle(f, \"#c81e1e\")",
           "circle(f, \"#c81e1e\", true)",
           "rect(i, f)",
           "rect(i * 2, f + 1.0, \"#00ff00\")",
           "rect(i, f, \"#00ff00\", false)",
           "line(i, f)",
           "line(i, f, \"#0000ff\")",
           "text(s, 2.0)",
           "text(s, f, \"#112233\")",
           "offset(circle(i + 1.0, \"#c81e1e\"), f, 0.0 - f)",
       }) {
    SCOPED_TRACE(source);
    auto compiled =
        expr::CompiledExpr::Compile(source, db::SchemaEnv(rel->schema()));
    ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
    expr::RelationBatchSource batch_source(*rel);
    expr::BatchEvaluator evaluator(batch_source);
    expr::Selection sel;
    expr::IdentitySelection(0, rel->num_rows(), &sel);
    auto vec = evaluator.Eval(compiled->root(), sel);
    ASSERT_TRUE(vec.ok()) << vec.status().ToString();
    EXPECT_EQ(evaluator.stats().fallback_nodes, 0u);
    for (size_t r = 0; r < rel->num_rows(); ++r) {
      expr::TupleAccessor accessor(rel->row(r));
      auto scalar = compiled->Eval(accessor);
      ASSERT_TRUE(scalar.ok());
      EXPECT_EQ(Describe(vec->ValueAt(r)), Describe(scalar.value()))
          << "row " << r;
    }
  }
}

TEST(DisplayBatchTest, RestrictMatchesScalarOverComputedAttributes) {
  RelationPtr rel = Mixed();
  auto dr = display::DisplayRelation::WithDefaults("mixed", rel);
  ASSERT_TRUE(dr.ok());
  auto with_attr = dr->AddAttribute("double_i", "i * 2");
  ASSERT_TRUE(with_attr.ok());
  const display::DisplayRelation& relation = with_attr.value();

  std::optional<display::DisplayRelation> on;
  std::optional<display::DisplayRelation> off;
  {
    VectorizedGuard guard(true);
    auto result = relation.Restrict("double_i > 0 and b");
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    on = std::move(result).value();
  }
  {
    VectorizedGuard guard(false);
    auto result = relation.Restrict("double_i > 0 and b");
    ASSERT_TRUE(result.ok());
    off = std::move(result).value();
  }
  EXPECT_TRUE(db::RelationEquals(*on->base(), *off->base()));
}

// ---- Morsel-driven fan-out ------------------------------------------------
// db/morsel.h: morsel boundaries may only change scheduling granularity,
// never output bytes. The cases below pin the boundary conditions — morsel
// size 1, sizes straddling the 64-row null-bitmap words (63/64/65), a size
// larger than the input (exactly one morsel) — each with and without a
// worker pool attached.

RelationPtr NullStripes() {
  // 130 rows spans three null-bitmap words; the stripes put nulls on both
  // sides of every word boundary a morsel edge can land on.
  std::vector<Tuple> rows;
  for (int i = 0; i < 130; ++i) {
    Tuple row;
    row.push_back(i % 3 == 0 ? Value::Null() : Value::Int(i - 65));
    row.push_back(i % 7 == 0 ? Value::Null() : Value::Float(i * 0.5 - 20.0));
    row.push_back(Value::String(i % 2 == 0 ? "even" : "odd"));
    rows.push_back(std::move(row));
  }
  return MakeRelation({Column{"a", DataType::kInt},
                       Column{"f", DataType::kFloat},
                       Column{"tag", DataType::kString}},
                      rows)
      .value();
}

constexpr size_t kMorselSizes[] = {1, 63, 64, 65, 129, 130, 1000};

TEST(MorselTest, RestrictByteIdenticalAcrossMorselSizes) {
  RelationPtr rel = NullStripes();
  auto compiled = db::CompilePredicate(
      rel->schema(), "a > 0 or (f < 0.0 and tag = \"odd\")");
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  auto reference = db::RestrictScalar(rel, compiled.value());
  ASSERT_TRUE(reference.ok());
  runtime::ThreadPool pool(4);
  for (size_t morsel_rows : kMorselSizes) {
    SCOPED_TRACE("morsel_rows=" + std::to_string(morsel_rows));
    for (bool with_runner : {false, true}) {
      SCOPED_TRACE(with_runner ? "pooled" : "serial");
      db::ExecPolicy policy;
      policy.morsel_rows = morsel_rows;
      policy.runner = with_runner ? &pool : nullptr;
      auto result = db::Restrict(rel, compiled.value(), policy);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      EXPECT_TRUE(db::RelationEquals(**reference, **result))
          << "scalar:\n"
          << (*reference)->ToString() << "morselized:\n"
          << (*result)->ToString();
    }
  }
}

TEST(MorselTest, JoinsByteIdenticalAcrossMorselSizes) {
  // "k = j" takes the morselized hash probe, "k < j" the morselized batched
  // nested loop; the scalar tuple-at-a-time paths are the oracle for both.
  std::vector<Tuple> lrows;
  for (int i = 0; i < 90; ++i) {
    lrows.push_back({i % 5 == 0 ? Value::Null() : Value::Int(i % 11),
                     Value::String("l" + std::to_string(i))});
  }
  std::vector<Tuple> rrows;
  for (int i = 0; i < 140; ++i) {
    rrows.push_back({i % 4 == 0 ? Value::Null() : Value::Int(i % 13),
                     Value::Float(i * 0.25)});
  }
  RelationPtr left =
      MakeRelation({Column{"k", DataType::kInt}, Column{"name", DataType::kString}},
                   lrows)
          .value();
  RelationPtr right =
      MakeRelation({Column{"j", DataType::kInt}, Column{"w", DataType::kFloat}},
                   rrows)
          .value();
  db::ExecPolicy scalar;
  scalar.vectorized = false;
  runtime::ThreadPool pool(4);
  for (const char* predicate : {"k = j", "k < j"}) {
    SCOPED_TRACE(predicate);
    auto oracle = db::Join(left, right, predicate, scalar);
    ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
    for (size_t morsel_rows : kMorselSizes) {
      SCOPED_TRACE("morsel_rows=" + std::to_string(morsel_rows));
      db::ExecPolicy policy;
      policy.morsel_rows = morsel_rows;
      policy.runner = &pool;
      auto result = db::Join(left, right, predicate, policy);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      EXPECT_TRUE(db::RelationEquals(*oracle->relation, *result->relation))
          << "scalar:\n"
          << oracle->relation->ToString() << "morselized:\n"
          << result->relation->ToString();
    }
  }
}

TEST(MorselTest, DisplayPathsByteIdenticalAcrossMorselSizes) {
  RelationPtr rel = NullStripes();
  auto dr = display::DisplayRelation::WithDefaults("stripes", rel);
  ASSERT_TRUE(dr.ok());
  // "score" exercises the vectorized kExpr path (with a per-row _y
  // fallback inside); "_display" exercises the per-row fallback fan-out.
  auto with_attr = dr->AddAttribute("score", "coalesce(a, 0) * 2 + _y");
  ASSERT_TRUE(with_attr.ok()) << with_attr.status().ToString();
  const display::DisplayRelation& relation = with_attr.value();

  db::ExecPolicy serial;
  runtime::ThreadPool pool(4);
  for (size_t morsel_rows : kMorselSizes) {
    SCOPED_TRACE("morsel_rows=" + std::to_string(morsel_rows));
    db::ExecPolicy policy;
    policy.morsel_rows = morsel_rows;
    policy.runner = &pool;

    for (const char* name : {"score", "_display"}) {
      SCOPED_TRACE(name);
      auto expected = relation.AttributeValues(name, serial);
      ASSERT_TRUE(expected.ok()) << expected.status().ToString();
      auto values = relation.AttributeValues(name, policy);
      ASSERT_TRUE(values.ok()) << values.status().ToString();
      ASSERT_EQ(values->size(), expected->size());
      for (size_t r = 0; r < values->size(); ++r) {
        EXPECT_EQ(Describe((*values)[r]), Describe((*expected)[r])) << "row " << r;
      }
    }

    auto expected_restrict = relation.Restrict("score > 10.0", serial);
    ASSERT_TRUE(expected_restrict.ok());
    auto restricted = relation.Restrict("score > 10.0", policy);
    ASSERT_TRUE(restricted.ok()) << restricted.status().ToString();
    EXPECT_TRUE(
        db::RelationEquals(*expected_restrict->base(), *restricted->base()));

    auto expected_count =
        relation.CountKept("score > 10.0", relation.num_rows(), serial);
    ASSERT_TRUE(expected_count.ok());
    auto count = relation.CountKept("score > 10.0", relation.num_rows(), policy);
    ASSERT_TRUE(count.ok()) << count.status().ToString();
    EXPECT_EQ(count.value(), expected_count.value());
  }
}

TEST(MorselTest, LowestIndexedMorselErrorWinsUnderParallelism) {
  runtime::ThreadPool pool(4);
  db::ExecPolicy policy;
  policy.morsel_rows = 1;
  policy.runner = &pool;
  for (int trial = 0; trial < 8; ++trial) {
    std::atomic<int> ran{0};
    Status status = db::ForEachMorsel(
        policy, 64, [&](size_t m, size_t, size_t) -> Status {
          ran.fetch_add(1, std::memory_order_relaxed);
          if (m >= 5 && m % 2 == 1) {
            return Status::InvalidArgument("morsel " + std::to_string(m));
          }
          return Status::OK();
        });
    ASSERT_FALSE(status.ok());
    // Always morsel 5's error, regardless of which worker hit which morsel
    // first — and every morsel ran (parallel mode never aborts early).
    EXPECT_EQ(status.message(), "morsel 5");
    EXPECT_EQ(ran.load(), 64);
  }
}

TEST(MorselTest, SerialModeStopsAtFirstFailureInMorselOrder) {
  db::ExecPolicy policy;
  policy.morsel_rows = 1;  // no runner: serial mode
  int ran = 0;
  Status status =
      db::ForEachMorsel(policy, 64, [&](size_t m, size_t, size_t) -> Status {
        ++ran;
        if (m == 5) return Status::InvalidArgument("morsel 5");
        return Status::OK();
      });
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.message(), "morsel 5");
  EXPECT_EQ(ran, 6);  // serial mode preserves the old loops' early return
}

TEST(SortTest, VectorizedMatchesScalarIncludingNulls) {
  RelationPtr rel = Mixed();
  for (const char* column : {"i", "f", "s", "b"}) {
    for (bool ascending : {true, false}) {
      SCOPED_TRACE(std::string(column) + (ascending ? " asc" : " desc"));
      std::optional<RelationPtr> on;
      std::optional<RelationPtr> off;
      {
        VectorizedGuard guard(true);
        auto result = db::Sort(rel, column, ascending);
        ASSERT_TRUE(result.ok());
        on = std::move(result).value();
      }
      {
        VectorizedGuard guard(false);
        auto result = db::Sort(rel, column, ascending);
        ASSERT_TRUE(result.ok());
        off = std::move(result).value();
      }
      EXPECT_TRUE(db::RelationEquals(**on, **off))
          << "vectorized:\n"
          << (*on)->ToString() << "scalar:\n"
          << (*off)->ToString();
    }
  }
}

}  // namespace
}  // namespace tioga2
