#include <gtest/gtest.h>

#include "viewer/camera.h"

namespace tioga2::viewer {
namespace {

TEST(CameraTest, CenterMapsToViewportCenter) {
  Camera camera(10, 20, 100, 640, 480);
  double dx = 0;
  double dy = 0;
  camera.WorldToDevice(10, 20, &dx, &dy);
  EXPECT_DOUBLE_EQ(dx, 320);
  EXPECT_DOUBLE_EQ(dy, 240);
}

TEST(CameraTest, YAxisFlips) {
  Camera camera(0, 0, 100, 100, 100);
  double dx = 0;
  double dy = 0;
  camera.WorldToDevice(0, 10, &dx, &dy);  // up in world
  EXPECT_LT(dy, 50);                       // is up (smaller y) on screen
  camera.WorldToDevice(0, -10, &dx, &dy);
  EXPECT_GT(dy, 50);
}

TEST(CameraTest, ScaleIsViewportHeightOverElevation) {
  Camera camera(0, 0, 50, 200, 100);
  EXPECT_DOUBLE_EQ(camera.Scale(), 2.0);  // 100 px / 50 world units
}

TEST(CameraTest, RoundTripWorldDevice) {
  Camera camera(-90.5, 30.25, 3.5, 640, 480);
  for (double wx : {-92.0, -90.5, -89.1}) {
    for (double wy : {29.0, 30.25, 31.7}) {
      double dx = 0;
      double dy = 0;
      camera.WorldToDevice(wx, wy, &dx, &dy);
      double back_x = 0;
      double back_y = 0;
      camera.DeviceToWorld(dx, dy, &back_x, &back_y);
      EXPECT_NEAR(back_x, wx, 1e-9);
      EXPECT_NEAR(back_y, wy, 1e-9);
    }
  }
}

TEST(CameraTest, VisibleWorldMatchesElevationAndAspect) {
  Camera camera(0, 0, 100, 200, 100);  // aspect 2:1
  draw::BBox visible = camera.VisibleWorld();
  EXPECT_DOUBLE_EQ(visible.Height(), 100);
  EXPECT_DOUBLE_EQ(visible.Width(), 200);
  EXPECT_DOUBLE_EQ(visible.min_x, -100);
  EXPECT_DOUBLE_EQ(visible.max_y, 50);
}

TEST(CameraTest, PanAndMoveTo) {
  Camera camera(0, 0, 10, 100, 100);
  camera.Pan(3, -4);
  EXPECT_DOUBLE_EQ(camera.center_x(), 3);
  EXPECT_DOUBLE_EQ(camera.center_y(), -4);
  camera.MoveTo(7, 8);
  EXPECT_DOUBLE_EQ(camera.center_x(), 7);
}

TEST(CameraTest, ZoomDescends) {
  Camera camera(0, 0, 100, 100, 100);
  camera.Zoom(2.0);  // zoom in halves the elevation
  EXPECT_DOUBLE_EQ(camera.elevation(), 50);
  camera.Zoom(0.5);  // zoom out
  EXPECT_DOUBLE_EQ(camera.elevation(), 100);
  camera.Zoom(-1.0);  // ignored
  EXPECT_DOUBLE_EQ(camera.elevation(), 100);
  camera.SetElevation(0);  // clamped positive
  EXPECT_GT(camera.elevation(), 0);
}

TEST(CameraTest, SliderFiltering) {
  Camera camera(0, 0, 10, 100, 100);
  // Without a slider every value passes.
  EXPECT_TRUE(camera.SliderAccepts(2, 12345));
  camera.SetSlider(2, SliderRange{0, 100});
  EXPECT_TRUE(camera.SliderAccepts(2, 50));
  EXPECT_TRUE(camera.SliderAccepts(2, 0));
  EXPECT_FALSE(camera.SliderAccepts(2, 101));
  // Other dims unaffected.
  EXPECT_TRUE(camera.SliderAccepts(3, 999));
  camera.SetSlider(4, SliderRange{-1, 1});
  EXPECT_FALSE(camera.SliderAccepts(4, 2));
  EXPECT_TRUE(camera.Slider(3) == std::nullopt);
  // Dims < 2 are screen dimensions, not sliders.
  camera.SetSlider(0, SliderRange{0, 1});
  EXPECT_TRUE(camera.Slider(0) == std::nullopt);
}

TEST(CameraTest, FitFramesWorld) {
  draw::BBox world{-94, 29, -89, 33};
  Camera camera = Camera::Fit(world, 640, 480);
  draw::BBox visible = camera.VisibleWorld();
  EXPECT_LE(visible.min_x, world.min_x);
  EXPECT_GE(visible.max_x, world.max_x);
  EXPECT_LE(visible.min_y, world.min_y);
  EXPECT_GE(visible.max_y, world.max_y);
  EXPECT_DOUBLE_EQ(camera.center_x(), -91.5);
  EXPECT_DOUBLE_EQ(camera.center_y(), 31);
}

TEST(CameraTest, FitDegenerateWorld) {
  draw::BBox point{5, 5, 5, 5};
  Camera camera = Camera::Fit(point, 100, 100);
  EXPECT_GT(camera.elevation(), 0);
  EXPECT_TRUE(camera.VisibleWorld().Contains(5, 5));
}

TEST(CameraTest, FitWideWorldUsesAspect) {
  // A world much wider than tall must still fit horizontally.
  draw::BBox wide{0, 0, 100, 1};
  Camera camera = Camera::Fit(wide, 200, 100);
  draw::BBox visible = camera.VisibleWorld();
  EXPECT_GE(visible.Width(), 100);
}

}  // namespace
}  // namespace tioga2::viewer
