// Failure injection: the environment must degrade gracefully, never crash —
// dropped tables, erroring display expressions, malformed inputs, deep
// programs, and oversized values.

#include <gtest/gtest.h>

#include <cstdio>

#include "boxes/program_io.h"
#include "db/csv.h"
#include "expr/expr.h"
#include "expr/parser.h"
#include "tioga2/environment.h"

namespace tioga2 {
namespace {

TEST(RobustnessTest, DroppedTableSurfacesAsCanvasError) {
  Environment env;
  ASSERT_TRUE(env.LoadDemoData(10, 5).ok());
  ui::Session& session = env.session();
  std::string stations = session.AddTable("Stations").value();
  ASSERT_TRUE(session.AddViewer(stations, 0, "doomed").ok());
  ASSERT_TRUE(session.EvaluateCanvas("doomed").ok());
  // Drop the table out from under the program.
  ASSERT_TRUE(env.catalog().DropTable("Stations").ok());
  auto gone = session.EvaluateCanvas("doomed");
  EXPECT_TRUE(gone.status().IsNotFound());
  // Note: the memoized value is keyed on the table version; a vanished
  // table re-fires the source box, which reports the error.
}

TEST(RobustnessTest, ErroringDisplayExpressionSkipsTuplesNotRender) {
  Environment env;
  ASSERT_TRUE(env.LoadDemoData(0, 5).ok());
  ui::Session& session = env.session();
  std::string previous = session.AddTable("Stations").value();
  auto chain = [&](const std::string& type,
                   const std::map<std::string, std::string>& params) {
    std::string id = session.AddBox(type, params).value();
    ASSERT_TRUE(session.Connect(previous, 0, id, 0).ok());
    previous = id;
  };
  chain("SetLocation", {{"dim", "0"}, {"attr", "longitude"}});
  chain("SetLocation", {{"dim", "1"}, {"attr", "latitude"}});
  // A display whose color is malformed for stations above 100 ft: those
  // tuples error, the rest draw.
  chain("AddAttribute",
        {{"name", "d"},
         {"definition",
          "circle(0.1, if(altitude > 100.0, \"notacolor\", \"#00ff00\"), true)"}});
  chain("SetDisplay", {{"attr", "d"}});
  ASSERT_TRUE(session.AddViewer(previous, 0, "partial").ok());
  auto viewer = env.GetViewer("partial").value();
  ASSERT_TRUE(viewer->FitContent(200, 200).ok());
  render::Framebuffer fb(200, 200, draw::kWhite);
  render::RasterSurface surface(&fb);
  auto stats = viewer->RenderTo(&surface);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GT(stats->tuple_errors, 0u);
  EXPECT_GT(stats->tuples_drawn, 0u);
  EXPECT_EQ(stats->tuples_drawn + stats->tuple_errors +
                stats->tuples_culled_viewport,
            15u);
}

TEST(RobustnessTest, DeepProgramChainEvaluates) {
  Environment env;
  ASSERT_TRUE(env.LoadDemoData(10, 5).ok());
  ui::Session& session = env.session();
  std::string previous = session.AddTable("Stations").value();
  for (int i = 0; i < 200; ++i) {
    std::string box = session.AddBox("Restrict", {{"predicate", "true"}}).value();
    ASSERT_TRUE(session.Connect(previous, 0, box, 0).ok());
    previous = box;
  }
  ASSERT_TRUE(session.AddViewer(previous, 0, "deep").ok());
  auto content = session.EvaluateCanvas("deep");
  ASSERT_TRUE(content.ok()) << content.status().ToString();
  EXPECT_EQ(display::AsRelation(*content)->num_rows(), 25u);
}

TEST(RobustnessTest, DeeplyNestedExpressionParses) {
  std::string source = "n";
  for (int i = 0; i < 200; ++i) source = "(" + source + " + 1)";
  auto ast = expr::ParseExpr(source);
  ASSERT_TRUE(ast.ok());
  expr::TypeEnv env =
      expr::MakeSchemaTypeEnv({{"n", types::DataType::kInt}});
  EXPECT_TRUE(expr::AnalyzeExpr(ast->get(), env).ok());
}

TEST(RobustnessTest, HugeStringsSurvive) {
  std::string big(100000, 'x');
  auto relation =
      db::MakeRelation({db::Column{"s", types::DataType::kString}},
                       {{types::Value::String(big)}})
          .value();
  auto csv = db::RelationToCsv(*relation).value();
  auto parsed = db::RelationFromCsv(csv);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(db::RelationEquals(*relation, **parsed));
}

TEST(RobustnessTest, ZeroSizedViewportRenders) {
  Environment env;
  ASSERT_TRUE(env.LoadDemoData(0, 5).ok());
  ui::Session& session = env.session();
  std::string stations = session.AddTable("Stations").value();
  ASSERT_TRUE(session.AddViewer(stations, 0, "tiny").ok());
  auto viewer = env.GetViewer("tiny").value();
  render::Framebuffer fb(1, 1, draw::kWhite);  // clamped minimum
  render::RasterSurface surface(&fb);
  EXPECT_TRUE(viewer->RenderTo(&surface).ok());
}

TEST(RobustnessTest, CsvImportExportThroughEnvironment) {
  Environment env;
  ASSERT_TRUE(env.LoadDemoData(5, 3).ok());
  std::string path = ::testing::TempDir() + "/tioga2_env_io.csv";
  ASSERT_TRUE(env.ExportCsvTable("Employees", path).ok());
  ASSERT_TRUE(env.ImportCsvTable("Employees2", path).ok());
  auto original = env.catalog().GetTable("Employees").value();
  auto imported = env.catalog().GetTable("Employees2").value();
  EXPECT_TRUE(db::RelationEquals(*original, *imported));
  // The imported copy is a first-class table: usable in programs.
  ui::Session& session = env.session();
  std::string table = session.AddTable("Employees2").value();
  ASSERT_TRUE(session.AddViewer(table, 0, "copy").ok());
  EXPECT_TRUE(session.EvaluateCanvas("copy").ok());
  std::remove(path.c_str());
  EXPECT_TRUE(env.ImportCsvTable("Nope", path).IsIOError());
  EXPECT_TRUE(env.ExportCsvTable("Missing", "/tmp/x.csv").IsNotFound());
}

TEST(RobustnessTest, UndoAfterComplexEditSequence) {
  Environment env;
  ASSERT_TRUE(env.LoadDemoData(10, 5).ok());
  ui::Session& session = env.session();
  std::string stations = session.AddTable("Stations").value();
  std::string restrict =
      session.AddBox("Restrict", {{"predicate", "state = \"LA\""}}).value();
  ASSERT_TRUE(session.Connect(stations, 0, restrict, 0).ok());
  std::string serialized_before =
      boxes::SerializeProgram(session.graph()).value();
  // A flurry of edits...
  std::string t = session.InsertT(restrict, 0).value();
  ASSERT_TRUE(session.AddViewer(t, 1, "dbg").ok());
  ASSERT_TRUE(
      session.ReplaceBox(restrict, "Restrict", {{"predicate", "true"}}).ok());
  // ...all unwound (InsertT, AddViewer, ReplaceBox = three snapshots).
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(session.Undo().ok());
  }
  EXPECT_EQ(boxes::SerializeProgram(session.graph()).value(), serialized_before);
}

}  // namespace
}  // namespace tioga2
