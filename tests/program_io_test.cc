// Tests for Save/Load Program serialization (Figure 2) and the box registry.

#include <gtest/gtest.h>

#include "boxes/box_registry.h"
#include "boxes/program_io.h"
#include "boxes/relational_boxes.h"
#include "dataflow/encapsulate.h"
#include "dataflow/engine.h"
#include "db/relation.h"

namespace tioga2::boxes {
namespace {

using dataflow::Graph;
using dataflow::PortType;
using types::DataType;
using types::Value;

TEST(BoxRegistryTest, MakesEveryListedType) {
  // Every advertised box type is constructible with suitable parameters.
  const std::map<std::string, std::map<std::string, std::string>> kExamples = {
      {"AddAttribute", {{"name", "a"}, {"definition", "1 + 1"}}},
      {"AddLocationDimension", {{"attr", "alt"}}},
      {"CombineDisplays",
       {{"name", "c"}, {"first", "a"}, {"second", "b"}, {"dx", "0"}, {"dy", "1"}}},
      {"Const", {{"type", "int"}, {"value", "3"}}},
      {"Distinct", {}},
      {"GroupBy", {{"keys", "state"}, {"aggs", "count::n;avg:altitude:mean_alt"}}},
      {"Join", {{"predicate", "a = b"}}},
      {"Limit", {{"n", "10"}}},
      {"Lift",
       {{"type", "C"},
        {"group_member", "0"},
        {"member", "Stations"},
        {"inner", "Restrict"},
        {"inner.predicate", "x > 1"}}},
      {"Overlay", {{"offset", "1,2"}}},
      {"Project", {{"columns", "a,b"}}},
      {"RemoveAttribute", {{"name", "a"}}},
      {"RemoveLocationDimension", {{"dim", "2"}}},
      {"Replicate", {{"rows", "a > 1;a <= 1"}, {"columns", ""}}},
      {"Restrict", {{"predicate", "true"}}},
      {"Sample", {{"probability", "0.5"}, {"seed", "7"}}},
      {"ScaleAttribute", {{"name", "a"}, {"factor", "2"}}},
      {"SetAttribute", {{"name", "a"}, {"definition", "2"}}},
      {"SetDisplay", {{"attr", "d"}}},
      {"SetLocation", {{"dim", "0"}, {"attr", "lon"}}},
      {"SetName", {{"name", "n"}}},
      {"SetRange", {{"min", "0"}, {"max", "10"}}},
      {"Shuffle", {{"member", "m"}}},
      {"Sort", {{"column", "salary"}, {"ascending", "false"}}},
      {"Stitch", {{"arity", "2"}, {"layout", "tabular"}, {"columns", "2"}}},
      {"SwapAttributes", {{"a", "x"}, {"b", "y"}}},
      {"Switch", {{"predicate", "true"}}},
      {"T", {{"type", "R"}}},
      {"Table", {{"table", "Stations"}}},
      {"TranslateAttribute", {{"name", "a"}, {"delta", "3"}}},
      {"UnionAll", {}},
      {"Viewer", {{"canvas", "main"}}},
  };
  for (const std::string& type : AllBoxTypes()) {
    auto it = kExamples.find(type);
    ASSERT_NE(it, kExamples.end()) << "no example parameters for " << type;
    auto box = MakeBox(type, it->second);
    ASSERT_TRUE(box.ok()) << type << ": " << box.status().ToString();
    EXPECT_EQ((*box)->type_name(), type);
  }
}

TEST(BoxRegistryTest, ParamsRoundTripThroughMakeBox) {
  // Params() of a constructed box rebuild an identical box.
  auto original = MakeBox("Sample", {{"probability", "0.25"}, {"seed", "42"}}).value();
  auto rebuilt = MakeBox(original->type_name(), original->Params()).value();
  EXPECT_EQ(original->Params(), rebuilt->Params());
}

TEST(BoxRegistryTest, ErrorsForBadInput) {
  EXPECT_TRUE(MakeBox("NoSuchBox", {}).status().IsNotFound());
  EXPECT_TRUE(MakeBox("Restrict", {}).status().IsInvalidArgument());  // missing param
  EXPECT_TRUE(MakeBox("Sample", {{"probability", "x"}, {"seed", "1"}})
                  .status()
                  .IsParseError());
  EXPECT_TRUE(MakeBox("T", {{"type", "Z"}}).status().IsParseError());
  EXPECT_TRUE(MakeBox("Const", {{"type", "blob"}, {"value", "1"}})
                  .status()
                  .IsParseError());
  EXPECT_TRUE(MakeBox("Stitch", {{"arity", "2"}, {"layout", "diagonal"},
                                 {"columns", "2"}})
                  .status()
                  .IsParseError());
}

TEST(BoxRegistryTest, EveryBoxTypeHasDocumentation) {
  for (const std::string& type : AllBoxTypes()) {
    auto doc = BoxDocumentation(type);
    ASSERT_TRUE(doc.ok()) << type;
    EXPECT_FALSE(doc->empty()) << type;
  }
  EXPECT_TRUE(BoxDocumentation("NoSuchBox").status().IsNotFound());
}

TEST(ApplyBoxTest, SingleRelationEdge) {
  auto candidates = ApplyBoxCandidates({PortType::Relation()});
  EXPECT_NE(std::find(candidates.begin(), candidates.end(), "Restrict"),
            candidates.end());
  EXPECT_NE(std::find(candidates.begin(), candidates.end(), "Replicate"),
            candidates.end());
  EXPECT_NE(std::find(candidates.begin(), candidates.end(), "T"), candidates.end());
  EXPECT_NE(std::find(candidates.begin(), candidates.end(), "Viewer"),
            candidates.end());
  EXPECT_EQ(std::find(candidates.begin(), candidates.end(), "Join"), candidates.end());
}

TEST(ApplyBoxTest, TwoRelationEdges) {
  auto candidates = ApplyBoxCandidates({PortType::Relation(), PortType::Relation()});
  EXPECT_NE(std::find(candidates.begin(), candidates.end(), "Join"), candidates.end());
  EXPECT_NE(std::find(candidates.begin(), candidates.end(), "Overlay"),
            candidates.end());
  EXPECT_NE(std::find(candidates.begin(), candidates.end(), "Stitch"),
            candidates.end());
}

TEST(ApplyBoxTest, GroupEdgeExcludesCompositeOps) {
  auto candidates = ApplyBoxCandidates({PortType::GroupT()});
  EXPECT_EQ(std::find(candidates.begin(), candidates.end(), "Shuffle"),
            candidates.end());
  EXPECT_NE(std::find(candidates.begin(), candidates.end(), "Viewer"),
            candidates.end());
  EXPECT_EQ(std::find(candidates.begin(), candidates.end(), "Restrict"),
            candidates.end());
}

TEST(ApplyBoxTest, ScalarEdgeOnlyGetsT) {
  auto candidates = ApplyBoxCandidates({PortType::Scalar(DataType::kInt)});
  EXPECT_EQ(candidates, (std::vector<std::string>{"T"}));
}

class ProgramIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto table = db::MakeRelation({db::Column{"v", DataType::kInt}},
                                  {{Value::Int(1)}, {Value::Int(2)}, {Value::Int(3)}})
                     .value();
    ASSERT_TRUE(catalog_.RegisterTable("T", table).ok());
  }

  db::Catalog catalog_;
};

TEST_F(ProgramIoTest, RoundTripSimpleProgram) {
  Graph graph;
  std::string table = graph.AddBox(std::make_unique<TableBox>("T"), "src").value();
  std::string restrict = graph.AddBox(
      MakeBox("Restrict", {{"predicate", "v > 1"}}).value(), "flt").value();
  std::string viewer =
      graph.AddBox(std::make_unique<ViewerBox>("main"), "view").value();
  ASSERT_TRUE(graph.Connect(table, 0, restrict, 0).ok());
  ASSERT_TRUE(graph.Connect(restrict, 0, viewer, 0).ok());

  std::string serialized = SerializeProgram(graph).value();
  EXPECT_NE(serialized.find("tioga2-program v1"), std::string::npos);
  EXPECT_NE(serialized.find("box src Table"), std::string::npos);
  EXPECT_NE(serialized.find("edge src:0 flt:0"), std::string::npos);

  Graph loaded = DeserializeProgram(serialized).value();
  EXPECT_EQ(loaded.num_boxes(), 3u);
  EXPECT_EQ(loaded.edges().size(), 2u);
  // Loaded program evaluates identically.
  dataflow::Engine engine(&catalog_);
  auto value = engine.Evaluate(loaded, "flt", 0);
  ASSERT_TRUE(value.ok()) << value.status().ToString();
  auto relation =
      display::AsRelation(std::get<display::Displayable>(*value)).value();
  EXPECT_EQ(relation.num_rows(), 2u);
}

TEST_F(ProgramIoTest, PredicatesWithQuotesSurvive) {
  Graph graph;
  std::string box =
      graph.AddBox(MakeBox("Restrict", {{"predicate", "name = \"LA \\\"x\\\"\""}})
                       .value())
          .value();
  std::string serialized = SerializeProgram(graph).value();
  Graph loaded = DeserializeProgram(serialized).value();
  auto original = graph.GetBox(box).value()->Params();
  auto roundtrip = loaded.GetBox(box).value()->Params();
  EXPECT_EQ(original, roundtrip);
}

TEST_F(ProgramIoTest, EncapsulatedBoxRoundTrips) {
  // Build a program with an encapsulated region and round-trip it.
  Graph region;
  std::string feeder = region.AddBox(std::make_unique<TableBox>("T"), "f").value();
  std::string r1 = region.AddBox(std::make_unique<RestrictBox>("v > 1"), "r1").value();
  ASSERT_TRUE(region.Connect(feeder, 0, r1, 0).ok());
  auto encap = dataflow::EncapsulateSubgraph(region, {"r1"}, {}, "filter").value();

  Graph graph;
  std::string src = graph.AddBox(std::make_unique<TableBox>("T"), "src").value();
  std::string box = graph.AddBox(std::move(encap), "enc").value();
  ASSERT_TRUE(graph.Connect(src, 0, box, 0).ok());

  std::string serialized = SerializeProgram(graph).value();
  EXPECT_NE(serialized.find("encap enc"), std::string::npos);
  EXPECT_NE(serialized.find("InputStub"), std::string::npos);

  Graph loaded = DeserializeProgram(serialized).value();
  dataflow::Engine engine(&catalog_);
  auto value = engine.Evaluate(loaded, "enc", 0);
  ASSERT_TRUE(value.ok()) << value.status().ToString() << "\n" << serialized;
  auto relation =
      display::AsRelation(std::get<display::Displayable>(*value)).value();
  EXPECT_EQ(relation.num_rows(), 2u);
}

TEST_F(ProgramIoTest, HolesSerializeStructurally) {
  Graph region;
  std::string src = region.AddBox(std::make_unique<TableBox>("T"), "f").value();
  std::string hole =
      region.AddBox(std::make_unique<RestrictBox>("v > 0"), "h").value();
  ASSERT_TRUE(region.Connect(src, 0, hole, 0).ok());
  auto encap = dataflow::EncapsulateSubgraph(region, {"h"}, {"h"}, "holey").value();
  Graph graph;
  std::string box = graph.AddBox(std::move(encap), "enc").value();
  std::string serialized = SerializeProgram(graph).value();
  EXPECT_NE(serialized.find("Hole"), std::string::npos);
  Graph loaded = DeserializeProgram(serialized).value();
  auto* reloaded = dynamic_cast<const dataflow::EncapsulatedBox*>(
      *loaded.GetBox("enc"));
  ASSERT_NE(reloaded, nullptr);
  EXPECT_EQ(reloaded->HoleIds().size(), 1u);
  (void)box;
}

TEST_F(ProgramIoTest, MalformedProgramsRejected) {
  EXPECT_TRUE(DeserializeProgram("").status().IsParseError());
  EXPECT_TRUE(DeserializeProgram("not a program").status().IsParseError());
  EXPECT_TRUE(
      DeserializeProgram("tioga2-program v1\nbox x\n").status().IsParseError());
  EXPECT_TRUE(DeserializeProgram("tioga2-program v1\nbogus directive\n")
                  .status()
                  .IsParseError());
  EXPECT_TRUE(DeserializeProgram("tioga2-program v1\nedge a:0\n")
                  .status()
                  .IsParseError());
  EXPECT_TRUE(DeserializeProgram("tioga2-program v1\n}\n").status().IsParseError());
  EXPECT_TRUE(
      DeserializeProgram("tioga2-program v1\nencap e name=\"x\" {\n")
          .status()
          .IsParseError());  // missing close
  // Edges referencing unknown boxes fail at Connect.
  EXPECT_TRUE(DeserializeProgram("tioga2-program v1\nedge a:0 b:0\n")
                  .status()
                  .IsNotFound());
}

TEST_F(ProgramIoTest, CommentsAndBlankLinesIgnored) {
  std::string text =
      "tioga2-program v1\n"
      "# a comment\n"
      "\n"
      "box src Table table=\"T\"\n";
  Graph loaded = DeserializeProgram(text).value();
  EXPECT_EQ(loaded.num_boxes(), 1u);
}

}  // namespace
}  // namespace tioga2::boxes
