// Tests for the boxes-and-arrows graph: type-checked wiring (§2), and the
// §4.1 program-editing rules (Delete Box, Replace Box, T insertion).

#include <gtest/gtest.h>

#include "boxes/composite_boxes.h"
#include "boxes/relational_boxes.h"
#include "dataflow/graph.h"
#include "dataflow/t_box.h"

namespace tioga2::dataflow {
namespace {

using boxes::ProjectBox;
using boxes::RestrictBox;
using boxes::SampleBox;
using boxes::StitchBox;
using boxes::TableBox;
using boxes::ViewerBox;

TEST(GraphTest, AddBoxGeneratesIds) {
  Graph graph;
  std::string a = graph.AddBox(std::make_unique<TableBox>("T")).value();
  std::string b = graph.AddBox(std::make_unique<TableBox>("U")).value();
  EXPECT_NE(a, b);
  EXPECT_TRUE(graph.HasBox(a));
  EXPECT_EQ(graph.num_boxes(), 2u);
  EXPECT_EQ(graph.BoxIds(), (std::vector<std::string>{a, b}));
}

TEST(GraphTest, ExplicitIdsAndCollisions) {
  Graph graph;
  ASSERT_TRUE(graph.AddBox(std::make_unique<TableBox>("T"), "src").ok());
  EXPECT_TRUE(
      graph.AddBox(std::make_unique<TableBox>("U"), "src").status().IsAlreadyExists());
  EXPECT_TRUE(graph.AddBox(nullptr, "x").status().IsInvalidArgument());
  EXPECT_TRUE(graph.GetBox("missing").status().IsNotFound());
}

TEST(GraphTest, ConnectTypeChecks) {
  Graph graph;
  std::string table = graph.AddBox(std::make_unique<TableBox>("T")).value();
  std::string restrict = graph.AddBox(std::make_unique<RestrictBox>("true")).value();
  std::string viewer = graph.AddBox(std::make_unique<ViewerBox>("c")).value();
  // R -> R fine; R -> G (viewer) fine via subtyping.
  EXPECT_TRUE(graph.Connect(table, 0, restrict, 0).ok());
  EXPECT_TRUE(graph.Connect(restrict, 0, viewer, 0).ok());
  // Viewer has no outputs.
  EXPECT_TRUE(graph.Connect(viewer, 0, restrict, 0).IsOutOfRange());
  // Input already wired.
  EXPECT_TRUE(graph.Connect(table, 0, restrict, 0).IsFailedPrecondition());
}

TEST(GraphTest, GroupOutputCannotFeedRelationInput) {
  Graph graph;
  std::string stitch =
      graph.AddBox(std::make_unique<StitchBox>(1, display::GroupLayout::kHorizontal, 1))
          .value();
  std::string restrict = graph.AddBox(std::make_unique<RestrictBox>("true")).value();
  EXPECT_TRUE(graph.Connect(stitch, 0, restrict, 0).IsTypeError());
}

TEST(GraphTest, CycleRejected) {
  Graph graph;
  std::string a = graph.AddBox(std::make_unique<RestrictBox>("true")).value();
  std::string b = graph.AddBox(std::make_unique<RestrictBox>("true")).value();
  ASSERT_TRUE(graph.Connect(a, 0, b, 0).ok());
  EXPECT_TRUE(graph.WouldCreateCycle(b, a));
  EXPECT_TRUE(graph.Connect(b, 0, a, 0).IsFailedPrecondition());
  // Self-loop.
  std::string c = graph.AddBox(std::make_unique<RestrictBox>("true")).value();
  EXPECT_TRUE(graph.Connect(c, 0, c, 0).IsFailedPrecondition());
}

TEST(GraphTest, DisconnectRemovesEdge) {
  Graph graph;
  std::string a = graph.AddBox(std::make_unique<TableBox>("T")).value();
  std::string b = graph.AddBox(std::make_unique<RestrictBox>("true")).value();
  ASSERT_TRUE(graph.Connect(a, 0, b, 0).ok());
  EXPECT_TRUE(graph.IncomingEdge(b, 0).has_value());
  ASSERT_TRUE(graph.Disconnect(b, 0).ok());
  EXPECT_FALSE(graph.IncomingEdge(b, 0).has_value());
  EXPECT_TRUE(graph.Disconnect(b, 0).IsNotFound());
}

TEST(GraphTest, DeleteLeafBoxAllowed) {
  // Rule (1): a box with no outputs connected to other boxes may be deleted.
  Graph graph;
  std::string a = graph.AddBox(std::make_unique<TableBox>("T")).value();
  std::string b = graph.AddBox(std::make_unique<RestrictBox>("true")).value();
  ASSERT_TRUE(graph.Connect(a, 0, b, 0).ok());
  ASSERT_TRUE(graph.DeleteBox(b).ok());
  EXPECT_FALSE(graph.HasBox(b));
  EXPECT_TRUE(graph.edges().empty());
}

TEST(GraphTest, DeleteSplicesSingleInSingleOut) {
  // Rule (2): deleting a R->R box splices its predecessor to its successors.
  Graph graph;
  std::string table = graph.AddBox(std::make_unique<TableBox>("T")).value();
  std::string mid = graph.AddBox(std::make_unique<RestrictBox>("true")).value();
  std::string sink1 = graph.AddBox(std::make_unique<RestrictBox>("true")).value();
  std::string sink2 = graph.AddBox(std::make_unique<RestrictBox>("true")).value();
  ASSERT_TRUE(graph.Connect(table, 0, mid, 0).ok());
  ASSERT_TRUE(graph.Connect(mid, 0, sink1, 0).ok());
  ASSERT_TRUE(graph.Connect(mid, 0, sink2, 0).ok());
  ASSERT_TRUE(graph.DeleteBox(mid).ok());
  EXPECT_EQ(graph.IncomingEdge(sink1, 0)->from_box, table);
  EXPECT_EQ(graph.IncomingEdge(sink2, 0)->from_box, table);
}

TEST(GraphTest, DeleteFeedingMultiPortBoxRejected) {
  // A Table box (0 inputs) feeding another box violates both rules.
  Graph graph;
  std::string table = graph.AddBox(std::make_unique<TableBox>("T")).value();
  std::string sink = graph.AddBox(std::make_unique<RestrictBox>("true")).value();
  ASSERT_TRUE(graph.Connect(table, 0, sink, 0).ok());
  EXPECT_TRUE(graph.DeleteBox(table).IsFailedPrecondition());
  // After removing the edge, deletion is fine.
  ASSERT_TRUE(graph.Disconnect(sink, 0).ok());
  EXPECT_TRUE(graph.DeleteBox(table).ok());
}

TEST(GraphTest, DeleteSpliceNeedsConnectedInput) {
  Graph graph;
  std::string mid = graph.AddBox(std::make_unique<RestrictBox>("true")).value();
  std::string sink = graph.AddBox(std::make_unique<RestrictBox>("true")).value();
  ASSERT_TRUE(graph.Connect(mid, 0, sink, 0).ok());
  // mid's own input is dangling; splicing would leave sink dangling.
  EXPECT_TRUE(graph.DeleteBox(mid).IsFailedPrecondition());
}

TEST(GraphTest, ReplaceBoxChecksSignature) {
  Graph graph;
  std::string box = graph.AddBox(std::make_unique<RestrictBox>("true")).value();
  // Same signature (R -> R): allowed.
  EXPECT_TRUE(graph.ReplaceBox(box, std::make_unique<SampleBox>(0.5, 1)).ok());
  EXPECT_EQ((*graph.GetBox(box))->type_name(), "Sample");
  // Different arity: rejected.
  EXPECT_TRUE(graph.ReplaceBox(box, std::make_unique<TableBox>("T")).IsTypeError());
  EXPECT_TRUE(graph.ReplaceBox("missing", std::make_unique<TableBox>("T")).IsNotFound());
}

TEST(GraphTest, InsertTSplitsEdge) {
  Graph graph;
  std::string table = graph.AddBox(std::make_unique<TableBox>("T")).value();
  std::string sink = graph.AddBox(std::make_unique<RestrictBox>("true")).value();
  ASSERT_TRUE(graph.Connect(table, 0, sink, 0).ok());
  std::string t = graph.InsertT(sink, 0).value();
  EXPECT_EQ((*graph.GetBox(t))->type_name(), "T");
  EXPECT_EQ(graph.IncomingEdge(t, 0)->from_box, table);
  EXPECT_EQ(graph.IncomingEdge(sink, 0)->from_box, t);
  // The T's second output is free for a viewer (§4.1).
  std::string viewer = graph.AddBox(std::make_unique<ViewerBox>("debug")).value();
  EXPECT_TRUE(graph.Connect(t, 1, viewer, 0).ok());
  EXPECT_TRUE(graph.InsertT(sink, 1).status().IsNotFound());  // no such edge
}

TEST(GraphTest, TopologicalOrderRespectsEdges) {
  Graph graph;
  std::string a = graph.AddBox(std::make_unique<TableBox>("T")).value();
  std::string b = graph.AddBox(std::make_unique<RestrictBox>("true")).value();
  std::string c = graph.AddBox(std::make_unique<RestrictBox>("true")).value();
  ASSERT_TRUE(graph.Connect(a, 0, b, 0).ok());
  ASSERT_TRUE(graph.Connect(b, 0, c, 0).ok());
  std::vector<std::string> order = graph.TopologicalOrder().value();
  auto position = [&order](const std::string& id) {
    return std::find(order.begin(), order.end(), id) - order.begin();
  };
  EXPECT_LT(position(a), position(b));
  EXPECT_LT(position(b), position(c));
}

TEST(GraphTest, DanglingInputsReported) {
  Graph graph;
  std::string table = graph.AddBox(std::make_unique<TableBox>("T")).value();
  std::string wired = graph.AddBox(std::make_unique<RestrictBox>("true")).value();
  std::string dangling = graph.AddBox(std::make_unique<RestrictBox>("true")).value();
  ASSERT_TRUE(graph.Connect(table, 0, wired, 0).ok());
  EXPECT_EQ(graph.BoxesWithDanglingInputs(), (std::vector<std::string>{dangling}));
}

TEST(GraphTest, CloneIsDeep) {
  Graph graph;
  std::string a = graph.AddBox(std::make_unique<TableBox>("T")).value();
  std::string b = graph.AddBox(std::make_unique<RestrictBox>("true")).value();
  ASSERT_TRUE(graph.Connect(a, 0, b, 0).ok());
  Graph copy = graph.Clone();
  ASSERT_TRUE(copy.DeleteBox(b).ok());
  EXPECT_TRUE(graph.HasBox(b));  // original untouched
  EXPECT_EQ(graph.edges().size(), 1u);
  EXPECT_TRUE(copy.edges().empty());
}

TEST(GraphTest, ToStringListsBoxesAndEdges) {
  Graph graph;
  std::string a = graph.AddBox(std::make_unique<TableBox>("Stations")).value();
  std::string b = graph.AddBox(std::make_unique<RestrictBox>("true")).value();
  ASSERT_TRUE(graph.Connect(a, 0, b, 0).ok());
  std::string text = graph.ToString();
  EXPECT_NE(text.find("Table(table=Stations)"), std::string::npos);
  EXPECT_NE(text.find("->"), std::string::npos);
}

TEST(PortTypeTest, SubtypingLattice) {
  EXPECT_TRUE(PortType::Connectable(PortType::Relation(), PortType::Relation()));
  EXPECT_TRUE(PortType::Connectable(PortType::Relation(), PortType::CompositeT()));
  EXPECT_TRUE(PortType::Connectable(PortType::Relation(), PortType::GroupT()));
  EXPECT_TRUE(PortType::Connectable(PortType::CompositeT(), PortType::GroupT()));
  EXPECT_FALSE(PortType::Connectable(PortType::CompositeT(), PortType::Relation()));
  EXPECT_FALSE(PortType::Connectable(PortType::GroupT(), PortType::CompositeT()));
}

TEST(PortTypeTest, ScalarRules) {
  PortType i = PortType::Scalar(types::DataType::kInt);
  PortType f = PortType::Scalar(types::DataType::kFloat);
  PortType s = PortType::Scalar(types::DataType::kString);
  EXPECT_TRUE(PortType::Connectable(i, f));  // widening
  EXPECT_FALSE(PortType::Connectable(f, i));
  EXPECT_FALSE(PortType::Connectable(s, f));
  EXPECT_FALSE(PortType::Connectable(i, PortType::Relation()));
  EXPECT_FALSE(PortType::Connectable(PortType::Relation(), i));
}

TEST(PortTypeTest, CoerceBoxValueWidensDisplayables) {
  auto base = db::MakeRelation({db::Column{"v", types::DataType::kInt}},
                               {{types::Value::Int(1)}})
                  .value();
  display::DisplayRelation relation =
      display::DisplayRelation::WithDefaults("R", base).value();
  BoxValue value{display::Displayable(relation)};
  // R -> C.
  auto as_composite = CoerceBoxValue(value, PortType::CompositeT());
  ASSERT_TRUE(as_composite.ok());
  EXPECT_TRUE(std::holds_alternative<display::Composite>(
      std::get<display::Displayable>(*as_composite)));
  // R -> G.
  auto as_group = CoerceBoxValue(value, PortType::GroupT());
  ASSERT_TRUE(as_group.ok());
  EXPECT_TRUE(std::holds_alternative<display::Group>(
      std::get<display::Displayable>(*as_group)));
  // G -> R is rejected statically.
  EXPECT_TRUE(CoerceBoxValue(*as_group, PortType::Relation()).status().IsTypeError());
  // Scalars widen int -> float and reject the reverse.
  BoxValue scalar{types::Value::Int(3)};
  auto widened = CoerceBoxValue(scalar, PortType::Scalar(types::DataType::kFloat));
  ASSERT_TRUE(widened.ok());
  EXPECT_DOUBLE_EQ(AsScalar(*widened)->float_value(), 3.0);
  BoxValue fp{types::Value::Float(3.5)};
  EXPECT_TRUE(CoerceBoxValue(fp, PortType::Scalar(types::DataType::kInt))
                  .status()
                  .IsTypeError());
  // Displayable <-> scalar never coerce.
  EXPECT_TRUE(CoerceBoxValue(value, PortType::Scalar(types::DataType::kInt))
                  .status()
                  .IsTypeError());
  EXPECT_TRUE(AsScalar(value).status().IsTypeError());
  EXPECT_TRUE(AsDisplayable(scalar).status().IsTypeError());
}

TEST(PortTypeTest, StringRoundTrip) {
  for (const PortType& type :
       {PortType::Relation(), PortType::CompositeT(), PortType::GroupT(),
        PortType::Scalar(types::DataType::kInt),
        PortType::Scalar(types::DataType::kDisplay)}) {
    PortType parsed = PortType::Relation();
    ASSERT_TRUE(PortType::FromString(type.ToString(), &parsed)) << type.ToString();
    EXPECT_TRUE(parsed == type);
  }
  PortType unused = PortType::Relation();
  EXPECT_FALSE(PortType::FromString("Q", &unused));
  EXPECT_FALSE(PortType::FromString("scalar:blob", &unused));
}

}  // namespace
}  // namespace tioga2::dataflow
