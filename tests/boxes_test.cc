// Tests for the concrete box library: the Figure 3 database boxes, the
// Figure 5 attribute boxes, and the §6/§7 composite boxes (Overlay, Shuffle,
// Stitch, Replicate, Lift).

#include <gtest/gtest.h>

#include "boxes/attribute_boxes.h"
#include "boxes/composite_boxes.h"
#include "boxes/relational_boxes.h"
#include "dataflow/engine.h"
#include "db/relation.h"

namespace tioga2::boxes {
namespace {

using dataflow::Engine;
using dataflow::Graph;
using db::Column;
using display::Composite;
using display::DisplayRelation;
using display::Group;
using types::DataType;
using types::Value;

class BoxesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto cities =
        db::MakeRelation(
            {Column{"name", DataType::kString}, Column{"lon", DataType::kFloat},
             Column{"lat", DataType::kFloat}, Column{"pop", DataType::kInt}},
            {
                {Value::String("NOLA"), Value::Float(-90.1), Value::Float(30.0),
                 Value::Int(497)},
                {Value::String("BR"), Value::Float(-91.2), Value::Float(30.4),
                 Value::Int(227)},
                {Value::String("SHV"), Value::Float(-93.8), Value::Float(32.5),
                 Value::Int(188)},
            })
            .value();
    ASSERT_TRUE(catalog_.RegisterTable("Cities", cities).ok());
    auto visits = db::MakeRelation({Column{"city", DataType::kString},
                                    Column{"count", DataType::kInt}},
                                   {{Value::String("NOLA"), Value::Int(4)},
                                    {Value::String("SHV"), Value::Int(2)}})
                      .value();
    ASSERT_TRUE(catalog_.RegisterTable("Visits", visits).ok());
  }

  Result<DisplayRelation> EvalRelation(const Graph& graph, const std::string& box,
                                       size_t port = 0) {
    Engine engine(&catalog_);
    TIOGA2_ASSIGN_OR_RETURN(dataflow::BoxValue value, engine.Evaluate(graph, box, port));
    TIOGA2_ASSIGN_OR_RETURN(display::Displayable displayable,
                            dataflow::AsDisplayable(value));
    return display::AsRelation(displayable);
  }

  Result<Group> EvalGroup(const Graph& graph, const std::string& box) {
    Engine engine(&catalog_);
    TIOGA2_ASSIGN_OR_RETURN(dataflow::BoxValue value, engine.Evaluate(graph, box, 0));
    TIOGA2_ASSIGN_OR_RETURN(display::Displayable displayable,
                            dataflow::AsDisplayable(value));
    return display::AsGroup(displayable);
  }

  db::Catalog catalog_;
};

TEST_F(BoxesTest, TableBoxProducesDefaults) {
  Graph graph;
  std::string table = graph.AddBox(std::make_unique<TableBox>("Cities")).value();
  DisplayRelation rel = EvalRelation(graph, table).value();
  EXPECT_EQ(rel.name(), "Cities");
  EXPECT_EQ(rel.num_rows(), 3u);
  EXPECT_EQ(rel.Dimension(), 2u);
}

TEST_F(BoxesTest, ProjectBoxKeepsColumns) {
  Graph graph;
  std::string table = graph.AddBox(std::make_unique<TableBox>("Cities")).value();
  std::string project = graph.AddBox(std::make_unique<ProjectBox>(
                                         std::vector<std::string>{"name", "pop"}))
                            .value();
  ASSERT_TRUE(graph.Connect(table, 0, project, 0).ok());
  DisplayRelation rel = EvalRelation(graph, project).value();
  EXPECT_EQ(rel.base()->schema()->ToString(), "(name:string, pop:int)");
}

TEST_F(BoxesTest, JoinBoxUsesOutputSchemaNames) {
  Graph graph;
  std::string cities = graph.AddBox(std::make_unique<TableBox>("Cities")).value();
  std::string visits = graph.AddBox(std::make_unique<TableBox>("Visits")).value();
  std::string join = graph.AddBox(std::make_unique<JoinBox>("name = city")).value();
  ASSERT_TRUE(graph.Connect(cities, 0, join, 0).ok());
  ASSERT_TRUE(graph.Connect(visits, 0, join, 1).ok());
  DisplayRelation rel = EvalRelation(graph, join).value();
  EXPECT_EQ(rel.num_rows(), 2u);
  EXPECT_TRUE(rel.base()->schema()->HasColumn("count"));
  EXPECT_EQ(rel.name(), "Cities_Visits");
}

TEST_F(BoxesTest, AttributeBoxChain) {
  Graph graph;
  std::string table = graph.AddBox(std::make_unique<TableBox>("Cities")).value();
  std::string add =
      graph.AddBox(std::make_unique<AddAttributeBox>("dbl", "pop * 2")).value();
  std::string scale =
      graph.AddBox(std::make_unique<ScaleAttributeBox>("dbl", 0.5)).value();
  std::string set_x = graph.AddBox(std::make_unique<SetLocationBox>(0, "lon")).value();
  std::string rename = graph.AddBox(std::make_unique<SetNameBox>("pretty")).value();
  ASSERT_TRUE(graph.Connect(table, 0, add, 0).ok());
  ASSERT_TRUE(graph.Connect(add, 0, scale, 0).ok());
  ASSERT_TRUE(graph.Connect(scale, 0, set_x, 0).ok());
  ASSERT_TRUE(graph.Connect(set_x, 0, rename, 0).ok());
  DisplayRelation rel = EvalRelation(graph, rename).value();
  EXPECT_DOUBLE_EQ(rel.AttributeValue(0, "dbl")->AsDouble(), 497.0);
  EXPECT_DOUBLE_EQ(rel.LocationOf(0).value()[0], -90.1);
  EXPECT_EQ(rel.name(), "pretty");
}

TEST_F(BoxesTest, SetRangeBoxSetsElevations) {
  Graph graph;
  std::string table = graph.AddBox(std::make_unique<TableBox>("Cities")).value();
  std::string range = graph.AddBox(std::make_unique<SetRangeBox>(0, 50)).value();
  ASSERT_TRUE(graph.Connect(table, 0, range, 0).ok());
  DisplayRelation rel = EvalRelation(graph, range).value();
  EXPECT_EQ(rel.elevation_range().min, 0);
  EXPECT_EQ(rel.elevation_range().max, 50);
}

TEST_F(BoxesTest, OverlayBoxWarnsOnDimensionMismatch) {
  Graph graph;
  std::string a = graph.AddBox(std::make_unique<TableBox>("Cities")).value();
  std::string b = graph.AddBox(std::make_unique<TableBox>("Visits")).value();
  std::string dim =
      graph.AddBox(std::make_unique<AddLocationDimensionBox>("pop")).value();
  std::string overlay =
      graph.AddBox(std::make_unique<OverlayBox>(std::vector<double>{})).value();
  ASSERT_TRUE(graph.Connect(a, 0, dim, 0).ok());
  ASSERT_TRUE(graph.Connect(dim, 0, overlay, 0).ok());
  ASSERT_TRUE(graph.Connect(b, 0, overlay, 1).ok());
  Engine engine(&catalog_);
  ASSERT_TRUE(engine.Evaluate(graph, overlay, 0).ok());
  ASSERT_EQ(engine.warnings().size(), 1u);
  EXPECT_NE(engine.warnings()[0].find("dimension"), std::string::npos);
}

TEST_F(BoxesTest, OverlayBoxAppliesOffset) {
  Graph graph;
  std::string a = graph.AddBox(std::make_unique<TableBox>("Cities")).value();
  std::string b = graph.AddBox(std::make_unique<TableBox>("Visits")).value();
  std::string overlay =
      graph.AddBox(std::make_unique<OverlayBox>(std::vector<double>{5, -3})).value();
  ASSERT_TRUE(graph.Connect(a, 0, overlay, 0).ok());
  ASSERT_TRUE(graph.Connect(b, 0, overlay, 1).ok());
  Engine engine(&catalog_);
  auto value = engine.Evaluate(graph, overlay, 0).value();
  Composite composite =
      display::AsComposite(std::get<display::Displayable>(value)).value();
  ASSERT_EQ(composite.size(), 2u);
  EXPECT_DOUBLE_EQ(composite.entries()[1].OffsetAt(0), 5);
  EXPECT_DOUBLE_EQ(composite.entries()[1].OffsetAt(1), -3);
}

TEST_F(BoxesTest, ShuffleBoxReordersByName) {
  Graph graph;
  std::string a = graph.AddBox(std::make_unique<TableBox>("Cities")).value();
  std::string b = graph.AddBox(std::make_unique<TableBox>("Visits")).value();
  std::string overlay =
      graph.AddBox(std::make_unique<OverlayBox>(std::vector<double>{})).value();
  std::string shuffle = graph.AddBox(std::make_unique<ShuffleBox>("Cities")).value();
  ASSERT_TRUE(graph.Connect(a, 0, overlay, 0).ok());
  ASSERT_TRUE(graph.Connect(b, 0, overlay, 1).ok());
  ASSERT_TRUE(graph.Connect(overlay, 0, shuffle, 0).ok());
  Engine engine(&catalog_);
  auto value = engine.Evaluate(graph, shuffle, 0).value();
  Composite composite =
      display::AsComposite(std::get<display::Displayable>(value)).value();
  EXPECT_EQ(composite.entries()[1].relation.name(), "Cities");  // moved to top
}

TEST_F(BoxesTest, StitchBoxBuildsGroup) {
  Graph graph;
  std::string a = graph.AddBox(std::make_unique<TableBox>("Cities")).value();
  std::string b = graph.AddBox(std::make_unique<TableBox>("Visits")).value();
  std::string stitch =
      graph.AddBox(std::make_unique<StitchBox>(2, display::GroupLayout::kVertical, 1))
          .value();
  ASSERT_TRUE(graph.Connect(a, 0, stitch, 0).ok());
  ASSERT_TRUE(graph.Connect(b, 0, stitch, 1).ok());
  Group group = EvalGroup(graph, stitch).value();
  EXPECT_EQ(group.size(), 2u);
  EXPECT_EQ(group.layout(), display::GroupLayout::kVertical);
}

TEST_F(BoxesTest, ReplicateBoxPartitionsTabular) {
  Graph graph;
  std::string table = graph.AddBox(std::make_unique<TableBox>("Cities")).value();
  std::string replicate =
      graph.AddBox(std::make_unique<ReplicateBox>(
                       std::vector<std::string>{"pop <= 200", "pop > 200"},
                       std::vector<std::string>{"lat < 31", "lat >= 31"}))
          .value();
  ASSERT_TRUE(graph.Connect(table, 0, replicate, 0).ok());
  Group group = EvalGroup(graph, replicate).value();
  ASSERT_EQ(group.size(), 4u);
  EXPECT_EQ(group.layout(), display::GroupLayout::kTabular);
  EXPECT_EQ(group.tabular_columns(), 2u);
  // Row 0: pop<=200 x {lat<31 (none), lat>=31 (SHV)}.
  EXPECT_EQ(group.members()[0].entries()[0].relation.num_rows(), 0u);
  EXPECT_EQ(group.members()[1].entries()[0].relation.num_rows(), 1u);
  // Row 1: pop>200 x {lat<31 -> NOLA, BR}, {lat>=31 -> none}.
  EXPECT_EQ(group.members()[2].entries()[0].relation.num_rows(), 2u);
  EXPECT_EQ(group.members()[3].entries()[0].relation.num_rows(), 0u);
}

TEST_F(BoxesTest, ReplicateRowsOnlyIsVertical) {
  Graph graph;
  std::string table = graph.AddBox(std::make_unique<TableBox>("Cities")).value();
  std::string replicate = graph.AddBox(std::make_unique<ReplicateBox>(
                                           std::vector<std::string>{"pop <= 200",
                                                                    "pop > 200"},
                                           std::vector<std::string>{}))
                              .value();
  ASSERT_TRUE(graph.Connect(table, 0, replicate, 0).ok());
  Group group = EvalGroup(graph, replicate).value();
  EXPECT_EQ(group.size(), 2u);
  EXPECT_EQ(group.layout(), display::GroupLayout::kVertical);
}

TEST_F(BoxesTest, LiftBoxAppliesInnerOpToCompositeMember) {
  // Overlay Cities and Visits, then Restrict *only Cities* through a Lift —
  // the §2 operator-overloading story.
  Graph graph;
  std::string a = graph.AddBox(std::make_unique<TableBox>("Cities")).value();
  std::string b = graph.AddBox(std::make_unique<TableBox>("Visits")).value();
  std::string overlay =
      graph.AddBox(std::make_unique<OverlayBox>(std::vector<double>{})).value();
  auto inner = std::make_unique<RestrictBox>("pop > 200");
  std::string lift =
      graph.AddBox(std::make_unique<LiftBox>(std::move(inner),
                                             dataflow::PortType::CompositeT(), 0,
                                             "Cities"))
          .value();
  ASSERT_TRUE(graph.Connect(a, 0, overlay, 0).ok());
  ASSERT_TRUE(graph.Connect(b, 0, overlay, 1).ok());
  ASSERT_TRUE(graph.Connect(overlay, 0, lift, 0).ok());
  Engine engine(&catalog_);
  auto value = engine.Evaluate(graph, lift, 0).value();
  Composite composite =
      display::AsComposite(std::get<display::Displayable>(value)).value();
  ASSERT_EQ(composite.size(), 2u);
  EXPECT_EQ(composite.entries()[0].relation.num_rows(), 2u);  // Cities filtered
  EXPECT_EQ(composite.entries()[1].relation.num_rows(), 2u);  // Visits untouched
}

TEST_F(BoxesTest, SwitchBoxOutputsPartition) {
  Graph graph;
  std::string table = graph.AddBox(std::make_unique<TableBox>("Cities")).value();
  std::string sw = graph.AddBox(std::make_unique<SwitchBox>("pop > 200")).value();
  ASSERT_TRUE(graph.Connect(table, 0, sw, 0).ok());
  EXPECT_EQ(EvalRelation(graph, sw, 0)->num_rows(), 2u);
  EXPECT_EQ(EvalRelation(graph, sw, 1)->num_rows(), 1u);
}

TEST_F(BoxesTest, ConstBoxProducesScalar) {
  Graph graph;
  std::string c =
      graph.AddBox(std::make_unique<ConstBox>(DataType::kFloat, "2.5")).value();
  Engine engine(&catalog_);
  auto value = engine.Evaluate(graph, c, 0).value();
  EXPECT_DOUBLE_EQ(dataflow::AsScalar(value)->float_value(), 2.5);
  // Malformed constant text surfaces at fire time.
  std::string bad = graph.AddBox(std::make_unique<ConstBox>(DataType::kInt, "x")).value();
  EXPECT_TRUE(engine.Evaluate(graph, bad, 0).status().IsParseError());
}

TEST_F(BoxesTest, ViewerBoxIsSink) {
  ViewerBox viewer("main");
  EXPECT_TRUE(viewer.OutputTypes().empty());
  EXPECT_EQ(viewer.InputTypes().size(), 1u);
  EXPECT_EQ(viewer.canvas(), "main");
}

TEST_F(BoxesTest, ErrorsPropagateThroughEngine) {
  Graph graph;
  std::string table = graph.AddBox(std::make_unique<TableBox>("Cities")).value();
  std::string bad =
      graph.AddBox(std::make_unique<RestrictBox>("nonexistent > 1")).value();
  ASSERT_TRUE(graph.Connect(table, 0, bad, 0).ok());
  Engine engine(&catalog_);
  EXPECT_TRUE(engine.Evaluate(graph, bad, 0).status().IsNotFound());
}

}  // namespace
}  // namespace tioga2::boxes
