// Tests for runtime::EpochDomain, the epoch-based reclamation facility
// behind the lock-free read paths (DESIGN.md §13): guard pins must block
// reclamation of anything retired while they are live, retirement must
// reclaim after two epoch advances, the slot-exhaustion fallback must block
// advancement rather than admit a race, and the whole scheme must survive a
// multi-threaded torture run (the TSan/ASan passes in scripts/check.sh give
// that run teeth).

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "common/reclaim.h"
#include "runtime/epoch.h"

namespace tioga2::runtime {
namespace {

TEST(EpochDomainTest, RetireWithoutReadersReclaimsAfterTwoAdvances) {
  EpochDomain domain(4);
  std::atomic<int> deleted{0};
  domain.Retire([&deleted] { deleted.fetch_add(1); });
  // Retire drives advancement inline; with no pins live the epoch is free to
  // move, but the object needs the current epoch to reach retire_epoch + 2.
  domain.TryAdvance();
  domain.TryAdvance();
  EXPECT_EQ(deleted.load(), 1);
  EpochDomain::Stats stats = domain.stats();
  EXPECT_EQ(stats.retired, 1u);
  EXPECT_EQ(stats.reclaimed, 1u);
  EXPECT_EQ(stats.pending, 0u);
}

TEST(EpochDomainTest, LiveGuardBlocksReclamation) {
  EpochDomain domain(4);
  std::atomic<int> deleted{0};
  {
    common::ReclamationDomain::Guard guard(&domain);
    domain.Retire([&deleted] { deleted.fetch_add(1); });
    // However hard we push, the pinned slot holds the pre-retire epoch, so
    // the epoch cannot advance twice and the deleter must not run.
    for (int i = 0; i < 16; ++i) domain.TryAdvance();
    EXPECT_EQ(deleted.load(), 0);
    EXPECT_EQ(domain.stats().reclaimed, 0u);
    EXPECT_EQ(domain.stats().pending, 1u);
  }
  domain.TryAdvance();
  domain.TryAdvance();
  EXPECT_EQ(deleted.load(), 1);
  EXPECT_EQ(domain.stats().pending, 0u);
}

TEST(EpochDomainTest, NestedGuardsEachPinIndependently) {
  EpochDomain domain(4);
  std::atomic<int> deleted{0};
  {
    common::ReclamationDomain::Guard outer(&domain);
    {
      common::ReclamationDomain::Guard inner(&domain);
      domain.Retire([&deleted] { deleted.fetch_add(1); });
    }
    // Inner released, outer still pinned: still no reclamation.
    for (int i = 0; i < 8; ++i) domain.TryAdvance();
    EXPECT_EQ(deleted.load(), 0);
  }
  domain.TryAdvance();
  domain.TryAdvance();
  EXPECT_EQ(deleted.load(), 1);
  EXPECT_EQ(domain.stats().pins, 2u);
}

TEST(EpochDomainTest, NullDomainGuardIsANoOp) {
  common::ReclamationDomain::Guard guard(nullptr);  // must not crash
}

TEST(EpochDomainTest, OverflowPinBlocksAdvancementUntilReleased) {
  EpochDomain domain(1);  // one slot: the second pin must overflow
  uint64_t slot_ticket = domain.Pin();
  uint64_t overflow_ticket = domain.Pin();
  EXPECT_EQ(domain.stats().overflow_pins, 1u);

  std::atomic<int> deleted{0};
  domain.Retire([&deleted] { deleted.fetch_add(1); });
  domain.Unpin(slot_ticket);
  // The overflow pin holds the fallback lock shared; TryAdvance try-locks it
  // exclusively and must fail, so nothing can be reclaimed yet.
  for (int i = 0; i < 8; ++i) EXPECT_FALSE(domain.TryAdvance());
  EXPECT_EQ(deleted.load(), 0);

  domain.Unpin(overflow_ticket);
  domain.TryAdvance();
  domain.TryAdvance();
  EXPECT_EQ(deleted.load(), 1);
}

TEST(EpochDomainTest, DestructorRunsPendingDeleters) {
  std::atomic<int> deleted{0};
  {
    EpochDomain domain(4);
    domain.Retire([&deleted] { deleted.fetch_add(1); });
    // No advances: the object is still in limbo when the domain dies.
  }
  EXPECT_EQ(deleted.load(), 1);
}

// The torture case: readers chase a shared atomic pointer under guard pins
// while a writer keeps swapping and retiring the pointee. Any
// reclaim-while-pinned bug is a use-after-free the ASan pass turns into a
// hard failure, and any ordering bug in the pin/advance handshake is a data
// race the TSan pass reports.
TEST(EpochDomainTest, ConcurrentReadersAndRetiringWriterTorture) {
  EpochDomain domain(8);
  struct Payload {
    explicit Payload(uint64_t v) : value(v), check(v ^ 0x5a5a5a5a5a5a5a5aull) {}
    uint64_t value;
    uint64_t check;
  };
  std::atomic<Payload*> shared{new Payload(0)};
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0};

  constexpr int kReaders = 3;
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        common::ReclamationDomain::Guard guard(&domain);
        Payload* p = shared.load(std::memory_order_acquire);
        // The invariant only holds if the payload is not freed under us.
        ASSERT_EQ(p->value ^ 0x5a5a5a5a5a5a5a5aull, p->check);
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  constexpr uint64_t kSwaps = 2000;
  for (uint64_t i = 1; i <= kSwaps; ++i) {
    Payload* fresh = new Payload(i);
    Payload* old = shared.exchange(fresh, std::memory_order_acq_rel);
    domain.Retire([old] { delete old; });
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  // Quiescent now: drive the epoch until the limbo list drains.
  while (domain.stats().pending > 0) ASSERT_TRUE(domain.TryAdvance());
  EpochDomain::Stats stats = domain.stats();
  EXPECT_EQ(stats.retired, kSwaps);
  EXPECT_EQ(stats.reclaimed, kSwaps);
  EXPECT_LE(stats.reclaimed, stats.retired);
  delete shared.load();
}

}  // namespace
}  // namespace tioga2::runtime
