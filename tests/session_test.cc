// Tests for the headless direct-manipulation Session: the Figure 2 program
// operations, undo, viewer canvases, Apply Box menus, and encapsulation
// through the session library.

#include <gtest/gtest.h>

#include "data/generators.h"
#include "ui/session.h"

namespace tioga2::ui {
namespace {

class SessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(
        data::LoadDemoData(&catalog_, /*extra_stations=*/20, /*num_days=*/10, 7).ok());
    session_ = std::make_unique<Session>(&catalog_);
  }

  Result<size_t> CanvasRows(const std::string& canvas) {
    TIOGA2_ASSIGN_OR_RETURN(display::Displayable content,
                            session_->EvaluateCanvas(canvas));
    TIOGA2_ASSIGN_OR_RETURN(display::DisplayRelation relation,
                            display::AsRelation(content));
    return relation.num_rows();
  }

  db::Catalog catalog_;
  std::unique_ptr<Session> session_;
};

TEST_F(SessionTest, MenusListTablesAndBoxes) {
  std::vector<std::string> tables = session_->ListTables();
  EXPECT_NE(std::find(tables.begin(), tables.end(), "Stations"), tables.end());
  EXPECT_NE(std::find(tables.begin(), tables.end(), "Observations"), tables.end());
  EXPECT_GT(session_->ListBoxTypes().size(), 20u);
}

TEST_F(SessionTest, AddTableValidatesCatalog) {
  EXPECT_TRUE(session_->AddTable("Stations").ok());
  EXPECT_TRUE(session_->AddTable("Nope").status().IsNotFound());
}

TEST_F(SessionTest, BuildEvaluateEditLoop) {
  std::string stations = session_->AddTable("Stations").value();
  std::string restrict =
      session_->AddBox("Restrict", {{"predicate", "state = \"LA\""}}).value();
  ASSERT_TRUE(session_->Connect(stations, 0, restrict, 0).ok());
  ASSERT_TRUE(session_->AddViewer(restrict, 0, "main").ok());
  EXPECT_EQ(CanvasRows("main").value(), 15u);
  // Incremental edit: replace the Restrict box; the canvas updates.
  ASSERT_TRUE(session_->ReplaceBox(restrict, "Restrict",
                                   {{"predicate", "state = \"LA\" and altitude < 50"}})
                  .ok());
  EXPECT_LT(CanvasRows("main").value(), 15u);
}

TEST_F(SessionTest, UndoRestoresProgram) {
  std::string stations = session_->AddTable("Stations").value();
  size_t before = session_->graph().num_boxes();
  ASSERT_TRUE(session_->AddBox("Restrict", {{"predicate", "true"}}).ok());
  EXPECT_EQ(session_->graph().num_boxes(), before + 1);
  ASSERT_TRUE(session_->Undo().ok());
  EXPECT_EQ(session_->graph().num_boxes(), before);
  EXPECT_TRUE(session_->graph().HasBox(stations));
}

TEST_F(SessionTest, UndoStackUnwindsMultipleSteps) {
  ASSERT_TRUE(session_->AddTable("Stations").ok());
  ASSERT_TRUE(session_->AddTable("Observations").ok());
  ASSERT_TRUE(session_->Undo().ok());
  ASSERT_TRUE(session_->Undo().ok());
  EXPECT_EQ(session_->graph().num_boxes(), 0u);
  EXPECT_TRUE(session_->Undo().IsFailedPrecondition());
}

TEST_F(SessionTest, FailedOperationsDoNotPolluteUndo) {
  ASSERT_TRUE(session_->AddTable("Stations").ok());
  size_t depth = session_->UndoDepth();
  EXPECT_FALSE(session_->Connect("zzz", 0, "yyy", 0).ok());
  EXPECT_EQ(session_->UndoDepth(), depth);
  EXPECT_FALSE(session_->DeleteBox("zzz").ok());
  EXPECT_EQ(session_->UndoDepth(), depth);
}

TEST_F(SessionTest, DeleteBoxEnforcesRules) {
  std::string stations = session_->AddTable("Stations").value();
  std::string restrict =
      session_->AddBox("Restrict", {{"predicate", "true"}}).value();
  ASSERT_TRUE(session_->Connect(stations, 0, restrict, 0).ok());
  // Table feeds another box: not deletable.
  EXPECT_TRUE(session_->DeleteBox(stations).IsFailedPrecondition());
  // Leaf restrict: deletable.
  EXPECT_TRUE(session_->DeleteBox(restrict).ok());
}

TEST_F(SessionTest, InsertTAllowsDebugViewer) {
  // The §1.1 problem-2 fix: install a viewer on any edge.
  std::string stations = session_->AddTable("Stations").value();
  std::string restrict =
      session_->AddBox("Restrict", {{"predicate", "state = \"LA\""}}).value();
  ASSERT_TRUE(session_->Connect(stations, 0, restrict, 0).ok());
  std::string t = session_->InsertT(restrict, 0).value();
  ASSERT_TRUE(session_->AddViewer(t, 1, "debug").ok());
  ASSERT_TRUE(session_->AddViewer(restrict, 0, "final").ok());
  // The debug canvas sees the unfiltered data, the final one the filtered.
  EXPECT_GT(CanvasRows("debug").value(), CanvasRows("final").value());
}

TEST_F(SessionTest, ApplyBoxCandidatesForEdges) {
  std::string stations = session_->AddTable("Stations").value();
  auto single = session_->ApplyBoxCandidates({{stations, 0}}).value();
  EXPECT_NE(std::find(single.begin(), single.end(), "Restrict"), single.end());
  std::string observations = session_->AddTable("Observations").value();
  auto pair =
      session_->ApplyBoxCandidates({{stations, 0}, {observations, 0}}).value();
  EXPECT_NE(std::find(pair.begin(), pair.end(), "Join"), pair.end());
  EXPECT_TRUE(session_->ApplyBoxCandidates({{stations, 7}}).status().IsOutOfRange());
  EXPECT_TRUE(session_->ApplyBoxCandidates({{"zzz", 0}}).status().IsNotFound());
}

TEST_F(SessionTest, ApplyBoxWiresInputs) {
  std::string stations = session_->AddTable("Stations").value();
  std::string observations = session_->AddTable("Observations").value();
  auto join = session_->ApplyBox("Join", {{"predicate", "station_id = station_id_2"}},
                                 {{stations, 0}, {observations, 0}});
  ASSERT_TRUE(join.ok()) << join.status().ToString();
  EXPECT_EQ(session_->graph().IncomingEdge(*join, 0)->from_box, stations);
  EXPECT_EQ(session_->graph().IncomingEdge(*join, 1)->from_box, observations);
  ASSERT_TRUE(session_->AddViewer(*join, 0, "joined").ok());
  EXPECT_GT(CanvasRows("joined").value(), 0u);
}

TEST_F(SessionTest, ApplyBoxLiftsRelationalOpOntoComposite) {
  // Overlay stations and the map; applying Restrict to the composite edge
  // lifts it onto the named member (§2's operator overloading).
  std::string stations = session_->AddTable("Stations").value();
  std::string map = session_->AddTable("LouisianaMap").value();
  auto overlay =
      session_->ApplyBox("Overlay", {{"offset", ""}}, {{stations, 0}, {map, 0}});
  ASSERT_TRUE(overlay.ok());
  // Without a member selection the system must ask (§2).
  EXPECT_TRUE(session_
                  ->ApplyBox("Restrict", {{"predicate", "state = \"LA\""}},
                             {{*overlay, 0}})
                  .status()
                  .IsFailedPrecondition());
  auto lifted = session_->ApplyBox("Restrict", {{"predicate", "state = \"LA\""}},
                                   {{*overlay, 0}}, "Stations");
  ASSERT_TRUE(lifted.ok()) << lifted.status().ToString();
  EXPECT_EQ(session_->graph().GetBox(*lifted).value()->type_name(), "Lift");
  ASSERT_TRUE(session_->AddViewer(*lifted, 0, "lifted").ok());
  auto content = session_->EvaluateCanvas("lifted");
  ASSERT_TRUE(content.ok()) << content.status().ToString();
  auto composite = display::AsComposite(*content).value();
  ASSERT_EQ(composite.size(), 2u);
  EXPECT_EQ(composite.entries()[0].relation.num_rows(), 15u);  // filtered
  EXPECT_GT(composite.entries()[1].relation.num_rows(), 15u);  // map untouched
}

TEST_F(SessionTest, ApplyBoxRollsBackOnBadWiring) {
  std::string stations = session_->AddTable("Stations").value();
  size_t boxes_before = session_->graph().num_boxes();
  // Join needs two inputs; wiring a viewer output (none) fails cleanly.
  auto bad = session_->ApplyBox("Join", {{"predicate", "a = b"}},
                                {{stations, 0}, {stations, 7}});
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(session_->graph().num_boxes(), boxes_before);
}

TEST_F(SessionTest, SaveAddLoadProgramRoundTrip) {
  std::string stations = session_->AddTable("Stations").value();
  std::string restrict =
      session_->AddBox("Restrict", {{"predicate", "state = \"LA\""}}).value();
  ASSERT_TRUE(session_->Connect(stations, 0, restrict, 0).ok());
  ASSERT_TRUE(session_->AddViewer(restrict, 0, "saved_canvas").ok());
  ASSERT_TRUE(session_->SaveProgram("la_stations").ok());

  // Load replaces the program; the canvas still evaluates afterwards.
  ASSERT_TRUE(session_->LoadProgram("la_stations").ok());
  EXPECT_EQ(CanvasRows("saved_canvas").value(), 15u);
  EXPECT_TRUE(session_->LoadProgram("missing").IsNotFound());

  // AddProgram merges and remaps ids on collision.
  auto mapping = session_->AddProgram("la_stations");
  ASSERT_TRUE(mapping.ok()) << mapping.status().ToString();
  EXPECT_EQ(session_->graph().num_boxes(), 6u);  // two copies of 3 boxes
}

TEST_F(SessionTest, EncapsulateAndReuse) {
  std::string stations = session_->AddTable("Stations").value();
  std::string restrict =
      session_->AddBox("Restrict", {{"predicate", "state = \"LA\""}}).value();
  std::string project =
      session_->AddBox("Project", {{"columns", "name,longitude,latitude"}}).value();
  ASSERT_TRUE(session_->Connect(stations, 0, restrict, 0).ok());
  ASSERT_TRUE(session_->Connect(restrict, 0, project, 0).ok());
  ASSERT_TRUE(session_->Encapsulate({restrict, project}, {}, "la_slice").ok());
  EXPECT_EQ(session_->EncapsulatedNames(), (std::vector<std::string>{"la_slice"}));
  EXPECT_TRUE(session_->Encapsulate({restrict}, {}, "la_slice").IsAlreadyExists());

  std::string instance = session_->InsertEncapsulated("la_slice", {}).value();
  ASSERT_TRUE(session_->Connect(stations, 0, instance, 0).ok());
  ASSERT_TRUE(session_->AddViewer(instance, 0, "sliced").ok());
  EXPECT_EQ(CanvasRows("sliced").value(), 15u);
  EXPECT_TRUE(session_->InsertEncapsulated("ghost", {}).status().IsNotFound());
}

TEST_F(SessionTest, EncapsulateWithHoleFilledAtInsert) {
  std::string stations = session_->AddTable("Stations").value();
  std::string hole = session_->AddBox("Restrict", {{"predicate", "true"}}).value();
  std::string cap =
      session_->AddBox("Project", {{"columns", "name,state"}}).value();
  ASSERT_TRUE(session_->Connect(stations, 0, hole, 0).ok());
  ASSERT_TRUE(session_->Connect(hole, 0, cap, 0).ok());
  ASSERT_TRUE(session_->Encapsulate({hole, cap}, {hole}, "filter_project").ok());

  std::string instance =
      session_
          ->InsertEncapsulated("filter_project",
                               {{"Restrict", {{"predicate", "state = \"TX\""}}}})
          .value();
  ASSERT_TRUE(session_->Connect(stations, 0, instance, 0).ok());
  ASSERT_TRUE(session_->AddViewer(instance, 0, "tx").ok());
  auto content = session_->EvaluateCanvas("tx");
  ASSERT_TRUE(content.ok()) << content.status().ToString();
  auto relation = display::AsRelation(*content).value();
  for (size_t r = 0; r < relation.num_rows(); ++r) {
    EXPECT_EQ(relation.AttributeValue(r, "state")->string_value(), "TX");
  }
}

TEST_F(SessionTest, RemoveViewerUnregistersCanvas) {
  std::string stations = session_->AddTable("Stations").value();
  std::string viewer_box = session_->AddViewer(stations, 0, "gone").value();
  ASSERT_TRUE(session_->EvaluateCanvas("gone").ok());
  ASSERT_TRUE(session_->RemoveViewer(viewer_box).ok());
  EXPECT_FALSE(session_->graph().HasBox(viewer_box));
  EXPECT_TRUE(session_->EvaluateCanvas("gone").status().IsNotFound());
  // Only viewer boxes qualify.
  EXPECT_TRUE(session_->RemoveViewer(stations).IsInvalidArgument());
  EXPECT_TRUE(session_->RemoveViewer("zzz").IsNotFound());
}

TEST_F(SessionTest, NewProgramClearsAndIsUndoable) {
  ASSERT_TRUE(session_->AddTable("Stations").ok());
  session_->NewProgram();
  EXPECT_EQ(session_->graph().num_boxes(), 0u);
  ASSERT_TRUE(session_->Undo().ok());
  EXPECT_EQ(session_->graph().num_boxes(), 1u);
}

TEST_F(SessionTest, OverlayWarningSurfaces) {
  std::string stations = session_->AddTable("Stations").value();
  std::string slider =
      session_->AddBox("AddLocationDimension", {{"attr", "altitude"}}).value();
  std::string map = session_->AddTable("LouisianaMap").value();
  std::string overlay = session_->AddBox("Overlay", {{"offset", ""}}).value();
  ASSERT_TRUE(session_->Connect(stations, 0, slider, 0).ok());
  ASSERT_TRUE(session_->Connect(slider, 0, overlay, 0).ok());
  ASSERT_TRUE(session_->Connect(map, 0, overlay, 1).ok());
  ASSERT_TRUE(session_->AddViewer(overlay, 0, "warned").ok());
  ASSERT_TRUE(session_->EvaluateCanvas("warned").ok());
  ASSERT_EQ(session_->LastWarnings().size(), 1u);
  EXPECT_NE(session_->LastWarnings()[0].find("dimension"), std::string::npos);
}

}  // namespace
}  // namespace tioga2::ui
