// Tests for the extended-relation displayable type R (§2, §5): defaults,
// computed attributes, the Figure 5 editing operations, and the relational
// operations over extended relations.

#include <gtest/gtest.h>

#include "display/display_relation.h"

namespace tioga2::display {
namespace {

using db::Column;
using db::MakeRelation;
using types::DataType;
using types::Value;

DisplayRelation Cities() {
  auto base = MakeRelation(
                  {Column{"name", DataType::kString}, Column{"lon", DataType::kFloat},
                   Column{"lat", DataType::kFloat}, Column{"pop", DataType::kInt}},
                  {
                      {Value::String("NEW ORLEANS"), Value::Float(-90.08),
                       Value::Float(29.95), Value::Int(497)},
                      {Value::String("BATON ROUGE"), Value::Float(-91.15),
                       Value::Float(30.45), Value::Int(227)},
                      {Value::String("SHREVEPORT"), Value::Float(-93.75),
                       Value::Float(32.52), Value::Int(188)},
                  })
                  .value();
  return DisplayRelation::WithDefaults("Cities", base).value();
}

TEST(DisplayRelationTest, DefaultsPerSection52) {
  DisplayRelation rel = Cities();
  EXPECT_EQ(rel.Dimension(), 2u);
  EXPECT_EQ(rel.location_names(), (std::vector<std::string>{"_x", "_y"}));
  EXPECT_EQ(rel.display_name(), "_display");
  // x = 0, y = sequence number.
  EXPECT_EQ(rel.LocationOf(0).value(), (std::vector<double>{0, 0}));
  EXPECT_EQ(rel.LocationOf(2).value(), (std::vector<double>{0, 2}));
  // Default display: one text drawable per stored field, side by side.
  auto display = rel.DisplayOf(1).value();
  ASSERT_EQ(display->size(), 4u);
  EXPECT_EQ((*display)[0].kind, draw::DrawableKind::kText);
  EXPECT_NE((*display)[0].text.find("BATON ROUGE"), std::string::npos);
  EXPECT_LT((*display)[0].offset_x, (*display)[1].offset_x);
}

TEST(DisplayRelationTest, ReservedNamesRejected) {
  auto base = MakeRelation({Column{"_x", DataType::kFloat}}, {}).value();
  EXPECT_TRUE(DisplayRelation::WithDefaults("bad", base).status().IsInvalidArgument());
}

TEST(DisplayRelationTest, StoredAttributeAccess) {
  DisplayRelation rel = Cities();
  EXPECT_EQ(rel.AttributeValue(0, "name")->string_value(), "NEW ORLEANS");
  EXPECT_DOUBLE_EQ(rel.AttributeValue(2, "lon")->float_value(), -93.75);
  EXPECT_TRUE(rel.AttributeValue(0, "missing").status().IsNotFound());
  EXPECT_TRUE(rel.AttributeValue(99, "name").status().IsOutOfRange());
}

TEST(DisplayRelationTest, AddAttributeComputes) {
  DisplayRelation rel = Cities().AddAttribute("pop_k", "pop * 1000").value();
  EXPECT_EQ(rel.AttributeValue(0, "pop_k")->int_value(), 497000);
  const Attribute* attr = rel.FindAttribute("pop_k");
  ASSERT_NE(attr, nullptr);
  EXPECT_EQ(attr->type, DataType::kInt);
  EXPECT_EQ(attr->source, AttrSource::kExpr);
}

TEST(DisplayRelationTest, AddAttributeValidation) {
  EXPECT_TRUE(Cities().AddAttribute("name", "1").status().IsAlreadyExists());
  EXPECT_TRUE(Cities().AddAttribute("", "1").status().IsInvalidArgument());
  EXPECT_TRUE(Cities().AddAttribute("bad", "nosuch + 1").status().IsNotFound());
}

TEST(DisplayRelationTest, ComputedAttributesChain) {
  DisplayRelation rel = Cities()
                            .AddAttribute("a", "pop * 2")
                            .value()
                            .AddAttribute("b", "a + 1")
                            .value();
  EXPECT_EQ(rel.AttributeValue(1, "b")->int_value(), 455);
}

TEST(DisplayRelationTest, CyclicDefinitionDetected) {
  DisplayRelation rel = Cities().AddAttribute("a", "pop").value();
  rel = rel.SetAttribute("a", "a + 1").value();  // self-reference
  EXPECT_TRUE(rel.AttributeValue(0, "a").status().IsFailedPrecondition());
}

TEST(DisplayRelationTest, SetAttributeShadowsStored) {
  DisplayRelation rel = Cities().SetAttribute("pop", "pop").value();
  // The stored column is shadowed by a computed copy referencing... itself:
  // references bind to the *stored* column at compile time, so this reads
  // the stored value, not a cycle.
  EXPECT_EQ(rel.AttributeValue(0, "pop")->int_value(), 497);
  rel = Cities().SetAttribute("pop", "42").value();
  EXPECT_EQ(rel.AttributeValue(0, "pop")->int_value(), 42);
}

TEST(DisplayRelationTest, RemoveAttributeRules) {
  DisplayRelation rel = Cities().AddAttribute("tmp", "1").value();
  EXPECT_TRUE(rel.RemoveAttribute("tmp").ok());
  // Protected: designated location dims and the active display (§5.3).
  EXPECT_TRUE(Cities().RemoveAttribute("_x").status().IsFailedPrecondition());
  EXPECT_TRUE(Cities().RemoveAttribute("_display").status().IsFailedPrecondition());
  // Referenced attributes cannot be removed.
  DisplayRelation chained = Cities()
                                .AddAttribute("a", "pop")
                                .value()
                                .AddAttribute("b", "a + 1")
                                .value();
  EXPECT_TRUE(chained.RemoveAttribute("a").status().IsFailedPrecondition());
  EXPECT_TRUE(chained.RemoveAttribute("b").ok());
}

TEST(DisplayRelationTest, SwapAttributesExchangesNames) {
  DisplayRelation rel = Cities()
                            .SetLocationAttribute(0, "lon")
                            .value()
                            .SetLocationAttribute(1, "lat")
                            .value();
  // Swapping lon and lat "rotates the canvas" (§5.3).
  DisplayRelation swapped = rel.SwapAttributes("lon", "lat").value();
  auto loc = swapped.LocationOf(0).value();
  EXPECT_DOUBLE_EQ(loc[0], 29.95);   // x now reads latitude values
  EXPECT_DOUBLE_EQ(loc[1], -90.08);
  EXPECT_TRUE(rel.SwapAttributes("lon", "name").status().IsTypeError());
  EXPECT_TRUE(rel.SwapAttributes("lon", "missing").status().IsNotFound());
}

TEST(DisplayRelationTest, ScaleAndTranslate) {
  DisplayRelation rel = Cities().ScaleAttribute("pop", 2.0).value();
  EXPECT_DOUBLE_EQ(rel.AttributeValue(0, "pop")->AsDouble(), 994.0);
  rel = rel.TranslateAttribute("pop", 6.0).value();
  EXPECT_DOUBLE_EQ(rel.AttributeValue(0, "pop")->AsDouble(), 1000.0);
  // Scale after translate multiplies the accumulated translation too:
  // (v * 2 + 6) * 10 = v * 20 + 60.
  rel = rel.ScaleAttribute("pop", 10.0).value();
  EXPECT_DOUBLE_EQ(rel.AttributeValue(0, "pop")->AsDouble(), 497.0 * 20 + 60);
  EXPECT_TRUE(Cities().ScaleAttribute("name", 2.0).status().IsTypeError());
  EXPECT_TRUE(Cities().TranslateAttribute("name", 2.0).status().IsTypeError());
}

TEST(DisplayRelationTest, TransformsVisibleThroughReferences) {
  // A computed attribute referencing a scaled stored attribute sees the
  // scaled value.
  DisplayRelation rel = Cities()
                            .AddAttribute("double_pop", "pop * 2")
                            .value()
                            .ScaleAttribute("pop", 10.0)
                            .value();
  EXPECT_DOUBLE_EQ(rel.AttributeValue(0, "double_pop")->AsDouble(), 9940.0);
}

TEST(DisplayRelationTest, CombineDisplays) {
  DisplayRelation rel = Cities()
                            .AddAttribute("dot", "circle(2)")
                            .value()
                            .AddAttribute("label", "text(name, 10)")
                            .value()
                            .CombineDisplays("both", "dot", "label", 0, -12)
                            .value();
  auto combined = rel.AttributeValue(0, "both").value();
  ASSERT_TRUE(combined.is_display());
  ASSERT_EQ(combined.display_value()->size(), 2u);
  EXPECT_DOUBLE_EQ((*combined.display_value())[1].offset_y, -12);
  EXPECT_TRUE(
      Cities().CombineDisplays("x2", "_display", "name", 0, 0).status().IsTypeError());
  EXPECT_TRUE(
      Cities().CombineDisplays("name", "_display", "_display", 0, 0).status()
          .IsAlreadyExists());
}

TEST(DisplayRelationTest, LocationDesignation) {
  DisplayRelation rel = Cities()
                            .SetLocationAttribute(0, "lon")
                            .value()
                            .SetLocationAttribute(1, "lat")
                            .value()
                            .AddLocationDimension("pop")
                            .value();
  EXPECT_EQ(rel.Dimension(), 3u);
  auto loc = rel.LocationOf(0).value();
  EXPECT_DOUBLE_EQ(loc[0], -90.08);
  EXPECT_DOUBLE_EQ(loc[1], 29.95);
  EXPECT_DOUBLE_EQ(loc[2], 497.0);
  // Slider dims can be removed, x and y cannot.
  EXPECT_EQ(rel.RemoveLocationDimension(2).value().Dimension(), 2u);
  EXPECT_TRUE(rel.RemoveLocationDimension(0).status().IsFailedPrecondition());
  EXPECT_TRUE(rel.RemoveLocationDimension(9).status().IsOutOfRange());
  EXPECT_TRUE(Cities().SetLocationAttribute(0, "name").status().IsTypeError());
  EXPECT_TRUE(Cities().SetLocationAttribute(5, "lon").status().IsOutOfRange());
  EXPECT_TRUE(Cities().AddLocationDimension("name").status().IsTypeError());
}

TEST(DisplayRelationTest, AlternativeDisplays) {
  DisplayRelation rel = Cities().AddAttribute("alt", "circle(1)").value();
  EXPECT_EQ(rel.AlternativeDisplays(),
            (std::vector<std::string>{"_display", "alt"}));
  rel = rel.SetDisplayAttribute("alt").value();
  EXPECT_EQ(rel.display_name(), "alt");
  EXPECT_EQ((*rel.DisplayOf(0).value())[0].kind, draw::DrawableKind::kCircle);
  EXPECT_TRUE(Cities().SetDisplayAttribute("pop").status().IsTypeError());
  EXPECT_TRUE(Cities().SetDisplayAttribute("zzz").status().IsNotFound());
}

TEST(DisplayRelationTest, ElevationRange) {
  DisplayRelation rel = Cities().SetElevationRange(2, 10);
  EXPECT_TRUE(rel.elevation_range().Contains(5));
  EXPECT_FALSE(rel.elevation_range().Contains(11));
  // Reversed bounds normalize.
  rel = Cities().SetElevationRange(10, 2);
  EXPECT_EQ(rel.elevation_range().min, 2);
  // Default range is the whole top side: [0, +inf).
  EXPECT_TRUE(Cities().elevation_range().Contains(1e12));
  EXPECT_TRUE(Cities().elevation_range().Contains(0));
  EXPECT_FALSE(Cities().elevation_range().Contains(-1e-9));
}

TEST(DisplayRelationTest, RestrictOverComputedAttributes) {
  DisplayRelation rel = Cities().AddAttribute("big", "pop > 200").value();
  DisplayRelation filtered = rel.Restrict("big").value();
  EXPECT_EQ(filtered.num_rows(), 2u);
  // Attributes and designations survive.
  EXPECT_NE(filtered.FindAttribute("big"), nullptr);
  EXPECT_TRUE(rel.Restrict("pop").status().IsTypeError());
}

TEST(DisplayRelationTest, ProjectRemapsComputedReferences) {
  DisplayRelation rel = Cities().AddAttribute("dbl", "pop * 2").value();
  DisplayRelation projected = rel.Project({"pop", "name"}).value();
  // "pop" moved from stored index 3 to 0; the computed def must follow.
  EXPECT_EQ(projected.AttributeValue(0, "dbl")->int_value(), 994);
  EXPECT_EQ(projected.base()->schema()->ToString(), "(pop:int, name:string)");
  EXPECT_EQ(projected.AttributeValue(0, "name")->string_value(), "NEW ORLEANS");
}

TEST(DisplayRelationTest, ProjectDroppingReferencedColumnFails) {
  DisplayRelation rel = Cities().AddAttribute("dbl", "pop * 2").value();
  EXPECT_TRUE(rel.Project({"name"}).status().IsFailedPrecondition());
}

TEST(DisplayRelationTest, ProjectDroppingDesignatedAttributeFails) {
  DisplayRelation rel = Cities().SetLocationAttribute(0, "lon").value();
  EXPECT_TRUE(rel.Project({"name"}).status().IsFailedPrecondition());
  // Dropping an undesignated, unreferenced stored column is fine.
  EXPECT_TRUE(rel.Project({"lon", "name"}).ok());
}

TEST(DisplayRelationTest, SampleKeepsAttributes) {
  DisplayRelation rel = Cities().AddAttribute("dbl", "pop * 2").value();
  DisplayRelation sampled = rel.Sample(1.0, 7).value();
  EXPECT_EQ(sampled.num_rows(), 3u);
  EXPECT_NE(sampled.FindAttribute("dbl"), nullptr);
  EXPECT_EQ(rel.Sample(0.0, 7).value().num_rows(), 0u);
}

TEST(DisplayRelationTest, WithBaseChecksSchema) {
  DisplayRelation rel = Cities();
  EXPECT_TRUE(rel.WithBase(rel.base()).ok());
  auto other = MakeRelation({Column{"v", DataType::kInt}}, {}).value();
  EXPECT_TRUE(rel.WithBase(other).status().IsTypeError());
}

TEST(DisplayRelationTest, NullLocationIsError) {
  auto base = MakeRelation({Column{"x", DataType::kFloat}}, {{Value::Null()}}).value();
  DisplayRelation rel = DisplayRelation::WithDefaults("N", base)
                            .value()
                            .SetLocationAttribute(0, "x")
                            .value();
  EXPECT_TRUE(rel.LocationOf(0).status().IsInvalidArgument());
}

TEST(DisplayRelationTest, ToStringShowsComputedValues) {
  std::string text = Cities().AddAttribute("dbl", "pop * 2").value().ToString();
  EXPECT_NE(text.find("dbl"), std::string::npos);
  EXPECT_NE(text.find("994"), std::string::npos);
}

}  // namespace
}  // namespace tioga2::display
