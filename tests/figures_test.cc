// End-to-end reproductions of the paper's Figures 7-11, built through the
// Session exactly as the paper's user would build them, then rendered and
// asserted on. (Figures 1 and 4 live in integration_pipeline_test.cc.)

#include <gtest/gtest.h>

#include "tioga2/environment.h"

namespace tioga2 {
namespace {

class FiguresTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(env_.LoadDemoData(/*extra_stations=*/50, /*num_days=*/730).ok());
  }

  /// Builds the Figure 4 station scatter ending at box `out`; returns the
  /// final box id.
  std::string BuildStationScatter() {
    ui::Session& session = env_.session();
    std::string stations = session.AddTable("Stations").value();
    std::string restrict =
        session.AddBox("Restrict", {{"predicate", "state = \"LA\""}}).value();
    std::string set_x =
        session.AddBox("SetLocation", {{"dim", "0"}, {"attr", "longitude"}}).value();
    std::string set_y =
        session.AddBox("SetLocation", {{"dim", "1"}, {"attr", "latitude"}}).value();
    std::string slider =
        session.AddBox("AddLocationDimension", {{"attr", "altitude"}}).value();
    EXPECT_TRUE(session.Connect(stations, 0, restrict, 0).ok());
    EXPECT_TRUE(session.Connect(restrict, 0, set_x, 0).ok());
    EXPECT_TRUE(session.Connect(set_x, 0, set_y, 0).ok());
    EXPECT_TRUE(session.Connect(set_y, 0, slider, 0).ok());
    return slider;
  }

  /// The Louisiana map relation displayed as line segments.
  std::string BuildMapBranch() {
    ui::Session& session = env_.session();
    std::string map = session.AddTable("LouisianaMap").value();
    std::string set_x = session.AddBox("SetLocation", {{"dim", "0"}, {"attr", "x"}}).value();
    std::string set_y = session.AddBox("SetLocation", {{"dim", "1"}, {"attr", "y"}}).value();
    std::string lines =
        session.AddBox("AddAttribute",
                       {{"name", "seg"}, {"definition", "line(dx, dy, \"#808080\")"}})
            .value();
    std::string set_display = session.AddBox("SetDisplay", {{"attr", "seg"}}).value();
    std::string name = session.AddBox("SetName", {{"name", "Map"}}).value();
    EXPECT_TRUE(session.Connect(map, 0, set_x, 0).ok());
    EXPECT_TRUE(session.Connect(set_x, 0, set_y, 0).ok());
    EXPECT_TRUE(session.Connect(set_y, 0, lines, 0).ok());
    EXPECT_TRUE(session.Connect(lines, 0, set_display, 0).ok());
    EXPECT_TRUE(session.Connect(set_display, 0, name, 0).ok());
    return name;
  }

  Environment env_;
};

TEST_F(FiguresTest, Figure7DrilldownOverlayWithRanges) {
  ui::Session& session = env_.session();
  std::string scatter = BuildStationScatter();

  // High-elevation display: just circles (visible above elevation 2).
  std::string circles =
      session.AddBox("AddAttribute",
                     {{"name", "c"}, {"definition", "circle(0.05, \"#c81e1e\", true)"}})
          .value();
  std::string circles_display = session.AddBox("SetDisplay", {{"attr", "c"}}).value();
  std::string circles_range =
      session.AddBox("SetRange", {{"min", "2"}, {"max", "1000"}}).value();
  std::string circles_name = session.AddBox("SetName", {{"name", "Dots"}}).value();
  ASSERT_TRUE(session.Connect(scatter, 0, circles, 0).ok());
  ASSERT_TRUE(session.Connect(circles, 0, circles_display, 0).ok());
  ASSERT_TRUE(session.Connect(circles_display, 0, circles_range, 0).ok());
  ASSERT_TRUE(session.Connect(circles_range, 0, circles_name, 0).ok());

  // Low-elevation display: circles plus names (visible at or below 2) —
  // "station names disappear at high elevations, where they would be
  // illegible" (§6.1).
  std::string t = session.InsertT(circles, 0).value();
  std::string labeled =
      session
          .AddBox("AddAttribute",
                  {{"name", "l"},
                   {"definition",
                    "circle(0.05, \"#c81e1e\", true) + offset(text(name, 0.1), -0.2, "
                    "-0.2)"}})
          .value();
  std::string labeled_display = session.AddBox("SetDisplay", {{"attr", "l"}}).value();
  std::string labeled_range =
      session.AddBox("SetRange", {{"min", "0"}, {"max", "2"}}).value();
  std::string labeled_name = session.AddBox("SetName", {{"name", "Labels"}}).value();
  ASSERT_TRUE(session.Connect(t, 1, labeled, 0).ok());
  ASSERT_TRUE(session.Connect(labeled, 0, labeled_display, 0).ok());
  ASSERT_TRUE(session.Connect(labeled_display, 0, labeled_range, 0).ok());
  ASSERT_TRUE(session.Connect(labeled_range, 0, labeled_name, 0).ok());

  // Overlay: map + dots + labels.
  std::string map = BuildMapBranch();
  std::string overlay1 = session.AddBox("Overlay", {{"offset", ""}}).value();
  std::string overlay2 = session.AddBox("Overlay", {{"offset", ""}}).value();
  ASSERT_TRUE(session.Connect(map, 0, overlay1, 0).ok());
  ASSERT_TRUE(session.Connect(circles_name, 0, overlay1, 1).ok());
  ASSERT_TRUE(session.Connect(overlay1, 0, overlay2, 0).ok());
  ASSERT_TRUE(session.Connect(labeled_name, 0, overlay2, 1).ok());
  ASSERT_TRUE(session.AddViewer(overlay2, 0, "fig7").ok());

  // The §6.1 dimension-mismatch warning fires (map is 2-D, stations 3-D).
  ASSERT_TRUE(session.EvaluateCanvas("fig7").ok());
  EXPECT_FALSE(session.LastWarnings().empty());

  auto viewer = env_.GetViewer("fig7");
  ASSERT_TRUE(viewer.ok()) << viewer.status().ToString();

  // High elevation: dots and map visible, labels culled.
  (*viewer)->mutable_camera()->MoveTo(-91.5, 31.0);
  (*viewer)->mutable_camera()->SetElevation(5.0);
  auto high = env_.RenderViewer(*viewer, 640, 480, "");
  ASSERT_TRUE(high.ok()) << high.status().ToString();
  EXPECT_EQ(high->relations_skipped, 1u);  // Labels out of range
  EXPECT_GT(high->tuples_drawn, 15u);      // map segments + 15 dots

  // Drill down below elevation 2: labels appear, dots disappear.
  (*viewer)->mutable_camera()->SetElevation(1.5);
  auto low = env_.RenderViewer(*viewer, 640, 480, "");
  ASSERT_TRUE(low.ok());
  EXPECT_EQ(low->relations_skipped, 1u);  // Dots now out of range

  // Elevation map model reflects the three members (§6.1).
  auto bars = (*viewer)->ElevationMap(0).value();
  ASSERT_EQ(bars.size(), 3u);
  EXPECT_EQ(bars[0].relation_name, "Map");
  EXPECT_EQ(bars[1].relation_name, "Dots");
  EXPECT_EQ(bars[2].relation_name, "Labels");
  EXPECT_DOUBLE_EQ(bars[1].min_elevation, 2.0);
  EXPECT_DOUBLE_EQ(bars[2].max_elevation, 2.0);
}

TEST_F(FiguresTest, Figure8WormholesToTemperatureCanvas) {
  ui::Session& session = env_.session();

  // Destination: temperature vs time for all stations.
  std::string obs = session.AddTable("Observations").value();
  std::string time_x =
      session.AddBox("AddAttribute",
                     {{"name", "t"}, {"definition", "float(days(obs_date))"}})
          .value();
  std::string set_x = session.AddBox("SetLocation", {{"dim", "0"}, {"attr", "t"}}).value();
  std::string set_y =
      session.AddBox("SetLocation", {{"dim", "1"}, {"attr", "temperature"}}).value();
  std::string dots =
      session.AddBox("AddAttribute", {{"name", "d"}, {"definition", "point(\"#1e46c8\")"}})
          .value();
  std::string set_display = session.AddBox("SetDisplay", {{"attr", "d"}}).value();
  ASSERT_TRUE(session.Connect(obs, 0, time_x, 0).ok());
  ASSERT_TRUE(session.Connect(time_x, 0, set_x, 0).ok());
  ASSERT_TRUE(session.Connect(set_x, 0, set_y, 0).ok());
  ASSERT_TRUE(session.Connect(set_y, 0, dots, 0).ok());
  ASSERT_TRUE(session.Connect(dots, 0, set_display, 0).ok());
  ASSERT_TRUE(session.AddViewer(set_display, 0, "temps").ok());

  // Source: stations whose display is a wormhole into "temps", initially
  // positioned at the station's own data (x = first day, y = 60F).
  std::string scatter = BuildStationScatter();
  std::string holes =
      session
          .AddBox("AddAttribute",
                  {{"name", "w"},
                   {"definition",
                    "viewer(0.5, 0.5, \"temps\", 5480.0, 60.0, 80.0)"}})
          .value();
  std::string holes_display = session.AddBox("SetDisplay", {{"attr", "w"}}).value();
  ASSERT_TRUE(session.Connect(scatter, 0, holes, 0).ok());
  ASSERT_TRUE(session.Connect(holes, 0, holes_display, 0).ok());
  ASSERT_TRUE(session.AddViewer(holes_display, 0, "fig8").ok());

  auto viewer = env_.GetViewer("fig8");
  ASSERT_TRUE(viewer.ok()) << viewer.status().ToString();
  // Render with nested wormhole canvases.
  (*viewer)->mutable_camera()->MoveTo(-90.0, 30.1);
  (*viewer)->mutable_camera()->SetElevation(2.0);
  auto stats = env_.RenderViewer(*viewer, 400, 400, "");
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GT(stats->wormholes_rendered, 0u);

  // Fly through the New Orleans wormhole: descend over it.
  (*viewer)->mutable_camera()->MoveTo(-90.08 + 0.25, 29.95 + 0.25);
  (*viewer)->mutable_camera()->SetElevation(0.5);
  auto passed = (*viewer)->TryPassThrough(/*pass_elevation=*/1.0);
  ASSERT_TRUE(passed.ok()) << passed.status().ToString();
  EXPECT_TRUE(*passed);
  EXPECT_EQ((*viewer)->canvas_name(), "temps");
  EXPECT_DOUBLE_EQ((*viewer)->camera().elevation(), 80.0);
  ASSERT_EQ((*viewer)->travel_history().size(), 1u);
  EXPECT_EQ((*viewer)->travel_history()[0].canvas_name, "fig8");

  // The rear view mirror renders (§6.3) and travel back works.
  render::Framebuffer mirror(200, 200, draw::kWhite);
  render::RasterSurface mirror_surface(&mirror);
  EXPECT_TRUE((*viewer)->RenderRearView(&mirror_surface).ok());
  EXPECT_TRUE((*viewer)->TravelBack().value());
  EXPECT_EQ((*viewer)->canvas_name(), "fig8");
}

TEST_F(FiguresTest, Figure9MagnifyingGlassAlternativeDisplay) {
  ui::Session& session = env_.session();
  std::string obs = session.AddTable("Observations").value();
  std::string one_station =
      session.AddBox("Restrict", {{"predicate", "station_id = 1"}}).value();
  std::string time_x =
      session.AddBox("AddAttribute",
                     {{"name", "t"}, {"definition", "float(days(obs_date))"}})
          .value();
  std::string set_x = session.AddBox("SetLocation", {{"dim", "0"}, {"attr", "t"}}).value();
  std::string set_y =
      session.AddBox("SetLocation", {{"dim", "1"}, {"attr", "temperature"}}).value();
  // Main display: temperature points; alternative: precipitation bars, the
  // §7.2 Figure 9 setup (switched inside the glass via Swap/SetDisplay).
  std::string temp_dots =
      session.AddBox("AddAttribute",
                     {{"name", "temp_d"}, {"definition", "point(\"#c81e1e\")"}})
          .value();
  std::string precip_bars =
      session
          .AddBox("AddAttribute",
                  {{"name", "precip_d"},
                   {"definition",
                    "rect(0.8, precipitation * 20.0, \"#1e46c8\", true)"}})
          .value();
  std::string set_display = session.AddBox("SetDisplay", {{"attr", "temp_d"}}).value();
  ASSERT_TRUE(session.Connect(obs, 0, one_station, 0).ok());
  ASSERT_TRUE(session.Connect(one_station, 0, time_x, 0).ok());
  ASSERT_TRUE(session.Connect(time_x, 0, set_x, 0).ok());
  ASSERT_TRUE(session.Connect(set_x, 0, set_y, 0).ok());
  ASSERT_TRUE(session.Connect(set_y, 0, temp_dots, 0).ok());
  ASSERT_TRUE(session.Connect(temp_dots, 0, precip_bars, 0).ok());
  ASSERT_TRUE(session.Connect(precip_bars, 0, set_display, 0).ok());
  ASSERT_TRUE(session.AddViewer(set_display, 0, "fig9").ok());

  auto viewer = env_.GetViewer("fig9");
  ASSERT_TRUE(viewer.ok()) << viewer.status().ToString();
  ASSERT_TRUE((*viewer)->FitContent(600, 400).ok());
  viewer::MagnifyingGlass glass;
  glass.rect = render::DeviceRect{200, 100, 200, 200};
  glass.zoom = 3.0;
  glass.display_attribute = "precip_d";
  (*viewer)->AddMagnifyingGlass(glass);
  render::Framebuffer fb(600, 400, draw::kWhite);
  render::RasterSurface surface(&fb);
  auto stats = (*viewer)->RenderTo(&surface);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  // Red temperature points outside the glass, blue precipitation inside.
  EXPECT_GT(fb.CountPixels(draw::Color{0xC8, 0x1E, 0x1E}), 0u);
  EXPECT_GT(fb.CountPixels(draw::Color{0x1E, 0x46, 0xC8}), 0u);
}

TEST_F(FiguresTest, Figure10StitchWithSlaving) {
  ui::Session& session = env_.session();
  // Two branches over Observations for station 1: temperature and precip.
  std::string obs = session.AddTable("Observations").value();
  std::string one = session.AddBox("Restrict", {{"predicate", "station_id = 1"}}).value();
  ASSERT_TRUE(session.Connect(obs, 0, one, 0).ok());
  std::string t = session.InsertT(one, 0).value();

  auto build_branch = [&](const std::string& from, size_t port,
                          const std::string& y_attr, const std::string& name) {
    std::string time_x =
        session.AddBox("AddAttribute",
                       {{"name", "t"}, {"definition", "float(days(obs_date))"}})
            .value();
    std::string set_x =
        session.AddBox("SetLocation", {{"dim", "0"}, {"attr", "t"}}).value();
    std::string set_y =
        session.AddBox("SetLocation", {{"dim", "1"}, {"attr", y_attr}}).value();
    std::string named = session.AddBox("SetName", {{"name", name}}).value();
    EXPECT_TRUE(session.Connect(from, port, time_x, 0).ok());
    EXPECT_TRUE(session.Connect(time_x, 0, set_x, 0).ok());
    EXPECT_TRUE(session.Connect(set_x, 0, set_y, 0).ok());
    EXPECT_TRUE(session.Connect(set_y, 0, named, 0).ok());
    return named;
  };
  std::string temp_branch = build_branch(t, 0, "temperature", "Temp");
  std::string precip_branch = build_branch(t, 1, "precipitation", "Precip");

  std::string stitch = session
                           .AddBox("Stitch", {{"arity", "2"},
                                              {"layout", "vertical"},
                                              {"columns", "1"}})
                           .value();
  ASSERT_TRUE(session.Connect(temp_branch, 0, stitch, 0).ok());
  ASSERT_TRUE(session.Connect(precip_branch, 0, stitch, 1).ok());
  ASSERT_TRUE(session.AddViewer(stitch, 0, "fig10").ok());

  auto content = session.EvaluateCanvas("fig10");
  ASSERT_TRUE(content.ok()) << content.status().ToString();
  display::Group group = display::AsGroup(*content);
  ASSERT_EQ(group.size(), 2u);
  EXPECT_EQ(group.layout(), display::GroupLayout::kVertical);

  // Group member cameras are independent until slaved through the viewer.
  auto viewer = env_.GetViewer("fig10");
  ASSERT_TRUE(viewer.ok());
  ASSERT_EQ((*viewer)->num_members(), 2u);
  // "Whenever the user changes the date range under temperature, the
  // precipitation display changes to display the same date range" (§7.3):
  // model by slaving a second viewer of the same canvas.
  render::Framebuffer fb(400, 400, draw::kWhite);
  render::RasterSurface surface(&fb);
  ASSERT_TRUE((*viewer)->FitContent(400, 400).ok());
  auto stats = (*viewer)->RenderTo(&surface);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GT(stats->tuples_drawn, 100u);
}

TEST_F(FiguresTest, Figure11ReplicateByYear) {
  ui::Session& session = env_.session();
  std::string obs = session.AddTable("Observations").value();
  std::string one = session.AddBox("Restrict", {{"predicate", "station_id = 1"}}).value();
  std::string time_x =
      session.AddBox("AddAttribute",
                     {{"name", "t"}, {"definition", "float(days(obs_date))"}})
          .value();
  std::string set_x = session.AddBox("SetLocation", {{"dim", "0"}, {"attr", "t"}}).value();
  std::string set_y =
      session.AddBox("SetLocation", {{"dim", "1"}, {"attr", "temperature"}}).value();
  // Data runs 1985-1986; replicate into the two years (the paper's
  // "records for years prior to 1990 and after 1990" adapted to our data).
  std::string replicate =
      session
          .AddBox("Replicate", {{"rows",
                                 "year(obs_date) = 1985;year(obs_date) = 1986"},
                                {"columns", ""}})
          .value();
  ASSERT_TRUE(session.Connect(obs, 0, one, 0).ok());
  ASSERT_TRUE(session.Connect(one, 0, time_x, 0).ok());
  ASSERT_TRUE(session.Connect(time_x, 0, set_x, 0).ok());
  ASSERT_TRUE(session.Connect(set_x, 0, set_y, 0).ok());
  ASSERT_TRUE(session.Connect(set_y, 0, replicate, 0).ok());
  ASSERT_TRUE(session.AddViewer(replicate, 0, "fig11").ok());

  auto content = session.EvaluateCanvas("fig11");
  ASSERT_TRUE(content.ok()) << content.status().ToString();
  display::Group group = display::AsGroup(*content);
  ASSERT_EQ(group.size(), 2u);
  // The two partitions cover the data: 365 + 365 = 730 days.
  size_t total = 0;
  for (const display::Composite& member : group.members()) {
    total += member.entries()[0].relation.num_rows();
  }
  EXPECT_EQ(total, 730u);
  EXPECT_EQ(group.members()[0].entries()[0].relation.num_rows(), 365u);

  // Employees salary x department tabular replicate (the §7.4 example).
  std::string employees = session.AddTable("Employees").value();
  std::string tabular =
      session
          .AddBox("Replicate",
                  {{"rows", "salary <= 5000;salary > 5000"},
                   {"columns",
                    "department = \"shoe\";department = \"toy\";department = "
                    "\"candy\";department = \"hardware\""}})
          .value();
  ASSERT_TRUE(session.Connect(employees, 0, tabular, 0).ok());
  ASSERT_TRUE(session.AddViewer(tabular, 0, "salaries").ok());
  auto salaries = session.EvaluateCanvas("salaries");
  ASSERT_TRUE(salaries.ok());
  display::Group grid = display::AsGroup(*salaries);
  EXPECT_EQ(grid.size(), 8u);
  EXPECT_EQ(grid.GridShape(), (std::pair<size_t, size_t>{2, 4}));
  size_t employees_total = 0;
  for (const display::Composite& member : grid.members()) {
    employees_total += member.entries()[0].relation.num_rows();
  }
  EXPECT_EQ(employees_total, 200u);  // partitions are exhaustive and disjoint
}

}  // namespace
}  // namespace tioga2
