// The persistence subsystem, bottom-up: binary codecs (values, tuples,
// relations — bit-exact round trips including NaN payloads and -0.0), CRC
// frames (torn tail vs corruption), the segmented WAL (ordering, rotation,
// torn-tail tolerance, truncation, durability policies, group commit), the
// columnar snapshot format (atomic publish, fingerprint verification,
// corrupt-snapshot fallback), and the StorageEngine end to end: kill an
// environment, recover the directory, and every fig program evaluates to
// byte-identical fingerprints and memo stamps — serial and parallel.

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "boxes/relational_boxes.h"
#include "runtime/metrics.h"
#include "runtime/parallel_engine.h"
#include "runtime/thread_pool.h"
#include "storage/fault_fs.h"
#include "storage/format.h"
#include "storage/fs.h"
#include "storage/records.h"
#include "storage/snapshot.h"
#include "storage/storage_engine.h"
#include "storage/storage_metrics.h"
#include "storage/wal.h"
#include "testing/fig_programs.h"
#include "tioga2/environment.h"

namespace tioga2::storage {
namespace {

using types::Value;

/// A fresh, empty scratch directory under the test temp root.
std::string TestDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "tioga2_storage_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

db::RelationPtr SampleRelation() {
  auto relation = db::MakeRelation(
      {db::Column{"id", types::DataType::kInt},
       db::Column{"name", types::DataType::kString},
       db::Column{"score", types::DataType::kFloat},
       db::Column{"active", types::DataType::kBool},
       db::Column{"day", types::DataType::kDate}},
      {{Value::Int(1), Value::String("alpha"), Value::Float(1.5),
        Value::Bool(true), Value::DateVal(types::Date(10))},
       {Value::Int(2), Value::Null(), Value::Float(-0.0),
        Value::Null(), Value::DateVal(types::Date(-3))},
       {Value::Int(-7), Value::String(""), Value::Float(std::nan("")),
        Value::Bool(false), Value::Null()}});
  EXPECT_TRUE(relation.ok());
  return relation.value();
}

// ---- Codec round trips ----

TEST(StorageFormatTest, ValueRoundTripsAllTypesBitExactly) {
  const double nan = std::nan("");
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<Value> values = {
      Value::Null(),          Value::Bool(true),       Value::Bool(false),
      Value::Int(0),          Value::Int(-1),          Value::Int(INT64_MAX),
      Value::Int(INT64_MIN),  Value::Float(0.0),       Value::Float(-0.0),
      Value::Float(nan),      Value::Float(inf),       Value::Float(-inf),
      Value::Float(0.1),      Value::String(""),       Value::String("héllo\n\0x"),
      Value::DateVal(types::Date(0)), Value::DateVal(types::Date(-40000))};
  for (const Value& value : values) {
    Encoder enc;
    ASSERT_TRUE(EncodeValue(value, &enc).ok());
    Decoder dec(enc.data());
    auto decoded = DecodeValue(&dec);
    ASSERT_TRUE(decoded.ok()) << decoded.status().message();
    EXPECT_TRUE(dec.done());
    // Bit-exact comparison for floats: -0.0 vs 0.0 and NaN payloads count.
    if (value.is_float()) {
      uint64_t a, b;
      double va = value.float_value(), vb = decoded->float_value();
      std::memcpy(&a, &va, 8);
      std::memcpy(&b, &vb, 8);
      EXPECT_EQ(a, b);
    } else {
      EXPECT_TRUE(value == *decoded) << value.ToString();
    }
  }
}

TEST(StorageFormatTest, DisplayValuesAreRejected) {
  Encoder enc;
  EXPECT_TRUE(EncodeValue(Value::Display({}), &enc).IsInvalidArgument());
}

TEST(StorageFormatTest, RelationRoundTripsValueIdentically) {
  db::RelationPtr relation = SampleRelation();
  Encoder enc;
  ASSERT_TRUE(EncodeRelation(*relation, &enc).ok());
  Decoder dec(enc.data());
  auto decoded = DecodeRelation(&dec);
  ASSERT_TRUE(decoded.ok()) << decoded.status().message();
  EXPECT_TRUE(dec.done());
  // RelationEquals is not NaN-aware; compare via the canonical encoding.
  Encoder enc2;
  ASSERT_TRUE(EncodeRelation(**decoded, &enc2).ok());
  EXPECT_EQ(enc.data(), enc2.data());
  auto fp1 = FingerprintRelation(*relation);
  auto fp2 = FingerprintRelation(**decoded);
  ASSERT_TRUE(fp1.ok());
  ASSERT_TRUE(fp2.ok());
  EXPECT_EQ(*fp1, *fp2);
}

TEST(StorageFormatTest, FingerprintSeesValueAndOrderChanges) {
  auto a = db::MakeRelation({db::Column{"x", types::DataType::kInt}},
                            {{Value::Int(1)}, {Value::Int(2)}});
  auto b = db::MakeRelation({db::Column{"x", types::DataType::kInt}},
                            {{Value::Int(2)}, {Value::Int(1)}});
  auto c = db::MakeRelation({db::Column{"x", types::DataType::kInt}},
                            {{Value::Int(1)}, {Value::Int(3)}});
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  uint64_t fa = FingerprintRelation(**a).value();
  EXPECT_NE(fa, FingerprintRelation(**b).value());
  EXPECT_NE(fa, FingerprintRelation(**c).value());
}

TEST(StorageFormatTest, FrameDetectsTornTailAndCorruption) {
  std::string buf;
  AppendFrame("hello", &buf);
  AppendFrame("world!", &buf);
  size_t offset = 0;
  EXPECT_EQ(ReadFrame(buf, &offset).value(), "hello");
  EXPECT_EQ(ReadFrame(buf, &offset).value(), "world!");
  EXPECT_EQ(offset, buf.size());

  // Torn tail: any strict prefix of a frame reads as OutOfRange.
  for (size_t cut = 0; cut < FrameSize(5); ++cut) {
    std::string torn;
    AppendFrame("hello", &torn);
    torn.resize(cut);
    size_t pos = 0;
    if (cut == 0) continue;  // empty remainder is simply the end
    EXPECT_TRUE(ReadFrame(torn, &pos).status().IsOutOfRange()) << cut;
  }

  // Corruption: flip one payload byte, CRC catches it.
  std::string corrupt;
  AppendFrame("hello", &corrupt);
  corrupt[corrupt.size() - 1] ^= 0x01;
  size_t pos = 0;
  EXPECT_TRUE(ReadFrame(corrupt, &pos).status().IsParseError());
}

TEST(StorageRecordsTest, AllRecordTypesRoundTrip) {
  db::RelationPtr relation = SampleRelation();
  WalRecord reg;
  reg.type = WalRecordType::kRegister;
  reg.name = "t";
  reg.version = 7;
  reg.relation = relation;
  auto encoded = EncodeWalRecord(reg);
  ASSERT_TRUE(encoded.ok());
  auto decoded = DecodeWalRecord(*encoded);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->type, WalRecordType::kRegister);
  EXPECT_EQ(decoded->name, "t");
  EXPECT_EQ(decoded->version, 7u);
  EXPECT_EQ(FingerprintRelation(*decoded->relation).value(),
            FingerprintRelation(*relation).value());

  WalRecord upd;
  upd.type = WalRecordType::kUpdateRow;
  upd.name = "t";
  upd.version = 8;
  upd.row = 2;
  upd.new_tuple = {Value::Int(9), Value::Null(), Value::Float(2.5),
                   Value::Bool(true), Value::DateVal(types::Date(1))};
  decoded = DecodeWalRecord(*EncodeWalRecord(upd));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->row, 2u);
  EXPECT_EQ(decoded->new_tuple.size(), 5u);
  EXPECT_TRUE(decoded->new_tuple[0] == Value::Int(9));

  WalRecord drop;
  drop.type = WalRecordType::kDrop;
  drop.name = "t";
  drop.version = 8;
  decoded = DecodeWalRecord(*EncodeWalRecord(drop));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->type, WalRecordType::kDrop);

  WalRecord prog;
  prog.type = WalRecordType::kSaveProgram;
  prog.name = "p";
  prog.program_text = "tioga2-program v1\n";
  decoded = DecodeWalRecord(*EncodeWalRecord(prog));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->program_text, "tioga2-program v1\n");
}

// ---- WAL ----

TEST(WalTest, AppendReadRoundTripAcrossRotation) {
  const std::string dir = TestDir("wal_rotate");
  WalOptions options;
  options.durability = Durability::kNone;
  options.rotate_bytes = 256;  // force many segments
  {
    Wal wal(Fs::Default(), dir, options);
    ASSERT_TRUE(wal.Open(1).ok());
    for (int i = 0; i < 100; ++i) {
      auto lsn = wal.Append("record-" + std::to_string(i) +
                            std::string(16, 'x'));
      ASSERT_TRUE(lsn.ok());
      EXPECT_EQ(*lsn, static_cast<uint64_t>(i + 1));
    }
    ASSERT_TRUE(wal.Close().ok());
  }
  auto segments = Wal::ListSegments(Fs::Default(), dir);
  ASSERT_TRUE(segments.ok());
  EXPECT_GT(segments->size(), 1u) << "rotation never triggered";

  auto all = Wal::ReadAll(Fs::Default(), dir, 0);
  ASSERT_TRUE(all.ok());
  EXPECT_FALSE(all->corrupt);
  EXPECT_EQ(all->torn_bytes, 0u);
  ASSERT_EQ(all->records.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(all->records[i].lsn, static_cast<uint64_t>(i + 1));
    EXPECT_EQ(all->records[i].payload,
              "record-" + std::to_string(i) + std::string(16, 'x'));
  }
  // after_lsn filters.
  auto tail = Wal::ReadAll(Fs::Default(), dir, 95);
  ASSERT_TRUE(tail.ok());
  ASSERT_EQ(tail->records.size(), 5u);
  EXPECT_EQ(tail->records.front().lsn, 96u);
}

TEST(WalTest, ToleratesTornFinalRecordAndContinuesAfterReopen) {
  const std::string dir = TestDir("wal_torn");
  WalOptions options;
  options.durability = Durability::kNone;
  {
    Wal wal(Fs::Default(), dir, options);
    ASSERT_TRUE(wal.Open(1).ok());
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(wal.Append("payload-" + std::to_string(i)).ok());
    }
    ASSERT_TRUE(wal.Close().ok());
  }
  // Tear the last record: chop a few bytes off the only segment.
  auto segments = Wal::ListSegments(Fs::Default(), dir);
  ASSERT_TRUE(segments.ok());
  ASSERT_EQ(segments->size(), 1u);
  const std::string path = dir + "/" + segments->front();
  auto data = Fs::Default()->ReadFile(path);
  ASSERT_TRUE(data.ok());
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(data->data(), static_cast<std::streamsize>(data->size() - 3));
  }
  auto all = Wal::ReadAll(Fs::Default(), dir, 0);
  ASSERT_TRUE(all.ok());
  EXPECT_FALSE(all->corrupt);
  EXPECT_GT(all->torn_bytes, 0u);
  ASSERT_EQ(all->records.size(), 9u);  // record 10 was torn

  // Reopen after the torn record (as recovery would) and keep appending:
  // the stale torn bytes in the old segment stay skippable forever.
  {
    Wal wal(Fs::Default(), dir, options);
    ASSERT_TRUE(wal.Open(10).ok());
    EXPECT_TRUE(wal.Append("payload-9-again").ok());
    ASSERT_TRUE(wal.Close().ok());
  }
  all = Wal::ReadAll(Fs::Default(), dir, 0);
  ASSERT_TRUE(all.ok());
  EXPECT_FALSE(all->corrupt);
  ASSERT_EQ(all->records.size(), 10u);
  EXPECT_EQ(all->records.back().lsn, 10u);
  EXPECT_EQ(all->records.back().payload, "payload-9-again");
}

TEST(WalTest, CorruptionStopsAtReadablePrefix) {
  const std::string dir = TestDir("wal_corrupt");
  WalOptions options;
  options.durability = Durability::kNone;
  {
    Wal wal(Fs::Default(), dir, options);
    ASSERT_TRUE(wal.Open(1).ok());
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(wal.Append(std::string(32, static_cast<char>('a' + i))).ok());
    }
    ASSERT_TRUE(wal.Close().ok());
  }
  auto segments = Wal::ListSegments(Fs::Default(), dir);
  const std::string path = dir + "/" + segments->front();
  auto data = Fs::Default()->ReadFile(path);
  ASSERT_TRUE(data.ok());
  std::string bytes = *data;
  bytes[bytes.size() / 2] ^= 0x40;  // flip a bit mid-log
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  auto all = Wal::ReadAll(Fs::Default(), dir, 0);
  ASSERT_TRUE(all.ok());
  EXPECT_TRUE(all->corrupt);
  EXPECT_LT(all->records.size(), 5u);
  // The scan reports where the corruption sits so recovery can quarantine
  // it: the offending segment and the byte length of its readable prefix.
  EXPECT_EQ(all->corrupt_segment, segments->front());
  // Every record here frames a 32-byte payload plus the u64 lsn.
  EXPECT_EQ(all->corrupt_prefix, all->records.size() * FrameSize(8 + 32));
}

TEST(WalTest, ReopenDoesNotAliasCrashLeftoverSegment) {
  // A crash right after rotation (or right after Open) leaves a segment
  // file whose first_lsn equals the LSN recovery reopens at. Open must not
  // track that leftover alongside the fresh active segment it creates under
  // the same name — the duplicate entry used to make TruncateThrough unlink
  // the live active file, losing durable post-checkpoint records.
  const std::string dir = TestDir("wal_alias");
  WalOptions options;
  options.durability = Durability::kNone;
  {
    Wal wal(Fs::Default(), dir, options);
    ASSERT_TRUE(wal.Open(1).ok());
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(wal.Append("r" + std::to_string(i)).ok());
    }
    ASSERT_TRUE(wal.Close().ok());
  }
  // Crash residue: an empty segment already named for the next LSN.
  { std::ofstream out(dir + "/wal-00000000000000000006.t2w", std::ios::binary); }
  Wal wal(Fs::Default(), dir, options);
  ASSERT_TRUE(wal.Open(6).ok());
  ASSERT_TRUE(wal.Append("post-crash").ok());  // lsn 6
  ASSERT_TRUE(wal.Sync().ok());
  // Truncating below the active segment must leave it (and its records)
  // intact, and the log must keep working.
  ASSERT_TRUE(wal.TruncateThrough(5).ok());
  ASSERT_TRUE(wal.Append("post-truncate").ok());  // lsn 7
  ASSERT_TRUE(wal.Close().ok());
  auto all = Wal::ReadAll(Fs::Default(), dir, 5);
  ASSERT_TRUE(all.ok());
  EXPECT_FALSE(all->corrupt);
  ASSERT_EQ(all->records.size(), 2u);
  EXPECT_EQ(all->records[0].lsn, 6u);
  EXPECT_EQ(all->records[0].payload, "post-crash");
  EXPECT_EQ(all->records[1].payload, "post-truncate");
}

TEST(WalTest, TruncateThroughDeletesCoveredSegments) {
  const std::string dir = TestDir("wal_truncate");
  WalOptions options;
  options.durability = Durability::kNone;
  options.rotate_bytes = 128;
  Wal wal(Fs::Default(), dir, options);
  ASSERT_TRUE(wal.Open(1).ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(wal.Append(std::string(40, 'x')).ok());
  }
  ASSERT_TRUE(wal.Sync().ok());
  auto before = Wal::ListSegments(Fs::Default(), dir);
  ASSERT_TRUE(before.ok());
  ASSERT_GT(before->size(), 2u);

  ASSERT_TRUE(wal.TruncateThrough(40).ok());
  auto after = Wal::ListSegments(Fs::Default(), dir);
  ASSERT_TRUE(after.ok());
  EXPECT_LT(after->size(), before->size());
  // Records above the truncation point survive.
  auto all = Wal::ReadAll(Fs::Default(), dir, 40);
  ASSERT_TRUE(all.ok());
  EXPECT_FALSE(all->corrupt);
  EXPECT_EQ(all->records.size(), 10u);

  // Truncating everything rotates the active segment away too.
  ASSERT_TRUE(wal.TruncateThrough(50).ok());
  auto rest = Wal::ReadAll(Fs::Default(), dir, 0);
  ASSERT_TRUE(rest.ok());
  EXPECT_EQ(rest->records.size(), 0u);
  // The log still works after total truncation.
  EXPECT_EQ(wal.Append("after-truncate").value(), 51u);
  ASSERT_TRUE(wal.Close().ok());
  auto final_read = Wal::ReadAll(Fs::Default(), dir, 0);
  ASSERT_TRUE(final_read.ok());
  ASSERT_EQ(final_read->records.size(), 1u);
  EXPECT_EQ(final_read->records[0].lsn, 51u);
}

TEST(WalTest, DurabilityPoliciesAndGroupCommit) {
  for (Durability durability :
       {Durability::kNone, Durability::kFlushEveryN, Durability::kFsyncEachRecord}) {
    for (bool group_commit : {false, true}) {
      const std::string dir =
          TestDir("wal_dur_" + std::to_string(static_cast<int>(durability)) +
                  (group_commit ? "_g" : "_s"));
      WalOptions options;
      options.durability = durability;
      options.flush_every_n = 4;
      options.group_commit = group_commit;
      Wal wal(Fs::Default(), dir, options);
      ASSERT_TRUE(wal.Open(1).ok());
      // Concurrent appenders: LSNs must come out dense and the log readable.
      std::vector<std::thread> threads;
      for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&wal, t] {
          for (int i = 0; i < 25; ++i) {
            auto lsn = wal.Append("t" + std::to_string(t) + "-" + std::to_string(i));
            ASSERT_TRUE(lsn.ok());
          }
        });
      }
      for (auto& thread : threads) thread.join();
      if (durability == Durability::kFsyncEachRecord) {
        EXPECT_EQ(wal.durable_lsn(), 100u);
      }
      ASSERT_TRUE(wal.Sync().ok());
      EXPECT_EQ(wal.durable_lsn(), 100u);
      ASSERT_TRUE(wal.Close().ok());
      auto all = Wal::ReadAll(Fs::Default(), dir, 0);
      ASSERT_TRUE(all.ok());
      EXPECT_FALSE(all->corrupt);
      ASSERT_EQ(all->records.size(), 100u);
      for (size_t i = 0; i < 100; ++i) {
        EXPECT_EQ(all->records[i].lsn, i + 1);
      }
    }
  }
}

// ---- Snapshots ----

TEST(SnapshotTest, WriteReadRoundTrip) {
  const std::string dir = TestDir("snap_roundtrip");
  SnapshotContents contents;
  contents.seq = 3;
  contents.last_lsn = 42;
  contents.tables.push_back(SnapshotTable{"t", SampleRelation(), 5, 0});
  contents.programs.emplace_back("prog", "tioga2-program v1\n");
  contents.version_floors.emplace_back("dropped", 9);
  auto bytes = WriteSnapshot(Fs::Default(), dir, contents);
  ASSERT_TRUE(bytes.ok()) << bytes.status().message();
  EXPECT_GT(*bytes, 0u);

  auto listed = ListSnapshots(Fs::Default(), dir);
  ASSERT_TRUE(listed.ok());
  ASSERT_EQ(listed->size(), 1u);
  EXPECT_EQ(listed->front().first, 3u);

  auto read = ReadSnapshot(Fs::Default(), dir + "/" + listed->front().second);
  ASSERT_TRUE(read.ok()) << read.status().message();
  EXPECT_EQ(read->seq, 3u);
  EXPECT_EQ(read->last_lsn, 42u);
  ASSERT_EQ(read->tables.size(), 1u);
  EXPECT_EQ(read->tables[0].name, "t");
  EXPECT_EQ(read->tables[0].version, 5u);
  EXPECT_EQ(FingerprintRelation(*read->tables[0].relation).value(),
            FingerprintRelation(*contents.tables[0].relation).value());
  ASSERT_EQ(read->programs.size(), 1u);
  EXPECT_EQ(read->programs[0].second, "tioga2-program v1\n");
  ASSERT_EQ(read->version_floors.size(), 1u);
  EXPECT_EQ(read->version_floors[0].second, 9u);
  // No .tmp residue after the atomic publish.
  auto names = Fs::Default()->ListDir(dir);
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(names->size(), 1u);
}

TEST(SnapshotTest, DetectsCorruptionAndTruncation) {
  const std::string dir = TestDir("snap_corrupt");
  SnapshotContents contents;
  contents.seq = 1;
  contents.last_lsn = 7;
  contents.tables.push_back(SnapshotTable{"t", SampleRelation(), 2, 0});
  ASSERT_TRUE(WriteSnapshot(Fs::Default(), dir, contents).ok());
  const std::string path = dir + "/" + SnapshotName(1);
  auto data = Fs::Default()->ReadFile(path);
  ASSERT_TRUE(data.ok());

  // Any single flipped byte must be caught (frame CRC or fingerprint).
  for (size_t pos : {size_t{10}, data->size() / 2, data->size() - 2}) {
    std::string bytes = *data;
    bytes[pos] ^= 0x10;
    std::ofstream(path, std::ios::binary | std::ios::trunc)
        .write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    EXPECT_FALSE(ReadSnapshot(Fs::Default(), path).ok()) << "pos " << pos;
  }
  // A truncated snapshot (no END marker) is invalid, not "torn-tolerated".
  std::ofstream(path, std::ios::binary | std::ios::trunc)
      .write(data->data(), static_cast<std::streamsize>(data->size() - 6));
  EXPECT_FALSE(ReadSnapshot(Fs::Default(), path).ok());
}

// ---- Catalog listener contract ----

TEST(CatalogListenerTest, CallbacksCarryPostMutationState) {
  struct Recorder : db::CatalogListener {
    std::vector<std::string> events;
    void OnRegisterTable(const std::string& name, const db::RelationPtr&,
                         uint64_t version) override {
      events.push_back("reg:" + name + ":" + std::to_string(version));
    }
    void OnReplaceTable(const std::string& name, const db::RelationPtr&,
                        uint64_t version) override {
      events.push_back("rep:" + name + ":" + std::to_string(version));
    }
    void OnUpdateRow(const db::TableDelta& delta, const db::RelationPtr&) override {
      events.push_back("upd:" + delta.table + ":" +
                       std::to_string(delta.new_version));
    }
    void OnDropTable(const std::string& name, uint64_t version) override {
      events.push_back("drop:" + name + ":" + std::to_string(version));
    }
    void OnSaveProgram(const std::string& name, const std::string&) override {
      events.push_back("prog:" + name);
    }
  };
  db::Catalog catalog;
  Recorder recorder;
  catalog.SetListener(&recorder);
  db::RelationPtr rel = SampleRelation();
  ASSERT_TRUE(catalog.RegisterTable("t", rel).ok());
  ASSERT_TRUE(catalog.ReplaceTable("t", rel).ok());
  db::Tuple tuple = rel->row(0);
  ASSERT_TRUE(catalog.UpdateRow("t", 0, tuple).ok());
  catalog.SaveProgram("p", "x");
  ASSERT_TRUE(catalog.DropTable("t").ok());
  // Recreation starts above the dropped version (the monotonicity fix).
  ASSERT_TRUE(catalog.RegisterTable("t", rel).ok());
  catalog.SetListener(nullptr);
  EXPECT_EQ(recorder.events,
            (std::vector<std::string>{"reg:t:1", "rep:t:2", "upd:t:3", "prog:p",
                                      "drop:t:3", "reg:t:4"}));
}

// ---- StorageEngine end to end ----

/// A canvas evaluation target: the edge feeding a viewer box.
struct Target {
  std::string canvas;
  std::string from;
  size_t from_port = 0;
};

std::vector<Target> TargetsOf(const dataflow::Graph& graph) {
  std::vector<Target> targets;
  for (const std::string& id : graph.BoxIds()) {
    const auto* viewer =
        dynamic_cast<const boxes::ViewerBox*>(graph.GetBox(id).value());
    if (viewer == nullptr) continue;
    std::optional<dataflow::Edge> edge = graph.IncomingEdge(id, 0);
    if (!edge.has_value()) continue;
    targets.push_back(Target{viewer->canvas(), edge->from_box, edge->from_port});
  }
  return targets;
}

/// Fingerprints of every catalog table (the value-level identity oracle).
std::map<std::string, uint64_t> TableFingerprints(db::Catalog& catalog) {
  std::map<std::string, uint64_t> fps;
  for (const std::string& name : catalog.ListTables()) {
    auto rel = catalog.GetTable(name);
    EXPECT_TRUE(rel.ok());
    auto fp = FingerprintRelation(**rel);
    EXPECT_TRUE(fp.ok());
    fps[name] = *fp;
  }
  return fps;
}

std::map<std::string, uint64_t> TableVersions(db::Catalog& catalog) {
  std::map<std::string, uint64_t> versions;
  for (const std::string& name : catalog.ListTables()) {
    versions[name] = catalog.TableVersion(name).value();
  }
  return versions;
}

/// Nudges one numeric cell of row (i % rows); deterministic per (table, i).
Status NudgeRow(db::Catalog* catalog, const std::string& table, int i) {
  TIOGA2_ASSIGN_OR_RETURN(db::RelationPtr rel, catalog->GetTable(table));
  if (rel->num_rows() == 0) return Status::OK();
  size_t row = static_cast<size_t>(i) % rel->num_rows();
  db::Tuple tuple = rel->row(row);
  for (size_t c = 0; c < tuple.size(); ++c) {
    if (tuple[c].is_float()) {
      tuple[c] = Value::Float(tuple[c].float_value() + 0.25);
      return catalog->UpdateRow(table, row, tuple).status();
    }
    if (tuple[c].is_int()) {
      tuple[c] = Value::Int(tuple[c].int_value() + 1);
      return catalog->UpdateRow(table, row, tuple).status();
    }
  }
  return Status::OK();
}

/// The full restart-identity check for one fig program:
///   env1: demo data + program; open persistent (bootstrap); save program;
///         apply edits (logged); evaluate; record stamps + fingerprints;
///         then either close cleanly (snapshot) or drop abruptly (WAL-only).
///   env2: fresh environment; open the same dir; load the program; evaluate;
///         everything must be byte-identical.
void CheckRestartIdentity(const testing::FigProgram& program, bool clean_close,
                          bool parallel) {
  const std::string dir =
      TestDir("engine_" + program.name + (clean_close ? "_clean" : "_kill") +
              (parallel ? "_par" : "_ser"));
  std::map<std::string, std::string> ref_fingerprints;
  std::map<std::string, std::optional<uint64_t>> ref_stamps;
  std::map<std::string, uint64_t> ref_tables;
  std::map<std::string, uint64_t> ref_versions;
  {
    Environment env;
    ASSERT_TRUE(env.LoadDemoData(program.extra_stations, program.num_days).ok());
    ASSERT_TRUE(program.build(&env).ok());
    StorageOptions options;
    options.dir = dir;
    ASSERT_TRUE(env.OpenPersistent(options).ok());
    ASSERT_TRUE(env.session().SaveProgram("fig").ok());
    for (const std::string& table : env.catalog().ListTables()) {
      for (int i = 0; i < 3; ++i) {
        ASSERT_TRUE(NudgeRow(&env.catalog(), table, i).ok()) << table;
      }
    }
    for (const Target& t : TargetsOf(env.session().graph())) {
      auto value =
          env.session().engine().Evaluate(env.session().graph(), t.from, t.from_port);
      ASSERT_TRUE(value.ok()) << t.canvas << ": " << value.status().message();
      ref_fingerprints[t.canvas] = testing::FingerprintBoxValue(value.value());
    }
    for (const std::string& id : env.session().graph().BoxIds()) {
      ref_stamps[id] = env.session().engine().cache().StampOf(id);
    }
    ref_tables = TableFingerprints(env.catalog());
    ref_versions = TableVersions(env.catalog());
    if (clean_close) {
      ASSERT_TRUE(env.ClosePersistent().ok());
    } else {
      // Make the log durable, then drop the environment without a snapshot:
      // recovery must rebuild everything from bootstrap records + deltas.
      ASSERT_TRUE(env.storage()->Sync().ok());
    }
  }
  {
    Environment env;  // NO demo data: everything must come from the dir
    StorageOptions options;
    options.dir = dir;
    RecoveryInfo info;
    ASSERT_TRUE(env.OpenPersistent(options, &info).ok());
    EXPECT_EQ(info.recovered_snapshot, clean_close);
    if (!clean_close) {
      EXPECT_GT(info.records_replayed, 0u);
    }
    EXPECT_EQ(TableFingerprints(env.catalog()), ref_tables);
    EXPECT_EQ(TableVersions(env.catalog()), ref_versions);
    ASSERT_TRUE(env.session().LoadProgram("fig").ok());
    if (parallel) {
      runtime::ThreadPool pool(4);
      runtime::ParallelEngine engine(env.session().catalog(), &pool);
      for (const Target& t : TargetsOf(env.session().graph())) {
        auto value = engine.Evaluate(env.session().graph(), t.from, t.from_port);
        ASSERT_TRUE(value.ok()) << t.canvas << ": " << value.status().message();
        EXPECT_EQ(testing::FingerprintBoxValue(value.value()),
                  ref_fingerprints.at(t.canvas))
            << t.canvas;
      }
      for (const std::string& id : env.session().graph().BoxIds()) {
        EXPECT_EQ(engine.cache().StampOf(id), ref_stamps.at(id)) << id;
      }
    } else {
      for (const Target& t : TargetsOf(env.session().graph())) {
        auto value = env.session().engine().Evaluate(env.session().graph(),
                                                     t.from, t.from_port);
        ASSERT_TRUE(value.ok()) << t.canvas << ": " << value.status().message();
        EXPECT_EQ(testing::FingerprintBoxValue(value.value()),
                  ref_fingerprints.at(t.canvas))
            << t.canvas;
      }
      for (const std::string& id : env.session().graph().BoxIds()) {
        EXPECT_EQ(env.session().engine().cache().StampOf(id), ref_stamps.at(id))
            << id;
      }
    }
    ASSERT_TRUE(env.ClosePersistent().ok());
  }
}

TEST(StorageEngineTest, KillAndRecoverIsByteIdenticalOnEveryFigProgram) {
  for (const testing::FigProgram& program : testing::AllFigPrograms()) {
    SCOPED_TRACE(program.name);
    CheckRestartIdentity(program, /*clean_close=*/false, /*parallel=*/false);
  }
}

TEST(StorageEngineTest, CleanCloseRecoversFromSnapshotOnEveryFigProgram) {
  for (const testing::FigProgram& program : testing::AllFigPrograms()) {
    SCOPED_TRACE(program.name);
    CheckRestartIdentity(program, /*clean_close=*/true, /*parallel=*/false);
  }
}

TEST(StorageEngineTest, ParallelEvaluationAfterRecoveryMatches) {
  std::vector<testing::FigProgram> programs = testing::AllFigPrograms();
  for (const testing::FigProgram& program : programs) {
    SCOPED_TRACE(program.name);
    CheckRestartIdentity(program, /*clean_close=*/false, /*parallel=*/true);
  }
}

TEST(StorageEngineTest, DropRecreateSurvivesRecoveryWithMonotonicVersions) {
  const std::string dir = TestDir("engine_drop");
  db::RelationPtr rel = SampleRelation();
  {
    db::Catalog catalog;
    StorageOptions options;
    options.dir = dir;
    auto engine = StorageEngine::Open(&catalog, options);
    ASSERT_TRUE(engine.ok());
    ASSERT_TRUE(catalog.RegisterTable("t", rel).ok());          // v1
    ASSERT_TRUE(catalog.ReplaceTable("t", rel).ok());           // v2
    ASSERT_TRUE(catalog.DropTable("t").ok());                   // floor 2
    ASSERT_TRUE(catalog.RegisterTable("t", rel).ok());          // v3
    EXPECT_EQ(catalog.TableVersion("t").value(), 3u);
    ASSERT_TRUE((*engine)->Sync().ok());
    ASSERT_TRUE((*engine)->Close().ok());
  }
  {
    db::Catalog catalog;
    StorageOptions options;
    options.dir = dir;
    RecoveryInfo info;
    auto engine = StorageEngine::Open(&catalog, options, &info);
    ASSERT_TRUE(engine.ok()) << engine.status().message();
    EXPECT_EQ(catalog.TableVersion("t").value(), 3u);
    // The floor survives recovery: another drop/recreate keeps climbing.
    ASSERT_TRUE(catalog.DropTable("t").ok());
    ASSERT_TRUE(catalog.RegisterTable("t", rel).ok());
    EXPECT_EQ(catalog.TableVersion("t").value(), 4u);
    ASSERT_TRUE((*engine)->Close().ok());
  }
}

TEST(StorageEngineTest, FallsBackToOlderSnapshotWhenNewestIsCorrupt) {
  const std::string dir = TestDir("engine_fallback");
  db::RelationPtr rel = SampleRelation();
  {
    db::Catalog catalog;
    StorageOptions options;
    options.dir = dir;
    options.retain_snapshots = 3;
    auto engine = StorageEngine::Open(&catalog, options);
    ASSERT_TRUE(engine.ok());
    ASSERT_TRUE(catalog.RegisterTable("t", rel).ok());
    ASSERT_TRUE((*engine)->Checkpoint().ok());  // snapshot 1
    db::Tuple tuple = rel->row(0);
    tuple[0] = Value::Int(100);
    ASSERT_TRUE(catalog.UpdateRow("t", 0, tuple).ok());
    ASSERT_TRUE((*engine)->Checkpoint().ok());  // snapshot 2
    ASSERT_TRUE((*engine)->Close().ok());
  }
  // Corrupt the newest snapshot.
  auto listed = ListSnapshots(Fs::Default(), dir);
  ASSERT_TRUE(listed.ok());
  ASSERT_EQ(listed->size(), 2u);
  const std::string newest = dir + "/" + listed->back().second;
  auto data = Fs::Default()->ReadFile(newest);
  ASSERT_TRUE(data.ok());
  std::string bytes = *data;
  bytes[bytes.size() / 3] ^= 0x02;
  std::ofstream(newest, std::ios::binary | std::ios::trunc)
      .write(bytes.data(), static_cast<std::streamsize>(bytes.size()));

  db::Catalog catalog;
  StorageOptions options;
  options.dir = dir;
  RecoveryInfo info;
  auto engine = StorageEngine::Open(&catalog, options, &info);
  ASSERT_TRUE(engine.ok()) << engine.status().message();
  EXPECT_EQ(info.snapshots_skipped, 1u);
  EXPECT_TRUE(info.recovered_snapshot);
  // The WAL was only truncated through the *oldest retained* snapshot, so
  // replaying from the older snapshot still reaches the final state.
  EXPECT_GT(info.records_replayed, 0u);
  EXPECT_TRUE(catalog.GetTable("t").value()->at(0, 0) == Value::Int(100));
  ASSERT_TRUE((*engine)->Close().ok());
}

TEST(StorageEngineTest, CorruptWalIsQuarantinedSoLaterAppendsStayRecoverable) {
  const std::string dir = TestDir("engine_wal_corrupt");
  db::RelationPtr rel = SampleRelation();
  {
    db::Catalog catalog;
    StorageOptions options;
    options.dir = dir;
    auto engine = StorageEngine::Open(&catalog, options);
    ASSERT_TRUE(engine.ok());
    ASSERT_TRUE(catalog.RegisterTable("t", rel).ok());
    for (int i = 0; i < 8; ++i) {
      ASSERT_TRUE(NudgeRow(&catalog, "t", i).ok());
    }
    ASSERT_TRUE((*engine)->Close().ok());
  }
  // Corrupt the second frame's payload (a CRC mismatch, not a torn tail):
  // the register record stays readable, the edits after it do not.
  auto segments = Wal::ListSegments(Fs::Default(), dir);
  ASSERT_TRUE(segments.ok());
  ASSERT_EQ(segments->size(), 1u);
  const std::string path = dir + "/" + segments->front();
  auto data = Fs::Default()->ReadFile(path);
  ASSERT_TRUE(data.ok());
  std::string bytes = *data;
  uint32_t first_len;
  std::memcpy(&first_len, bytes.data(), sizeof(first_len));
  const size_t second_frame = FrameSize(first_len);
  ASSERT_LT(second_frame + 10, bytes.size());
  bytes[second_frame + 10] ^= 0x04;
  std::ofstream(path, std::ios::binary | std::ios::trunc)
      .write(bytes.data(), static_cast<std::streamsize>(bytes.size()));

  uint64_t fingerprint_after_second_run = 0;
  {
    db::Catalog catalog;
    StorageOptions options;
    options.dir = dir;
    RecoveryInfo info;
    auto engine = StorageEngine::Open(&catalog, options, &info);
    ASSERT_TRUE(engine.ok()) << engine.status().message();
    EXPECT_TRUE(info.wal_corrupt);
    EXPECT_EQ(info.records_replayed, 1u);  // the readable prefix
    ASSERT_TRUE(catalog.GetTable("t").ok());
    // Mutate past the corruption point and make the new records durable.
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(NudgeRow(&catalog, "t", i).ok());
    }
    fingerprint_after_second_run =
        FingerprintRelation(**catalog.GetTable("t")).value();
    ASSERT_TRUE((*engine)->Sync().ok());
    ASSERT_TRUE((*engine)->Close().ok());
  }
  {
    // Before quarantine existed, this recovery re-hit the same corrupt
    // frame and silently dropped everything the second run logged.
    db::Catalog catalog;
    StorageOptions options;
    options.dir = dir;
    RecoveryInfo info;
    auto engine = StorageEngine::Open(&catalog, options, &info);
    ASSERT_TRUE(engine.ok()) << engine.status().message();
    EXPECT_FALSE(info.wal_corrupt);
    EXPECT_EQ(info.records_replayed, 5u);  // register + the 4 new edits
    EXPECT_EQ(FingerprintRelation(**catalog.GetTable("t")).value(),
              fingerprint_after_second_run);
    ASSERT_TRUE((*engine)->Close().ok());
  }
}

TEST(StorageEngineTest, CorruptionBelowSnapshotLsnQuarantinesWholePrefix) {
  // Corruption in a log range already covered by the recovered snapshot:
  // quarantine must drop the whole surviving prefix, not just the suffix.
  // A kept prefix would end below the LSN the WAL reopens at, and the gap
  // would read as fresh corruption on the next recovery — quarantining away
  // the records appended after this one.
  const std::string dir = TestDir("engine_wal_covered_corrupt");
  db::RelationPtr rel = SampleRelation();
  {
    db::Catalog catalog;
    StorageOptions options;
    options.dir = dir;
    auto engine = StorageEngine::Open(&catalog, options);
    ASSERT_TRUE(engine.ok());
    ASSERT_TRUE(catalog.RegisterTable("t", rel).ok());       // lsn 1
    ASSERT_TRUE((*engine)->Checkpoint().ok());               // snap 1 @ 1
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(NudgeRow(&catalog, "t", i).ok());          // lsn 2..5
    }
    ASSERT_TRUE((*engine)->Checkpoint().ok());  // snap 2 @ 5; log keeps 2..5
    ASSERT_TRUE(NudgeRow(&catalog, "t", 0).ok());            // lsn 6
    ASSERT_TRUE(NudgeRow(&catalog, "t", 1).ok());            // lsn 7
    ASSERT_TRUE((*engine)->Close().ok());
  }
  // Corrupt the frame of lsn 3 — below snapshot 2's covered LSN.
  auto segments = Wal::ListSegments(Fs::Default(), dir);
  ASSERT_TRUE(segments.ok());
  ASSERT_FALSE(segments->empty());
  const std::string path = dir + "/" + segments->front();
  auto data = Fs::Default()->ReadFile(path);
  ASSERT_TRUE(data.ok());
  std::string bytes = *data;
  uint32_t first_len;
  std::memcpy(&first_len, bytes.data(), sizeof(first_len));
  const size_t second_frame = FrameSize(first_len);
  ASSERT_LT(second_frame + 10, bytes.size());
  bytes[second_frame + 10] ^= 0x08;
  std::ofstream(path, std::ios::binary | std::ios::trunc)
      .write(bytes.data(), static_cast<std::streamsize>(bytes.size()));

  uint64_t fingerprint_after_second_run = 0;
  {
    db::Catalog catalog;
    StorageOptions options;
    options.dir = dir;
    RecoveryInfo info;
    auto engine = StorageEngine::Open(&catalog, options, &info);
    ASSERT_TRUE(engine.ok()) << engine.status().message();
    EXPECT_TRUE(info.wal_corrupt);
    EXPECT_EQ(info.records_replayed, 0u);  // snapshot 2 covers the prefix
    // Lsns 6 and 7 sat beyond the corruption — lost, as documented; the
    // catalog is at snapshot 2's state. Append fresh durable edits.
    ASSERT_TRUE(NudgeRow(&catalog, "t", 2).ok());
    ASSERT_TRUE(NudgeRow(&catalog, "t", 3).ok());
    fingerprint_after_second_run =
        FingerprintRelation(**catalog.GetTable("t")).value();
    ASSERT_TRUE((*engine)->Sync().ok());
    ASSERT_TRUE((*engine)->Close().ok());  // no checkpoint: WAL-only state
  }
  {
    db::Catalog catalog;
    StorageOptions options;
    options.dir = dir;
    RecoveryInfo info;
    auto engine = StorageEngine::Open(&catalog, options, &info);
    ASSERT_TRUE(engine.ok()) << engine.status().message();
    EXPECT_FALSE(info.wal_corrupt);
    EXPECT_EQ(info.records_replayed, 2u);
    EXPECT_EQ(FingerprintRelation(**catalog.GetTable("t")).value(),
              fingerprint_after_second_run);
    ASSERT_TRUE((*engine)->Close().ok());
  }
}

TEST(StorageEngineTest, RetentionKeepsKSnapshotsAndTruncatesWal) {
  const std::string dir = TestDir("engine_retention");
  db::RelationPtr rel = SampleRelation();
  db::Catalog catalog;
  StorageOptions options;
  options.dir = dir;
  options.retain_snapshots = 2;
  options.wal.rotate_bytes = 64;  // segment per record, so truncation can bite
  auto engine = StorageEngine::Open(&catalog, options);
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(catalog.RegisterTable("t", rel).ok());
  for (int round = 0; round < 5; ++round) {
    db::Tuple tuple = rel->row(0);
    tuple[0] = Value::Int(round);
    ASSERT_TRUE(catalog.UpdateRow("t", 0, tuple).ok());
    ASSERT_TRUE((*engine)->Checkpoint().ok());
  }
  auto listed = ListSnapshots(Fs::Default(), dir);
  ASSERT_TRUE(listed.ok());
  EXPECT_EQ(listed->size(), 2u);
  // The WAL holds nothing below the oldest retained snapshot's LSN.
  auto all = Wal::ReadAll(Fs::Default(), dir, 0);
  ASSERT_TRUE(all.ok());
  for (const Wal::Record& record : all->records) {
    EXPECT_GT(record.lsn, 4u);
  }
  ASSERT_TRUE((*engine)->Close().ok());
}

TEST(StorageEngineTest, BackgroundSnapshotterTriggersByRecordCount) {
  const std::string dir = TestDir("engine_snapshotter");
  db::RelationPtr rel = SampleRelation();
  db::Catalog catalog;
  StorageOptions options;
  options.dir = dir;
  options.snapshot_every_records = 10;
  auto engine = StorageEngine::Open(&catalog, options);
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(catalog.RegisterTable("t", rel).ok());
  for (int i = 0; i < 40; ++i) {
    db::Tuple tuple = rel->row(0);
    tuple[0] = Value::Int(i);
    ASSERT_TRUE(catalog.UpdateRow("t", 0, tuple).ok());
  }
  // The snapshotter runs asynchronously; wait briefly for at least one.
  bool snapshotted = false;
  for (int tries = 0; tries < 200 && !snapshotted; ++tries) {
    auto listed = ListSnapshots(Fs::Default(), dir);
    ASSERT_TRUE(listed.ok());
    snapshotted = !listed->empty();
    if (!snapshotted) std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(snapshotted);
  ASSERT_TRUE((*engine)->Close().ok());

  // Recovery from the snapshotter's output reproduces the final state.
  db::Catalog recovered;
  StorageOptions reopen;
  reopen.dir = dir;
  auto engine2 = StorageEngine::Open(&recovered, reopen);
  ASSERT_TRUE(engine2.ok()) << engine2.status().message();
  EXPECT_TRUE(recovered.GetTable("t").value()->at(0, 0) == Value::Int(39));
  EXPECT_EQ(recovered.TableVersion("t").value(), 41u);
  ASSERT_TRUE((*engine2)->Close().ok());
}

// The TSan target: snapshotting concurrent with edits and query evaluation.
// The client thread mutates the catalog and evaluates queries (the catalog
// itself is single-writer, like a Session); the engine's background
// snapshotter races against it the whole time, serializing from its shadow
// of immutable RelationPtrs — it never touches the live catalog.
TEST(StorageEngineTest, SnapshottingConcurrentWithEditsAndQueriesIsClean) {
  const std::string dir = TestDir("engine_concurrent");
  std::map<std::string, uint64_t> final_tables;
  {
    Environment env;
    ASSERT_TRUE(env.LoadDemoData(50, 5).ok());
    std::vector<testing::FigProgram> programs = testing::AllFigPrograms();
    ASSERT_TRUE(programs[0].build(&env).ok());
    StorageOptions options;
    options.dir = dir;
    options.snapshot_every_records = 5;  // snapshot constantly
    ASSERT_TRUE(env.OpenPersistent(options).ok());
    ASSERT_TRUE(env.session().SaveProgram("fig").ok());

    std::vector<Target> targets = TargetsOf(env.session().graph());
    ASSERT_FALSE(targets.empty());
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(NudgeRow(&env.catalog(), "Stations", i).ok());
      if (i % 10 == 0) {
        for (const Target& t : targets) {
          auto value = env.session().engine().Evaluate(env.session().graph(),
                                                       t.from, t.from_port);
          ASSERT_TRUE(value.ok());
        }
      }
    }
    final_tables = TableFingerprints(env.catalog());
    ASSERT_TRUE(env.ClosePersistent().ok());
  }
  Environment env2;
  StorageOptions reopen;
  reopen.dir = dir;
  ASSERT_TRUE(env2.OpenPersistent(reopen).ok());
  EXPECT_EQ(TableFingerprints(env2.catalog()), final_tables);
  ASSERT_TRUE(env2.ClosePersistent().ok());
}

TEST(StorageEngineTest, MetricsSurfaceThroughRuntimeJson) {
  StorageMetrics::Global().Reset();
  const std::string dir = TestDir("engine_metrics");
  db::Catalog catalog;
  StorageOptions options;
  options.dir = dir;
  auto engine = StorageEngine::Open(&catalog, options);
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(catalog.RegisterTable("t", SampleRelation()).ok());
  ASSERT_TRUE((*engine)->Checkpoint().ok());
  ASSERT_TRUE((*engine)->Close().ok());
  EXPECT_GT(StorageMetrics::Global().wal_records.load(), 0u);
  EXPECT_GT(StorageMetrics::Global().snapshots_written.load(), 0u);

  runtime::Metrics metrics;
  runtime::MetricsSnapshot snap = metrics.snapshot();
  EXPECT_GT(snap.wal_records, 0u);
  EXPECT_GT(snap.snapshots_written, 0u);
  std::string json = metrics.ToJson();
  EXPECT_NE(json.find("\"storage\""), std::string::npos);
  EXPECT_NE(json.find("\"wal_records\""), std::string::npos);
  EXPECT_NE(json.find("\"snapshot_ms\""), std::string::npos);
}

}  // namespace
}  // namespace tioga2::storage
