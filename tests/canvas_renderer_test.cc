// Tests for composite rendering: drawing order, elevation ranges (§6.1),
// slider culling, wormhole rendering (§6.2), undersides (§6.3), hit testing.

#include <gtest/gtest.h>

#include "db/relation.h"
#include "render/framebuffer.h"
#include "render/raster_surface.h"
#include "viewer/canvas_renderer.h"

namespace tioga2::viewer {
namespace {

using db::Column;
using db::MakeRelation;
using display::Composite;
using display::DisplayRelation;
using types::DataType;
using types::Value;

/// One tuple at (x, y) displayed as a filled circle of the given color.
DisplayRelation Dot(const std::string& name, double x, double y, double radius,
                    const std::string& color) {
  auto base = MakeRelation({Column{"px", DataType::kFloat}, Column{"py", DataType::kFloat}},
                           {{Value::Float(x), Value::Float(y)}})
                  .value();
  return DisplayRelation::WithDefaults(name, base)
      .value()
      .SetLocationAttribute(0, "px")
      .value()
      .SetLocationAttribute(1, "py")
      .value()
      .AddAttribute("dot", "circle(" + std::to_string(radius) + ", \"" + color +
                               "\", true)")
      .value()
      .SetDisplayAttribute("dot")
      .value();
}

class CanvasRendererTest : public ::testing::Test {
 protected:
  CanvasRendererTest() : fb_(100, 100, draw::kWhite), surface_(&fb_) {}

  Camera DefaultCamera() { return Camera(0, 0, 20, 100, 100); }

  render::Framebuffer fb_;
  render::RasterSurface surface_;
};

TEST_F(CanvasRendererTest, DrawsTupleAtProjectedLocation) {
  Composite composite(Dot("a", 0, 0, 2, "#ff0000"));
  auto stats = RenderComposite(composite, DefaultCamera(), &surface_);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->tuples_drawn, 1u);
  EXPECT_EQ(fb_.Get(50, 50), (draw::Color{255, 0, 0}));
}

TEST_F(CanvasRendererTest, DrawingOrderLaterOnTop) {
  Composite composite(Dot("below", 0, 0, 3, "#ff0000"));
  composite = composite.Overlay(Composite(Dot("above", 0, 0, 3, "#0000ff")), {});
  ASSERT_TRUE(RenderComposite(composite, DefaultCamera(), &surface_).ok());
  EXPECT_EQ(fb_.Get(50, 50), (draw::Color{0, 0, 255}));
  // Shuffle the red dot to the top and re-render.
  Composite shuffled = composite.Shuffle(0).value();
  fb_.Clear(draw::kWhite);
  ASSERT_TRUE(RenderComposite(shuffled, DefaultCamera(), &surface_).ok());
  EXPECT_EQ(fb_.Get(50, 50), (draw::Color{255, 0, 0}));
}

TEST_F(CanvasRendererTest, ElevationRangeSkipsRelation) {
  DisplayRelation labels = Dot("labels", 0, 0, 2, "#00ff00").SetElevationRange(0, 10);
  Composite composite(labels);
  Camera low = DefaultCamera();
  low.SetElevation(5);
  auto visible = RenderComposite(composite, low, &surface_).value();
  EXPECT_EQ(visible.tuples_drawn, 1u);
  EXPECT_EQ(visible.relations_skipped, 0u);

  Camera high = DefaultCamera();
  high.SetElevation(50);
  fb_.Clear(draw::kWhite);
  auto hidden = RenderComposite(composite, high, &surface_).value();
  EXPECT_EQ(hidden.tuples_drawn, 0u);
  EXPECT_EQ(hidden.relations_skipped, 1u);
  EXPECT_EQ(fb_.CountPixelsNotEqual(draw::kWhite), 0u);
}

TEST_F(CanvasRendererTest, ViewportCulling) {
  Composite composite(Dot("far", 1000, 1000, 2, "#ff0000"));
  auto stats = RenderComposite(composite, DefaultCamera(), &surface_).value();
  EXPECT_EQ(stats.tuples_drawn, 0u);
  EXPECT_EQ(stats.tuples_culled_viewport, 1u);
}

TEST_F(CanvasRendererTest, SliderCulling) {
  DisplayRelation rel = Dot("d", 0, 0, 2, "#ff0000")
                            .AddAttribute("alt", "500.0")
                            .value()
                            .AddLocationDimension("alt")
                            .value();
  Composite composite(rel);
  Camera camera = DefaultCamera();
  camera.SetSlider(2, SliderRange{0, 100});
  auto stats = RenderComposite(composite, camera, &surface_).value();
  EXPECT_EQ(stats.tuples_culled_slider, 1u);
  camera.SetSlider(2, SliderRange{0, 1000});
  auto visible = RenderComposite(composite, camera, &surface_).value();
  EXPECT_EQ(visible.tuples_drawn, 1u);
}

TEST_F(CanvasRendererTest, LowerDimensionalMemberInvariantUnderSliders) {
  // A 2-D map member ignores the slider of a 3-D composite (§6.1).
  DisplayRelation map_member = Dot("map", 0, 0, 2, "#00ff00");
  DisplayRelation stations = Dot("stations", 5, 5, 1, "#ff0000")
                                 .AddAttribute("alt", "500.0")
                                 .value()
                                 .AddLocationDimension("alt")
                                 .value();
  Composite composite(map_member);
  composite = composite.Overlay(Composite(stations), {});
  Camera camera = DefaultCamera();
  camera.SetSlider(2, SliderRange{0, 100});  // excludes the station
  auto stats = RenderComposite(composite, camera, &surface_).value();
  EXPECT_EQ(stats.tuples_drawn, 1u);          // the map survives
  EXPECT_EQ(stats.tuples_culled_slider, 1u);  // the station is culled
}

TEST_F(CanvasRendererTest, CompositeOffsetShiftsMember) {
  Composite composite(Dot("a", 0, 0, 2, "#ff0000"));
  composite = composite.Overlay(Composite(Dot("b", 0, 0, 2, "#0000ff")), {5, 0});
  ASSERT_TRUE(RenderComposite(composite, DefaultCamera(), &surface_).ok());
  EXPECT_EQ(fb_.Get(50, 50), (draw::Color{255, 0, 0}));  // a at center
  EXPECT_EQ(fb_.Get(75, 50), (draw::Color{0, 0, 255}));  // b shifted +5 world = +25 px
}

TEST_F(CanvasRendererTest, TupleErrorsCountedNotFatal) {
  auto base = MakeRelation({Column{"px", DataType::kFloat}},
                           {{Value::Float(0)}, {Value::Null()}})
                  .value();
  DisplayRelation rel = DisplayRelation::WithDefaults("mixed", base)
                            .value()
                            .SetLocationAttribute(0, "px")
                            .value();
  auto stats = RenderComposite(Composite(rel), DefaultCamera(), &surface_).value();
  EXPECT_EQ(stats.tuple_errors, 1u);
  EXPECT_EQ(stats.tuples_drawn + stats.tuples_culled_viewport, 1u);
}

TEST_F(CanvasRendererTest, UndersideShowsOnlyNegativeRanges) {
  DisplayRelation top = Dot("top", 0, 0, 2, "#ff0000").SetElevationRange(0, 100);
  DisplayRelation under = Dot("under", 0, 0, 2, "#0000ff").SetElevationRange(-100, -1);
  Composite composite(top);
  composite = composite.Overlay(Composite(under), {});

  RenderOptions underside;
  underside.underside = true;
  auto stats = RenderComposite(composite, DefaultCamera(), &surface_, underside).value();
  EXPECT_EQ(stats.tuples_drawn, 1u);
  EXPECT_EQ(stats.relations_skipped, 1u);
  EXPECT_EQ(fb_.Get(50, 50), (draw::Color{0, 0, 255}));

  // Top side shows the red one.
  fb_.Clear(draw::kWhite);
  auto top_stats = RenderComposite(composite, DefaultCamera(), &surface_).value();
  EXPECT_EQ(top_stats.relations_skipped, 1u);
  EXPECT_EQ(fb_.Get(50, 50), (draw::Color{255, 0, 0}));
}

TEST_F(CanvasRendererTest, UndersideMirrorsHorizontally) {
  DisplayRelation under = Dot("under", 5, 0, 2, "#0000ff").SetElevationRange(-100, 0);
  RenderOptions underside;
  underside.underside = true;
  ASSERT_TRUE(
      RenderComposite(Composite(under), DefaultCamera(), &surface_, underside).ok());
  // World x=+5 maps to device 75 normally; mirrored it lands at 25.
  EXPECT_EQ(fb_.Get(25, 50), (draw::Color{0, 0, 255}));
  EXPECT_EQ(fb_.Get(75, 50), draw::kWhite);
}

TEST_F(CanvasRendererTest, WormholeRendersNestedCanvas) {
  // Destination canvas: a big green dot.
  CanvasRegistry registry;
  registry.Register("dest", []() -> Result<display::Displayable> {
    return display::Displayable(Dot("green", 0, 0, 3, "#00ff00"));
  });
  // Source: one tuple displaying a viewer drawable of 10x10 world units.
  auto base = MakeRelation({Column{"px", DataType::kFloat}}, {{Value::Float(0)}}).value();
  DisplayRelation rel =
      DisplayRelation::WithDefaults("src", base)
          .value()
          .SetLocationAttribute(0, "px")
          .value()
          .AddAttribute("hole", "viewer(10, 10, \"dest\", 0, 0, 10)")
          .value()
          .SetDisplayAttribute("hole")
          .value();
  RenderOptions options;
  options.registry = &registry;
  options.wormhole_depth = 1;
  auto stats = RenderComposite(Composite(rel), DefaultCamera(), &surface_, options)
                   .value();
  EXPECT_EQ(stats.wormholes_rendered, 1u);
  // The nested green dot must appear inside the wormhole rectangle
  // (world (0,0)..(10,10) -> device (50,0)..(100,50)).
  size_t green = fb_.CountPixels(draw::Color{0, 255, 0});
  EXPECT_GT(green, 10u);

  // With depth 0 the wormhole draws as an empty frame.
  fb_.Clear(draw::kWhite);
  options.wormhole_depth = 0;
  auto shallow = RenderComposite(Composite(rel), DefaultCamera(), &surface_, options)
                     .value();
  EXPECT_EQ(shallow.wormholes_rendered, 0u);
  EXPECT_EQ(fb_.CountPixels(draw::Color{0, 255, 0}), 0u);
}

TEST_F(CanvasRendererTest, HitTestFindsTopmostTuple) {
  Composite composite(Dot("below", 0, 0, 3, "#ff0000"));
  composite = composite.Overlay(Composite(Dot("above", 0, 0, 3, "#0000ff")), {});
  auto hit = HitTest(composite, DefaultCamera(), 50, 50).value();
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->relation_name, "above");
  EXPECT_EQ(hit->member, 1u);
  EXPECT_EQ(hit->row, 0u);
}

TEST_F(CanvasRendererTest, HitTestMissesEmptySpace) {
  Composite composite(Dot("a", 0, 0, 1, "#ff0000"));
  auto hit = HitTest(composite, DefaultCamera(), 5, 5).value();
  EXPECT_FALSE(hit.has_value());
}

TEST_F(CanvasRendererTest, HitTestRespectsElevationRange) {
  DisplayRelation hidden = Dot("hidden", 0, 0, 3, "#ff0000").SetElevationRange(0, 1);
  auto hit = HitTest(Composite(hidden), DefaultCamera(), 50, 50).value();
  EXPECT_FALSE(hit.has_value());  // camera elevation is 20, outside [0,1]
}

TEST_F(CanvasRendererTest, FindWormholeAtLocatesSpec) {
  auto base = MakeRelation({Column{"px", DataType::kFloat}}, {{Value::Float(0)}}).value();
  DisplayRelation rel =
      DisplayRelation::WithDefaults("src", base)
          .value()
          .SetLocationAttribute(0, "px")
          .value()
          .AddAttribute("hole", "viewer(4, 4, \"temps\", 1, 2, 3)")
          .value()
          .SetDisplayAttribute("hole")
          .value();
  Composite composite(rel);
  auto found = FindWormholeAt(composite, DefaultCamera(), 2, 2).value();
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->destination_canvas, "temps");
  EXPECT_DOUBLE_EQ(found->initial_x, 1);
  auto missed = FindWormholeAt(composite, DefaultCamera(), -5, -5).value();
  EXPECT_FALSE(missed.has_value());
}

}  // namespace
}  // namespace tioga2::viewer
