// Weather map: the full Figures 4 + 7 scenario.
//
// Builds the Louisiana station scatter (longitude/latitude locations, an
// Altitude slider dimension, circle + name displays), overlays the state
// map, and programs drill down with Set Range: at high elevation only dots
// are visible; zooming in past elevation 2 reveals the station names.
// Writes weather_map_high.ppm and weather_map_low.ppm.

#include <cstdio>

#include "tioga2/environment.h"

namespace {

using tioga2::ui::Session;

/// Dies loudly on error — examples should fail visibly.
template <typename T>
T Must(tioga2::Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

void MustOk(tioga2::Status status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

std::string Chain(Session& session, const std::string& from,
                  std::initializer_list<std::pair<std::string,
                                                  std::map<std::string, std::string>>>
                      boxes) {
  std::string previous = from;
  for (const auto& [type, params] : boxes) {
    std::string id = Must(session.AddBox(type, params), type.c_str());
    MustOk(session.Connect(previous, 0, id, 0), "connect");
    previous = id;
  }
  return previous;
}

}  // namespace

int main() {
  tioga2::Environment env;
  MustOk(env.LoadDemoData(/*extra_stations=*/200, /*num_days=*/365), "load data");
  Session& session = env.session();

  // Station scatter with Altitude slider (Figure 4).
  std::string stations = Must(session.AddTable("Stations"), "Stations");
  std::string scatter = Chain(
      session, stations,
      {{"Restrict", {{"predicate", "state = \"LA\""}}},
       {"SetLocation", {{"dim", "0"}, {"attr", "longitude"}}},
       {"SetLocation", {{"dim", "1"}, {"attr", "latitude"}}},
       {"AddLocationDimension", {{"attr", "altitude"}}}});

  // High-elevation display: dots only (Set Range, §6.1).
  std::string dots = Chain(
      session, scatter,
      {{"AddAttribute",
        {{"name", "c"}, {"definition", "circle(0.04, \"#c81e1e\", true)"}}},
       {"SetDisplay", {{"attr", "c"}}},
       {"SetRange", {{"min", "1.5"}, {"max", "1000"}}},
       {"SetName", {{"name", "Dots"}}}});

  // Low-elevation display: dots plus names.
  std::string labels = Chain(
      session, scatter,
      {{"AddAttribute",
        {{"name", "l"},
         {"definition",
          "circle(0.04, \"#c81e1e\", true) + offset(text(name, 0.08), -0.25, "
          "-0.18)"}}},
       {"SetDisplay", {{"attr", "l"}}},
       {"SetRange", {{"min", "0"}, {"max", "1.5"}}},
       {"SetName", {{"name", "Labels"}}}});

  // The state map from its line-segment relation (§6.1).
  std::string map = Chain(
      session, Must(session.AddTable("LouisianaMap"), "LouisianaMap"),
      {{"SetLocation", {{"dim", "0"}, {"attr", "x"}}},
       {"SetLocation", {{"dim", "1"}, {"attr", "y"}}},
       {"AddAttribute", {{"name", "seg"}, {"definition", "line(dx, dy, \"#646464\")"}}},
       {"SetDisplay", {{"attr", "seg"}}},
       {"SetName", {{"name", "Map"}}}});

  // Overlay map + dots + labels and install the viewer.
  std::string overlay1 = Must(session.AddBox("Overlay", {{"offset", ""}}), "Overlay");
  MustOk(session.Connect(map, 0, overlay1, 0), "wire");
  MustOk(session.Connect(dots, 0, overlay1, 1), "wire");
  std::string overlay2 = Must(session.AddBox("Overlay", {{"offset", ""}}), "Overlay");
  MustOk(session.Connect(overlay1, 0, overlay2, 0), "wire");
  MustOk(session.Connect(labels, 0, overlay2, 1), "wire");
  Must(session.AddViewer(overlay2, 0, "map"), "viewer");

  for (const std::string& warning : session.LastWarnings()) {
    std::printf("warning: %s\n", warning.c_str());
  }

  tioga2::viewer::Viewer* viewer = Must(env.GetViewer("map"), "GetViewer");
  viewer->mutable_camera()->MoveTo(-91.5, 31.0);

  // High elevation: the whole state, dots only.
  viewer->mutable_camera()->SetElevation(5.0);
  auto high = Must(env.RenderViewer(viewer, 800, 600, "weather_map_high.ppm"),
                   "render high");
  std::printf("high elevation: drew %zu tuples, skipped %zu relations by range\n",
              high.tuples_drawn, high.relations_skipped);

  // Drill down to New Orleans: names appear (§6.1).
  viewer->mutable_camera()->MoveTo(-90.5, 30.1);
  viewer->mutable_camera()->SetElevation(1.2);
  auto low =
      Must(env.RenderViewer(viewer, 800, 600, "weather_map_low.ppm"), "render low");
  std::printf("low elevation:  drew %zu tuples, skipped %zu relations by range\n",
              low.tuples_drawn, low.relations_skipped);

  // Use the Altitude slider: only stations below 100 ft.
  viewer->SetSlider(2, tioga2::viewer::SliderRange{0, 100});
  auto sliced = Must(env.RenderViewer(viewer, 800, 600, ""), "render sliced");
  std::printf("altitude <= 100: drew %zu tuples (%zu culled by slider)\n",
              sliced.tuples_drawn, sliced.tuples_culled_slider);

  // The elevation map widget model (§6.1).
  auto bars = Must(viewer->ElevationMap(0), "elevation map");
  std::printf("elevation map:\n");
  for (const auto& bar : bars) {
    std::printf("  %zu. %-8s [%g, %g]\n", bar.drawing_order, bar.relation_name.c_str(),
                bar.min_elevation, bar.max_elevation);
  }
  return 0;
}
