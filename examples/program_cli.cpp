// program_cli: a small command-line front end over the library — the kind
// of tool a downstream user wires into scripts.
//
// Usage:
//   program_cli demo <program.tioga>      write a demo program file
//   program_cli list <program.tioga>      print the boxes-and-arrows diagram
//   program_cli render <program.tioga> <canvas> <out.ppm> [out.svg]
//   program_cli diagram <program.tioga> <out.ppm>   render the program window
//
// The program file format is the Save Program serialization (Figure 2);
// files written by `demo` can be edited by hand and re-rendered.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "boxes/program_io.h"
#include "ui/program_renderer.h"
#include "tioga2/environment.h"

namespace {

using tioga2::Environment;

int Fail(const tioga2::Status& status, const char* what) {
  std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
  return 1;
}

int WriteDemo(const char* path) {
  Environment env;
  if (!env.LoadDemoData().ok()) return 1;
  tioga2::ui::Session& session = env.session();
  auto stations = session.AddTable("Stations");
  auto restrict = session.AddBox("Restrict", {{"predicate", "state = \"LA\""}});
  auto set_x = session.AddBox("SetLocation", {{"dim", "0"}, {"attr", "longitude"}});
  auto set_y = session.AddBox("SetLocation", {{"dim", "1"}, {"attr", "latitude"}});
  auto dots = session.AddBox(
      "AddAttribute",
      {{"name", "dot"}, {"definition", "circle(0.06, \"#c81e1e\", true)"}});
  auto set_display = session.AddBox("SetDisplay", {{"attr", "dot"}});
  if (!stations.ok() || !restrict.ok() || !set_x.ok() || !set_y.ok() || !dots.ok() ||
      !set_display.ok()) {
    return 1;
  }
  (void)session.Connect(*stations, 0, *restrict, 0);
  (void)session.Connect(*restrict, 0, *set_x, 0);
  (void)session.Connect(*set_x, 0, *set_y, 0);
  (void)session.Connect(*set_y, 0, *dots, 0);
  (void)session.Connect(*dots, 0, *set_display, 0);
  (void)session.AddViewer(*set_display, 0, "map");
  auto serialized = tioga2::boxes::SerializeProgram(session.graph());
  if (!serialized.ok()) return Fail(serialized.status(), "serialize");
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return 1;
  }
  out << *serialized;
  std::printf("wrote demo program to %s (canvas 'map')\n", path);
  return 0;
}

tioga2::Result<tioga2::dataflow::Graph> LoadFile(const char* path) {
  std::ifstream in(path);
  if (!in) return tioga2::Status::IOError(std::string("cannot read ") + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return tioga2::boxes::DeserializeProgram(buffer.str());
}

/// Loads the program into a session by saving it into the catalog first
/// (the Load Program path of Figure 2), so viewer canvases get registered.
int LoadIntoSession(Environment* env, const char* path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", path);
    return 1;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  env->catalog().SaveProgram("cli", buffer.str());
  tioga2::Status loaded = env->session().LoadProgram("cli");
  if (!loaded.ok()) return Fail(loaded, "load program");
  return 0;
}

int List(const char* path) {
  auto graph = LoadFile(path);
  if (!graph.ok()) return Fail(graph.status(), "parse");
  std::printf("%s", graph->ToString().c_str());
  return 0;
}

int Render(const char* path, const char* canvas, const char* ppm, const char* svg) {
  Environment env;
  if (!env.LoadDemoData().ok()) return 1;
  if (int rc = LoadIntoSession(&env, path); rc != 0) return rc;
  auto viewer = env.GetViewer(canvas);
  if (!viewer.ok()) return Fail(viewer.status(), "canvas");
  if (tioga2::Status fit = (*viewer)->FitContent(800, 600); !fit.ok()) {
    return Fail(fit, "fit");
  }
  auto stats = env.RenderViewer(*viewer, 800, 600, ppm);
  if (!stats.ok()) return Fail(stats.status(), "render");
  if (svg != nullptr) {
    auto rendered = env.RenderViewerSvg(*viewer, 800, 600, svg);
    if (!rendered.ok()) return Fail(rendered.status(), "render svg");
  }
  std::printf("rendered canvas '%s': %zu tuples -> %s%s%s\n", canvas,
              stats->tuples_drawn, ppm, svg != nullptr ? ", " : "",
              svg != nullptr ? svg : "");
  return 0;
}

int Diagram(const char* path, const char* ppm) {
  auto graph = LoadFile(path);
  if (!graph.ok()) return Fail(graph.status(), "parse");
  tioga2::render::Framebuffer fb(900, 400, tioga2::draw::kWhite);
  tioga2::render::RasterSurface surface(&fb);
  auto layout = tioga2::ui::RenderProgram(*graph, &surface);
  if (!layout.ok()) return Fail(layout.status(), "render program window");
  if (tioga2::Status written = fb.WritePpm(ppm); !written.ok()) {
    return Fail(written, "write");
  }
  std::printf("rendered program window (%zu boxes) -> %s\n",
              layout->box_rects.size(), ppm);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 3 && std::strcmp(argv[1], "demo") == 0) return WriteDemo(argv[2]);
  if (argc >= 3 && std::strcmp(argv[1], "list") == 0) return List(argv[2]);
  if (argc >= 5 && std::strcmp(argv[1], "render") == 0) {
    return Render(argv[2], argv[3], argv[4], argc >= 6 ? argv[5] : nullptr);
  }
  if (argc >= 4 && std::strcmp(argv[1], "diagram") == 0) {
    return Diagram(argv[2], argv[3]);
  }
  // Self-demo when run without arguments (so the binary is exercised by
  // "run everything" scripts): write, list, render, diagram in a temp dir.
  std::printf("usage:\n"
              "  program_cli demo <program.tioga>\n"
              "  program_cli list <program.tioga>\n"
              "  program_cli render <program.tioga> <canvas> <out.ppm> [out.svg]\n"
              "  program_cli diagram <program.tioga> <out.ppm>\n"
              "running self-demo...\n");
  if (int rc = WriteDemo("cli_demo.tioga"); rc != 0) return rc;
  if (int rc = List("cli_demo.tioga"); rc != 0) return rc;
  if (int rc = Render("cli_demo.tioga", "map", "cli_demo.ppm", nullptr); rc != 0) {
    return rc;
  }
  return Diagram("cli_demo.tioga", "cli_program_window.ppm");
}
