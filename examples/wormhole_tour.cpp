// Wormhole tour: the Figure 8 scenario.
//
// Each Louisiana station's display contains a viewer drawable — a wormhole
// into the temperature-vs-time canvas, initially positioned at that
// station's data. The example flies over the map, descends into the New
// Orleans wormhole, looks at the rear view mirror (§6.3), and travels home.
// Writes wormhole_map.ppm, wormhole_temps.ppm, wormhole_mirror.ppm.

#include <cstdio>

#include "tioga2/environment.h"

namespace {

template <typename T>
T Must(tioga2::Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

void MustOk(tioga2::Status status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main() {
  tioga2::Environment env;
  MustOk(env.LoadDemoData(/*extra_stations=*/50, /*num_days=*/365), "load data");
  tioga2::ui::Session& session = env.session();

  // Destination canvas: temperature vs time for every station; the
  // underside (§6.3) carries a back-reference marker visible in mirrors.
  {
    std::string obs = Must(session.AddTable("Observations"), "Observations");
    std::string t = Must(session.AddBox("AddAttribute",
                                        {{"name", "t"},
                                         {"definition", "float(days(obs_date))"}}),
                         "t");
    std::string sx =
        Must(session.AddBox("SetLocation", {{"dim", "0"}, {"attr", "t"}}), "sx");
    std::string sy = Must(
        session.AddBox("SetLocation", {{"dim", "1"}, {"attr", "temperature"}}), "sy");
    std::string color =
        Must(session.AddBox(
                 "AddAttribute",
                 {{"name", "d"},
                  {"definition",
                   "point(lerp_color(\"#1e46c8\", \"#c81e1e\", (temperature - 20.0) / "
                   "70.0))"}}),
             "d");
    std::string sd = Must(session.AddBox("SetDisplay", {{"attr", "d"}}), "sd");
    MustOk(session.Connect(obs, 0, t, 0), "wire");
    MustOk(session.Connect(t, 0, sx, 0), "wire");
    MustOk(session.Connect(sx, 0, sy, 0), "wire");
    MustOk(session.Connect(sy, 0, color, 0), "wire");
    MustOk(session.Connect(color, 0, sd, 0), "wire");
    Must(session.AddViewer(sd, 0, "temps"), "viewer temps");
  }

  // Source canvas: stations shown as labeled wormholes into "temps".
  {
    std::string stations = Must(session.AddTable("Stations"), "Stations");
    std::string la = Must(
        session.AddBox("Restrict", {{"predicate", "state = \"LA\""}}), "Restrict");
    std::string sx = Must(
        session.AddBox("SetLocation", {{"dim", "0"}, {"attr", "longitude"}}), "sx");
    std::string sy = Must(
        session.AddBox("SetLocation", {{"dim", "1"}, {"attr", "latitude"}}), "sy");
    // Wormhole into the temperature canvas, plus the station name above it
    // (overlaying text with a viewer drawable, §6.2).
    std::string holes = Must(
        session.AddBox(
            "AddAttribute",
            {{"name", "w"},
             {"definition",
              "viewer(0.4, 0.3, \"temps\", 180.0, 55.0, 90.0) + offset(text(name, "
              "0.07), 0.0, 0.33)"}}),
        "holes");
    std::string sd = Must(session.AddBox("SetDisplay", {{"attr", "w"}}), "sd");
    MustOk(session.Connect(stations, 0, la, 0), "wire");
    MustOk(session.Connect(la, 0, sx, 0), "wire");
    MustOk(session.Connect(sx, 0, sy, 0), "wire");
    MustOk(session.Connect(sy, 0, holes, 0), "wire");
    MustOk(session.Connect(holes, 0, sd, 0), "wire");

    // Program the canvas underside (§6.3): gray markers with a negative
    // elevation range, visible only in rear view mirrors after travelling
    // through a wormhole.
    std::string under_dot = Must(
        session.AddBox("AddAttribute",
                       {{"name", "u"}, {"definition", "circle(0.1, \"#808080\", true)"}}),
        "under");
    std::string under_set =
        Must(session.AddBox("SetDisplay", {{"attr", "u"}}), "set");
    std::string under_range =
        Must(session.AddBox("SetRange", {{"min", "-1000"}, {"max", "0"}}), "range");
    std::string under_name =
        Must(session.AddBox("SetName", {{"name", "Underside"}}), "name");
    MustOk(session.Connect(sy, 0, under_dot, 0), "wire");
    MustOk(session.Connect(under_dot, 0, under_set, 0), "wire");
    MustOk(session.Connect(under_set, 0, under_range, 0), "wire");
    MustOk(session.Connect(under_range, 0, under_name, 0), "wire");

    std::string overlay = Must(session.AddBox("Overlay", {{"offset", ""}}), "overlay");
    MustOk(session.Connect(sd, 0, overlay, 0), "wire");
    MustOk(session.Connect(under_name, 0, overlay, 1), "wire");
    Must(session.AddViewer(overlay, 0, "map"), "viewer map");
  }

  tioga2::viewer::Viewer* viewer = Must(env.GetViewer("map"), "GetViewer");
  viewer->mutable_camera()->MoveTo(-90.3, 30.0);
  viewer->mutable_camera()->SetElevation(1.6);
  auto map_stats =
      Must(env.RenderViewer(viewer, 800, 600, "wormhole_map.ppm"), "render map");
  std::printf("map canvas: %zu tuples drawn, %zu wormholes rendered inline\n",
              map_stats.tuples_drawn, map_stats.wormholes_rendered);

  // Descend into the New Orleans wormhole: its rect spans
  // (-90.08, 29.95) .. (-89.68, 30.25).
  viewer->mutable_camera()->MoveTo(-90.08 + 0.2, 29.95 + 0.15);
  viewer->mutable_camera()->SetElevation(0.8);
  bool passed = Must(viewer->TryPassThrough(/*pass_elevation=*/1.0), "pass through");
  if (!passed) {
    std::fprintf(stderr, "expected to pass through the wormhole\n");
    return 1;
  }
  std::printf("passed through to '%s' at elevation %g\n",
              viewer->canvas_name().c_str(), viewer->camera().elevation());
  Must(env.RenderViewer(viewer, 800, 600, "wormhole_temps.ppm"), "render temps");

  // The rear view mirror shows where we came from (§6.3).
  tioga2::render::Framebuffer mirror(300, 200, tioga2::draw::kLightGray);
  tioga2::render::RasterSurface mirror_surface(&mirror);
  auto mirror_stats = Must(viewer->RenderRearView(&mirror_surface), "rear view");
  MustOk(mirror.WritePpm("wormhole_mirror.ppm"), "write mirror");
  std::printf("rear view mirror: %zu tuples of the departed canvas underside\n",
              mirror_stats.tuples_drawn);

  // "Find his way home" (§6.3).
  bool back = Must(viewer->TravelBack(), "travel back");
  std::printf("travelled back: %s (now on '%s')\n", back ? "yes" : "no",
              viewer->canvas_name().c_str());
  return 0;
}
