// Quickstart: the paper's §4 running example in ~40 lines of API calls.
//
// An agricultural specialist wants to see the Louisiana weather stations.
// We load the demo data, build the boxes-and-arrows program
//   Stations -> Restrict(state = "LA") -> Viewer
// incrementally through the Session, then render the canvas to
// quickstart.ppm and quickstart.svg.

#include <cstdio>

#include "tioga2/environment.h"

int main() {
  tioga2::Environment env;
  if (!env.LoadDemoData().ok()) {
    std::fprintf(stderr, "failed to load demo data\n");
    return 1;
  }
  tioga2::ui::Session& session = env.session();

  // Build the program exactly as the Figure 1 user does: add the Stations
  // source box, a Restrict box, wire them, and install a viewer.
  std::string stations = session.AddTable("Stations").value();
  auto restrict = session.AddBox("Restrict", {{"predicate", "state = \"LA\""}});
  if (!restrict.ok()) {
    std::fprintf(stderr, "%s\n", restrict.status().ToString().c_str());
    return 1;
  }
  (void)session.Connect(stations, 0, *restrict, 0);
  (void)session.AddViewer(*restrict, 0, "main");

  // Every partial result has a valid visualization (§1.2 principle 1):
  // the default display is the terminal-monitor table of §5.2.
  auto content = session.EvaluateCanvas("main");
  if (!content.ok()) {
    std::fprintf(stderr, "%s\n", content.status().ToString().c_str());
    return 1;
  }
  auto relation = tioga2::display::AsRelation(*content).value();
  std::printf("Louisiana has %zu stations:\n%s\n", relation.num_rows(),
              relation.base()->ToString(5).c_str());

  // Render the canvas with both backends.
  auto viewer = env.GetViewer("main");
  if (!viewer.ok()) return 1;
  (void)(*viewer)->FitContent(800, 600);
  auto stats = env.RenderViewer(*viewer, 800, 600, "quickstart.ppm");
  if (!stats.ok()) {
    std::fprintf(stderr, "render failed: %s\n", stats.status().ToString().c_str());
    return 1;
  }
  (void)env.RenderViewerSvg(*viewer, 800, 600, "quickstart.svg");
  std::printf("rendered %zu tuples to quickstart.ppm / quickstart.svg\n",
              stats->tuples_drawn);
  return 0;
}
