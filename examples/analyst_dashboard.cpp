// Analyst dashboard: Figures 9, 10 and 11 plus §8 updates in one program.
//
// Temperature and precipitation for one station are stitched into a group
// (Figure 10), replicated by year (Figure 11), inspected through a
// magnifying glass showing the alternative precipitation display (Figure 9),
// and finally a station record is fixed through the click-to-update path
// (§8). Writes dashboard.ppm and dashboard.svg.

#include <cstdio>

#include "tioga2/environment.h"

namespace {

template <typename T>
T Must(tioga2::Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

void MustOk(tioga2::Status status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main() {
  tioga2::Environment env;
  MustOk(env.LoadDemoData(/*extra_stations=*/20, /*num_days=*/730), "load data");
  tioga2::ui::Session& session = env.session();

  // Shared upstream: observations of station 1 with a time axis and both a
  // temperature display and an alternative precipitation display (§7.2).
  std::string obs = Must(session.AddTable("Observations"), "Observations");
  std::string one =
      Must(session.AddBox("Restrict", {{"predicate", "station_id = 1"}}), "Restrict");
  std::string t = Must(session.AddBox("AddAttribute",
                                      {{"name", "t"},
                                       {"definition", "float(days(obs_date))"}}),
                       "t");
  std::string sx = Must(session.AddBox("SetLocation", {{"dim", "0"}, {"attr", "t"}}),
                        "sx");
  std::string sy = Must(
      session.AddBox("SetLocation", {{"dim", "1"}, {"attr", "temperature"}}), "sy");
  std::string temp_display = Must(
      session.AddBox("AddAttribute",
                     {{"name", "temp_d"}, {"definition", "point(\"#c81e1e\")"}}),
      "temp_d");
  std::string precip_display = Must(
      session.AddBox(
          "AddAttribute",
          {{"name", "precip_d"},
           {"definition", "rect(0.9, precipitation * 15.0, \"#1e46c8\", true)"}}),
      "precip_d");
  MustOk(session.Connect(obs, 0, one, 0), "wire");
  MustOk(session.Connect(one, 0, t, 0), "wire");
  MustOk(session.Connect(t, 0, sx, 0), "wire");
  MustOk(session.Connect(sx, 0, sy, 0), "wire");
  MustOk(session.Connect(sy, 0, temp_display, 0), "wire");
  MustOk(session.Connect(temp_display, 0, precip_display, 0), "wire");

  // Branch A (temperature view) and branch B (precipitation view, realized
  // with the Figure 9 Swap-Attributes trick: make precip_d the display).
  // One output may feed several inputs, so both branches hang off
  // precip_display directly.
  std::string temp_branch =
      Must(session.AddBox("SetName", {{"name", "Temperature"}}), "name");
  MustOk(session.Connect(precip_display, 0, temp_branch, 0), "wire");
  std::string precip_branch = Must(
      session.AddBox("SwapAttributes", {{"a", "temp_d"}, {"b", "precip_d"}}), "swap");
  std::string precip_named =
      Must(session.AddBox("SetName", {{"name", "Precipitation"}}), "name");
  std::string precip_set =
      Must(session.AddBox("SetDisplay", {{"attr", "temp_d"}}), "set");
  MustOk(session.Connect(precip_display, 0, precip_branch, 0), "wire");
  MustOk(session.Connect(precip_branch, 0, precip_set, 0), "wire");
  MustOk(session.Connect(precip_set, 0, precip_named, 0), "wire");

  // Default display must be the temperature one on branch A.
  std::string temp_set = Must(session.AddBox("SetDisplay", {{"attr", "temp_d"}}),
                              "set display");
  MustOk(session.Connect(temp_branch, 0, temp_set, 0), "wire");

  // Figure 10: stitch the two views vertically.
  std::string stitch = Must(
      session.AddBox("Stitch",
                     {{"arity", "2"}, {"layout", "vertical"}, {"columns", "1"}}),
      "Stitch");
  MustOk(session.Connect(temp_set, 0, stitch, 0), "wire");
  MustOk(session.Connect(precip_named, 0, stitch, 1), "wire");
  Must(session.AddViewer(stitch, 0, "dashboard"), "viewer");

  tioga2::viewer::Viewer* viewer = Must(env.GetViewer("dashboard"), "GetViewer");
  MustOk(viewer->FitContent(800, 600), "fit");
  // Figure 9: a slaved magnifying glass over the temperature pane showing
  // the precipitation display.
  tioga2::viewer::MagnifyingGlass glass;
  glass.rect = tioga2::render::DeviceRect{500, 40, 240, 200};
  glass.zoom = 4.0;
  glass.display_attribute = "precip_d";
  viewer->AddMagnifyingGlass(glass);

  auto stats = Must(env.RenderViewer(viewer, 800, 600, "dashboard.ppm"), "render");
  Must(env.RenderViewerSvg(viewer, 800, 600, "dashboard.svg"), "render svg");
  std::printf("dashboard: %zu tuples drawn across %zu group members\n",
              stats.tuples_drawn, viewer->num_members());

  // Figure 11: replicate the temperature view by year.
  std::string replicate = Must(
      session.AddBox("Replicate",
                     {{"rows", "year(obs_date) = 1985;year(obs_date) = 1986"},
                      {"columns", ""}}),
      "Replicate");
  MustOk(session.Connect(temp_set, 0, replicate, 0), "wire");
  Must(session.AddViewer(replicate, 0, "by_year"), "viewer");
  auto by_year = Must(session.EvaluateCanvas("by_year"), "eval");
  tioga2::display::Group group = tioga2::display::AsGroup(by_year);
  std::printf("replicated by year into %zu panes (%zu + %zu observations)\n",
              group.size(), group.members()[0].entries()[0].relation.num_rows(),
              group.members()[1].entries()[0].relation.num_rows());

  // §8 update: fix a typo in a station name by clicking it on a canvas.
  std::string stations = Must(session.AddTable("Stations"), "Stations");
  std::string named_sx = Must(
      session.AddBox("SetLocation", {{"dim", "0"}, {"attr", "longitude"}}), "sx");
  std::string named_sy = Must(
      session.AddBox("SetLocation", {{"dim", "1"}, {"attr", "latitude"}}), "sy");
  std::string dot = Must(session.AddBox("AddAttribute",
                                        {{"name", "dot"},
                                         {"definition", "circle(0.3, \"#000000\", true)"}}),
                         "dot");
  std::string dot_set = Must(session.AddBox("SetDisplay", {{"attr", "dot"}}), "set");
  MustOk(session.Connect(stations, 0, named_sx, 0), "wire");
  MustOk(session.Connect(named_sx, 0, named_sy, 0), "wire");
  MustOk(session.Connect(named_sy, 0, dot, 0), "wire");
  MustOk(session.Connect(dot, 0, dot_set, 0), "wire");
  Must(session.AddViewer(dot_set, 0, "stations"), "viewer");
  tioga2::viewer::Viewer* station_viewer = Must(env.GetViewer("stations"), "viewer");
  MustOk(station_viewer->FitContent(400, 400), "fit");
  tioga2::render::Framebuffer fb(400, 400, tioga2::draw::kWhite);
  tioga2::render::RasterSurface surface(&fb);
  MustOk(station_viewer->RenderTo(&surface).status(), "render stations");
  double dx = 0;
  double dy = 0;
  station_viewer->camera().WorldToDevice(-90.08, 29.95, &dx, &dy);
  auto hit = Must(station_viewer->HitTestAt(&surface, dx, dy), "hit test");
  if (hit.has_value()) {
    MustOk(session.ClickUpdate("stations", *hit, "Stations",
                               {{"name", "NEW ORLEANS INTL"}}),
           "click update");
    std::printf("updated station name through the §8 dialog; canvases recompute\n");
  }
  return 0;
}
