#!/usr/bin/env bash
# Markdown anchor lint (scripts/check.sh step "docs").
#
# Fails when a section link of the form ](DOC.md#anchor) or ](#anchor) in
# one of the tracked documents does not resolve to a real heading, using
# GitHub's heading-to-anchor slug rules (lowercase; strip everything except
# alphanumerics, spaces, hyphens, underscores; spaces become hyphens). This
# keeps README's pointers into DESIGN.md / ARCHITECTURE.md / EXPERIMENTS.md
# honest: renaming a heading without updating its references breaks CI
# instead of silently orphaning the docs.
set -euo pipefail
cd "$(dirname "$0")/.."

DOCS=(README.md DESIGN.md ARCHITECTURE.md EXPERIMENTS.md ROADMAP.md)

slug() {
  printf '%s' "$1" \
    | tr '[:upper:]' '[:lower:]' \
    | sed -e 's/[^a-z0-9 _-]//g' -e 's/ /-/g'
}

anchors=$(mktemp)
refs=$(mktemp)
trap 'rm -f "$anchors" "$refs"' EXIT

for doc in "${DOCS[@]}"; do
  [[ -f "$doc" ]] || continue
  # Headings outside fenced code blocks. (`#+` rather than `#{1,6}`: mawk
  # has no interval expressions; ATX headings never exceed six hashes here.)
  awk '/^```/ { fence = !fence; next } !fence && /^#+ /' "$doc" \
    | sed -E 's/^#+ +//' \
    | while IFS= read -r heading; do
        printf '%s#%s\n' "$doc" "$(slug "$heading")"
      done >> "$anchors"
done

for doc in "${DOCS[@]}"; do
  [[ -f "$doc" ]] || continue
  grep -oE '\]\(([A-Za-z0-9_.-]*\.md)?#[A-Za-z0-9_-]+\)' "$doc" \
    | sed -E 's/^\]\(//; s/\)$//' \
    | while IFS= read -r ref; do
        target="${ref%%#*}"
        anchor="${ref#*#}"
        [[ -n "$target" ]] || target="$doc"
        printf '%s %s#%s\n' "$doc" "$target" "$anchor"
      done >> "$refs" || true
done

fail=0
while IFS=' ' read -r doc ref; do
  [[ -n "$ref" ]] || continue
  target="${ref%%#*}"
  if [[ ! -f "$target" ]]; then
    echo "lint_docs: $doc links to missing document: $ref" >&2
    fail=1
    continue
  fi
  if ! grep -qxF "$ref" "$anchors"; then
    echo "lint_docs: $doc links to unresolvable anchor: $ref" >&2
    fail=1
  fi
done < "$refs"

if [[ "$fail" -ne 0 ]]; then
  echo "lint_docs: FAILED (see above; anchors are GitHub heading slugs)" >&2
  exit 1
fi
echo "lint_docs: all $(wc -l < "$refs" | tr -d ' ') anchor references resolve"
