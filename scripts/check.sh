#!/usr/bin/env bash
# Tier-1 verification: build, run the full test suite, then rebuild the tree
# with ThreadSanitizer and run the concurrency tests (the runtime scheduler
# and the session server) under it.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier 1: build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j
(cd build && ctest --output-on-failure -j)

echo "== tsan: runtime + session server tests =="
cmake -B build-tsan -S . -DTIOGA2_TSAN=ON >/dev/null
cmake --build build-tsan -j --target \
  runtime_test session_server_test runtime_determinism_test
(cd build-tsan && ctest --output-on-failure -R 'runtime|session_server')

echo "OK"
