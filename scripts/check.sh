#!/usr/bin/env bash
# The single verification entry point (see README "Verifying a change"):
#   1. tier 1 — build everything and run the full test suite;
#   2. tsan   — rebuild with ThreadSanitizer and run the concurrency tests
#               (runtime scheduler, session server, determinism, parallel
#               delta propagation, and the morsel fan-out suite in
#               batch_eval_test — morsel bodies run concurrently on pool
#               workers, so their result-slot hand-off must be race-free);
#   3. asan   — rebuild with Address+UB sanitizers and run the columnar /
#               batch-evaluation / aggregates tests (the paths that index raw
#               column vectors through selection vectors and dictionary
#               codes);
#   4. ubsan  — rebuild with UndefinedBehaviorSanitizer alone (unlike the
#               asan pass it traps on the first finding instead of
#               recovering) and run the join/operator tests — the class of
#               bug this catches mechanically is the old HashKey
#               out-of-range double->int64 cast;
#   5. recovery — the crash-safety gate: the storage tests (which include
#               the nine-figure kill-and-recover snapshot/replay cycle) under
#               ThreadSanitizer — snapshotting runs on a background thread
#               concurrent with edits and queries — and the FaultFs
#               crash-injection property tests under Address+UB sanitizers,
#               where torn half-records are decoded from raw bytes;
#   6. nosimd — rebuild with -DTIOGA2_SIMD=OFF and rerun the full suite, so
#               the scalar fallback path (the only path on machines where the
#               SIMD tiers are compiled out) can never rot. The sanitizer
#               passes above inherit the default SIMD=ON build and therefore
#               sanitize the kernels themselves;
#   7. docs   — lint that every DESIGN.md / ARCHITECTURE.md / EXPERIMENTS.md
#               section anchor referenced from README.md (and between those
#               documents) resolves, so renaming a heading cannot silently
#               orphan the execution-model documentation;
#   8. load-smoke — a small-N run of the session-server load harness
#               (bench_session_load --smoke): replays mixed multi-session
#               traffic with the shared memo tier on and off, asserting zero
#               handler errors, nonzero shared-cache hits, byte-identical
#               cross-session outputs, and convergence within 2x
#               single-session work; then validates the emitted JSON report.
#   9. dict-smoke — a small-N run of the dictionary-encoding ablation
#               (bench_dict_strings --smoke): runs the categorical restrict /
#               group-by / string-key join workloads scalar, vectorized
#               without dictionaries, and vectorized with dictionaries,
#               asserting cell-identical outputs across all three, that the
#               dict restrict actually dispatched code-lane batches, and that
#               the dict join never fell back to string hashing; then
#               validates the JSON.
#  10. contention — a small-N run of the lock-contention harness
#               (bench_lock_contention --smoke): sweeps the epoch-reclaimed
#               lock-free memo-lookup and catalog-resolution paths at 1/8/32
#               reader threads, asserting 8-thread throughput holds parity
#               with 1 thread (readers must never re-serialize) and that
#               epoch pins were actually taken; then validates the JSON.
# The epoch-reclamation tests (epoch_test, incl. the reader/retire torture
# case) run in the tsan, asan, AND ubsan passes: reclaim-while-pinned is a
# use-after-free asan turns into a hard failure, and pin/advance ordering
# bugs are races tsan reports.
# Pass --fast to run tier 1 only.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== docs: markdown anchor lint =="
scripts/lint_docs.sh

echo "== tier 1: build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j
(cd build && ctest --output-on-failure -j)

if [[ "${1:-}" == "--fast" ]]; then
  echo "OK (fast)"
  exit 0
fi

echo "== load-smoke: session-server load harness, small N =="
cmake --build build -j --target bench_session_load
build/bench/bench_session_load --smoke --out=bench_out/session_load_smoke.json
if command -v python3 >/dev/null 2>&1; then
  python3 -m json.tool bench_out/session_load_smoke.json >/dev/null
else
  # Minimal structural check when python3 is unavailable.
  grep -q '"convergence"' bench_out/session_load_smoke.json
  grep -q '"shared_on"' bench_out/session_load_smoke.json
fi

echo "== dict-smoke: dictionary-encoded string execution ablation, small N =="
cmake --build build -j --target bench_dict_strings
build/bench/bench_dict_strings --smoke --out=bench_out/dict_strings_smoke.json
if command -v python3 >/dev/null 2>&1; then
  python3 -m json.tool bench_out/dict_strings_smoke.json >/dev/null
else
  grep -q '"restrict"' bench_out/dict_strings_smoke.json
  grep -q '"fig07"' bench_out/dict_strings_smoke.json
fi

echo "== contention: lock-free read-path harness, small N =="
cmake --build build -j --target bench_lock_contention
build/bench/bench_lock_contention --smoke --out=bench_out/lock_contention.json
if command -v python3 >/dev/null 2>&1; then
  python3 -m json.tool bench_out/lock_contention.json >/dev/null
else
  grep -q '"memo_lookup"' bench_out/lock_contention.json
  grep -q '"catalog_resolve"' bench_out/lock_contention.json
fi

echo "== tsan: runtime + session server + epoch + morsel fan-out tests =="
cmake -B build-tsan -S . -DTIOGA2_TSAN=ON >/dev/null
cmake --build build-tsan -j --target \
  runtime_test session_server_test runtime_determinism_test delta_update_test \
  batch_eval_test epoch_test
(cd build-tsan && ctest --output-on-failure \
  -R 'runtime|session_server|delta_update|batch_eval|epoch')

echo "== asan: columnar + batch evaluation + aggregates + epoch tests =="
cmake -B build-asan -S . -DTIOGA2_ASAN=ON >/dev/null
cmake --build build-asan -j --target \
  columnar_test batch_eval_test operators_test display_relation_test \
  aggregates_test epoch_test
(cd build-asan && ctest --output-on-failure \
  -R 'columnar_test|batch_eval_test|operators_test|display_relation_test|aggregates_test|epoch_test')

echo "== ubsan: join + operator + aggregates + epoch tests =="
cmake -B build-ubsan -S . -DTIOGA2_UBSAN=ON >/dev/null
cmake --build build-ubsan -j --target \
  join_test operators_test columnar_test batch_eval_test aggregates_test \
  epoch_test
(cd build-ubsan && ctest --output-on-failure \
  -R 'join_test|operators_test|columnar_test|batch_eval_test|aggregates_test|epoch_test')

echo "== recovery: storage snapshot/replay under tsan, crash injection under asan =="
cmake --build build-tsan -j --target storage_test
(cd build-tsan && ctest --output-on-failure -R 'storage_test')
cmake --build build-asan -j --target storage_test storage_crash_test
(cd build-asan && ctest --output-on-failure -R 'storage_test|storage_crash_test')

echo "== nosimd: full suite with the SIMD tiers compiled out =="
cmake -B build-nosimd -S . -DTIOGA2_SIMD=OFF >/dev/null
cmake --build build-nosimd -j
(cd build-nosimd && ctest --output-on-failure -j)

echo "OK"
